"""Training-time image augmentation (random crop with padding + h-flip).

The standard CIFAR recipe; applied per batch inside the Trainer when a
dataset wraps itself in :class:`AugmentedDataset`.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np


def random_horizontal_flip(images: np.ndarray, rng: np.random.Generator, p: float = 0.5) -> np.ndarray:
    """Flip a random subset of NCHW images left-right."""
    flip = rng.random(len(images)) < p
    out = images.copy()
    out[flip] = out[flip, :, :, ::-1]
    return out


def random_crop(images: np.ndarray, rng: np.random.Generator, padding: int = 2) -> np.ndarray:
    """Pad spatially then crop back at a random offset, per image."""
    n, c, h, w = images.shape
    padded = np.pad(images, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.empty_like(images)
    offsets = rng.integers(0, 2 * padding + 1, size=(n, 2))
    for i, (dy, dx) in enumerate(offsets):
        out[i] = padded[i, :, dy : dy + h, dx : dx + w]
    return out


class AugmentedDataset:
    """A dataset view that augments every *shuffled* training batch.

    Evaluation iterations (``shuffle=False``) pass through untouched, so
    accuracy measurements stay deterministic.
    """

    def __init__(self, base, padding: int = 2, flip_p: float = 0.5, seed: int = 0):
        self.base = base
        self.padding = padding
        self.flip_p = flip_p
        self._rng = np.random.default_rng(seed)

    # Pass-through attributes the Trainer and evaluators rely on.
    @property
    def images(self) -> np.ndarray:
        return self.base.images

    @property
    def labels(self) -> np.ndarray:
        return self.base.labels

    @property
    def num_classes(self) -> int:
        return self.base.num_classes

    @property
    def image_size(self) -> int:
        return self.base.image_size

    @property
    def channels(self) -> int:
        return self.base.channels

    @property
    def name(self) -> str:
        return f"{self.base.name}+aug"

    def __len__(self) -> int:
        return len(self.base)

    def iter_batches(
        self,
        batch_size: int,
        shuffle: bool = False,
        rng: Optional[np.random.Generator] = None,
        with_indices: bool = False,
    ) -> Iterator:
        for batch in self.base.iter_batches(batch_size, shuffle, rng, with_indices):
            if not shuffle:
                yield batch
                continue
            images = batch[0]
            augmented = random_horizontal_flip(images, self._rng, self.flip_p)
            if self.padding > 0:
                augmented = random_crop(augmented, self._rng, self.padding)
            yield (augmented, *batch[1:])

    def __repr__(self) -> str:
        return f"AugmentedDataset({self.base!r})"
