"""Synthetic class-conditional image datasets.

The environment has no network access, so CIFAR-10/100 are substituted with
procedurally generated datasets of the same shape (3x32x32, 10/100 classes).
Each class owns a deterministic set of spatial prototypes (oriented gratings
with class-specific colour and frequency); samples are noisy mixtures of
their class prototypes.  A CNN can genuinely learn these — accuracy improves
with training and degrades when capacity is removed, which is the property
the compression experiments rely on.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..nn.tensor import get_default_dtype


def _class_prototype(
    label: int, channels: int, size: int, rng: np.random.Generator
) -> np.ndarray:
    """A deterministic oriented-grating prototype for one class."""
    yy, xx = np.meshgrid(np.linspace(-1, 1, size), np.linspace(-1, 1, size), indexing="ij")
    angle = rng.uniform(0, np.pi)
    freq = rng.uniform(2.0, 6.0)
    phase = rng.uniform(0, 2 * np.pi)
    wave = np.sin(freq * (np.cos(angle) * xx + np.sin(angle) * yy) * np.pi + phase)
    blob_x, blob_y = rng.uniform(-0.5, 0.5, size=2)
    blob = np.exp(-(((xx - blob_x) ** 2 + (yy - blob_y) ** 2) / 0.3))
    base = 0.7 * wave + 0.8 * blob
    colors = rng.uniform(-1.0, 1.0, size=channels)
    return np.stack([base * c for c in colors], axis=0)


class SyntheticImageDataset:
    """An in-memory labelled image dataset with deterministic generation."""

    def __init__(
        self,
        num_classes: int = 10,
        num_samples: int = 512,
        image_size: int = 32,
        channels: int = 3,
        noise: float = 0.35,
        seed: int = 0,
        name: str = "synthetic",
    ):
        if num_samples < num_classes:
            raise ValueError("need at least one sample per class")
        self.num_classes = num_classes
        self.image_size = image_size
        self.channels = channels
        self.noise = noise
        self.seed = seed
        self.name = name
        rng = np.random.default_rng(seed)
        prototypes = np.stack(
            [_class_prototype(c, channels, image_size, rng) for c in range(num_classes)]
        )
        labels = np.arange(num_samples) % num_classes
        rng.shuffle(labels)
        images = prototypes[labels].astype(np.float64)
        images += rng.normal(0, noise, size=images.shape)
        # Per-channel standardisation, as one would do with real CIFAR.
        mean = images.mean(axis=(0, 2, 3), keepdims=True)
        std = images.std(axis=(0, 2, 3), keepdims=True) + 1e-8
        # Stored in the training dtype so every batch feeds the model without
        # a per-step astype copy.
        self.images = ((images - mean) / std).astype(get_default_dtype())
        self.labels = labels.astype(np.int64)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.labels)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    def iter_batches(
        self,
        batch_size: int,
        shuffle: bool = False,
        rng: Optional[np.random.Generator] = None,
        with_indices: bool = False,
    ) -> Iterator:
        """Yield (x, y) or (x, y, indices) mini-batches."""
        order = np.arange(len(self))
        if shuffle:
            (rng or np.random.default_rng(self.seed)).shuffle(order)
        for start in range(0, len(order), batch_size):
            idx = order[start : start + batch_size]
            if with_indices:
                yield self.images[idx], self.labels[idx], idx
            else:
                yield self.images[idx], self.labels[idx]

    # ------------------------------------------------------------------ #
    def split(self, fraction: float, seed: int = 0) -> Tuple["SyntheticImageDataset", "SyntheticImageDataset"]:
        """Random split into (first, second) with ``fraction`` in the first."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        cut = int(round(fraction * len(self)))
        return self._subset(order[:cut], f"{self.name}-a"), self._subset(order[cut:], f"{self.name}-b")

    def subsample(self, fraction: float, seed: int = 0) -> "SyntheticImageDataset":
        """Class-stratified subsample — the paper's '10% of D' trick (§4.1)."""
        rng = np.random.default_rng(seed)
        chosen = []
        for c in range(self.num_classes):
            members = np.flatnonzero(self.labels == c)
            take = max(1, int(round(fraction * len(members))))
            chosen.append(rng.choice(members, size=take, replace=False))
        idx = np.concatenate(chosen)
        rng.shuffle(idx)
        return self._subset(idx, f"{self.name}-{fraction:g}")

    def _subset(self, indices: np.ndarray, name: str) -> "SyntheticImageDataset":
        sub = object.__new__(SyntheticImageDataset)
        sub.num_classes = self.num_classes
        sub.image_size = self.image_size
        sub.channels = self.channels
        sub.noise = self.noise
        sub.seed = self.seed
        sub.name = name
        sub.images = self.images[indices]
        sub.labels = self.labels[indices]
        return sub

    def __repr__(self) -> str:
        return (
            f"SyntheticImageDataset({self.name}: {len(self)} samples, "
            f"{self.num_classes} classes, {self.channels}x{self.image_size}x{self.image_size})"
        )


def synthetic_cifar10(num_samples: int = 512, seed: int = 0) -> SyntheticImageDataset:
    """CIFAR-10-shaped synthetic dataset (10 classes, 3x32x32)."""
    return SyntheticImageDataset(10, num_samples, 32, 3, seed=seed, name="synthetic-cifar10")


def synthetic_cifar100(num_samples: int = 1024, seed: int = 0) -> SyntheticImageDataset:
    """CIFAR-100-shaped synthetic dataset (100 classes, 3x32x32)."""
    return SyntheticImageDataset(100, num_samples, 32, 3, seed=seed, name="synthetic-cifar100")


def tiny_dataset(num_classes: int = 4, num_samples: int = 160, image_size: int = 8, seed: int = 0) -> SyntheticImageDataset:
    """Small dataset for fast unit tests and real-training examples."""
    return SyntheticImageDataset(
        num_classes, num_samples, image_size, 3, noise=0.25, seed=seed, name="tiny"
    )
