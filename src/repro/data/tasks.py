"""Compression-task descriptors — the ``Task_k`` feature vector of §3.3.1.

A :class:`CompressionTask` bundles the dataset attributes and original-model
performance information that AutoMC feeds to :math:`\\mathcal{NN}_{exp}`:

1. data features — category number, image size, channel number, data amount;
2. model features — original parameter amount, FLOPs, accuracy.

Paper-scale tasks (Exp1/Exp2) are described by metadata only; tiny tasks also
carry a live dataset so the real-training evaluator can use them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CompressionTask:
    """Everything AutoMC knows about one compression problem."""

    name: str
    num_classes: int
    image_size: int
    channels: int
    data_amount: int
    model_name: str
    model_params: float  # millions
    model_flops: float  # GFLOPs
    model_accuracy: float  # [0, 1]

    def feature_vector(self) -> np.ndarray:
        """The 7-part task embedding input of §3.3.1, log/unit-scaled."""
        return np.array(
            [
                np.log10(self.num_classes),
                self.image_size / 32.0,
                self.channels / 3.0,
                np.log10(max(self.data_amount, 1)),
                np.log10(max(self.model_params, 1e-4)),
                np.log10(max(self.model_flops, 1e-4)),
                self.model_accuracy,
            ]
        )

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.model_name} "
            f"({self.model_params:.2f}M, {self.model_flops:.2f}G, "
            f"acc {self.model_accuracy:.4f}) on {self.num_classes} classes"
        )


# Paper experiment tasks — metadata mirrors Table 2's baseline rows.
EXP1 = CompressionTask(
    name="Exp1",
    num_classes=10,
    image_size=32,
    channels=3,
    data_amount=50_000,
    model_name="resnet56",
    model_params=0.90,
    model_flops=0.27,
    model_accuracy=0.9104,
)

EXP2 = CompressionTask(
    name="Exp2",
    num_classes=100,
    image_size=32,
    channels=3,
    data_amount=50_000,
    model_name="vgg16",
    model_params=14.77,
    model_flops=0.63,
    model_accuracy=0.7003,
)


def task_from_dataset(dataset, model, model_name: str, accuracy: float) -> CompressionTask:
    """Build a task descriptor by profiling a live model on a live dataset."""
    from ..nn.profile import profile_model

    prof = profile_model(model, (dataset.channels, dataset.image_size, dataset.image_size))
    return CompressionTask(
        name=dataset.name,
        num_classes=dataset.num_classes,
        image_size=dataset.image_size,
        channels=dataset.channels,
        data_amount=len(dataset),
        model_name=model_name,
        model_params=prof.params_m,
        model_flops=prof.flops_g,
        model_accuracy=accuracy,
    )


def transfer_task(task: CompressionTask, model_name: str, model_params: float,
                  model_flops: float, model_accuracy: float) -> CompressionTask:
    """The same dataset/task with a different model (for the transfer study)."""
    return CompressionTask(
        name=f"{task.name}->{model_name}",
        num_classes=task.num_classes,
        image_size=task.image_size,
        channels=task.channels,
        data_amount=task.data_amount,
        model_name=model_name,
        model_params=model_params,
        model_flops=model_flops,
        model_accuracy=model_accuracy,
    )
