"""Datasets, loaders, augmentation and task descriptors."""

from .augmentation import AugmentedDataset, random_crop, random_horizontal_flip
from .datasets import (
    SyntheticImageDataset,
    synthetic_cifar10,
    synthetic_cifar100,
    tiny_dataset,
)
from .tasks import EXP1, EXP2, CompressionTask, task_from_dataset, transfer_task

__all__ = [
    "AugmentedDataset",
    "EXP1",
    "EXP2",
    "CompressionTask",
    "SyntheticImageDataset",
    "random_crop",
    "random_horizontal_flip",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "task_from_dataset",
    "tiny_dataset",
    "transfer_task",
]
