"""TransE knowledge-graph embedding (Bordes et al., NeurIPS 2013).

A simpler alternative to TransR kept for the design-choice ablation
benchmarks: entities and relations share one space and a true triplet should
satisfy ``e_h + e_r ≈ e_t`` (no per-relation projection).  The paper picks
TransR because the five relation types of G connect entities of different
kinds; comparing against TransE quantifies how much that choice matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass
class TransEConfig:
    dim: int = 32
    margin: float = 1.0
    learning_rate: float = 0.01
    batch_size: int = 512
    seed: int = 0


class TransE:
    """Margin-ranking TransE trainer over integer triplet arrays."""

    def __init__(self, num_entities: int, num_relations: int, config: Optional[TransEConfig] = None):
        self.config = config or TransEConfig()
        rng = np.random.default_rng(self.config.seed)
        bound = 6.0 / np.sqrt(self.config.dim)
        self.entities = rng.uniform(-bound, bound, size=(num_entities, self.config.dim))
        self.relations = rng.uniform(-bound, bound, size=(num_relations, self.config.dim))
        self._normalize()
        self._rng = rng
        self.loss_history: List[float] = []

    def _normalize(self) -> None:
        norms = np.linalg.norm(self.entities, axis=1, keepdims=True)
        np.divide(self.entities, np.maximum(norms, 1.0), out=self.entities)

    def score(self, heads: np.ndarray, rels: np.ndarray, tails: np.ndarray) -> np.ndarray:
        diff = self.entities[heads] + self.relations[rels] - self.entities[tails]
        return (diff ** 2).sum(axis=1)

    def train_epoch(self, triplets: np.ndarray) -> float:
        cfg = self.config
        rng = self._rng
        order = rng.permutation(len(triplets))
        total = 0.0
        n_entities = len(self.entities)
        for start in range(0, len(order), cfg.batch_size):
            batch = triplets[order[start : start + cfg.batch_size]]
            heads, rels, tails = batch[:, 0], batch[:, 1], batch[:, 2]
            corrupt_head = rng.random(len(batch)) < 0.5
            random_entities = rng.integers(0, n_entities, size=len(batch))
            neg_heads = np.where(corrupt_head, random_entities, heads)
            neg_tails = np.where(corrupt_head, tails, random_entities)

            pos = self.score(heads, rels, tails)
            neg = self.score(neg_heads, rels, neg_tails)
            violation = cfg.margin + pos - neg
            active = violation > 0
            total += float(violation[active].sum())
            if not active.any():
                continue
            self._step(heads[active], rels[active], tails[active],
                       neg_heads[active], neg_tails[active])
        self._normalize()
        self.loss_history.append(total / max(len(triplets), 1))
        return self.loss_history[-1]

    def _step(self, heads, rels, tails, neg_heads, neg_tails) -> None:
        lr = self.config.learning_rate
        ent_grad = np.zeros_like(self.entities)
        ent_count = np.zeros(len(self.entities))
        rel_grad = np.zeros_like(self.relations)
        rel_count = np.zeros(len(self.relations))
        for sign, h_idx, t_idx in ((1.0, heads, tails), (-1.0, neg_heads, neg_tails)):
            u = 2.0 * (self.entities[h_idx] + self.relations[rels] - self.entities[t_idx])
            np.add.at(ent_grad, h_idx, sign * u)
            np.add.at(ent_grad, t_idx, -sign * u)
            np.add.at(ent_count, h_idx, 1.0)
            np.add.at(ent_count, t_idx, 1.0)
            np.add.at(rel_grad, rels, sign * u)
            np.add.at(rel_count, rels, 1.0)
        self.entities -= lr * ent_grad / np.maximum(ent_count, 1.0)[:, None]
        self.relations -= lr * rel_grad / np.maximum(rel_count, 1.0)[:, None]

    def fit(self, triplets: np.ndarray, epochs: int = 20) -> List[float]:
        for _ in range(epochs):
            self.train_epoch(triplets)
        return self.loss_history
