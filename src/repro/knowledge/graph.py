"""Knowledge graph on compression strategies (§3.3.1, Figure 2a).

Five entity types and five relation types:

========  ==========================================================
E1        compression strategy (one node per strategy in the space)
E2        compression method (C1..C6)
E3        hyperparameter (HP1, HP2, ...)
E4        hyperparameter setting (concrete value, e.g. ``HP2=0.2``)
E5        compression technique (TE1..TE9)
R1        strategy -> its method              (E1 -> E2)
R2        strategy -> each of its settings    (E1 -> E4)
R3        method -> each of its hyperparams   (E2 -> E3)
R4        method -> each of its techniques    (E2 -> E5)
R5        hyperparameter -> each setting      (E3 -> E4)
========  ==========================================================

The graph is stored both as a :class:`networkx.MultiDiGraph` (for inspection
and tests) and as integer triplet arrays (for TransR training).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from ..space.hyperparams import HP_GRID, METHOD_HPS
from ..space.strategy import StrategySpace

RELATIONS = ("R1", "R2", "R3", "R4", "R5")

ENTITY_TYPES = ("strategy", "method", "hyperparameter", "setting", "technique")


def _setting_id(hp: str, value: object) -> str:
    return f"{hp}={value}"


@dataclass
class KnowledgeGraph:
    """The compression-strategy knowledge graph G."""

    graph: nx.MultiDiGraph
    entity_index: Dict[str, int]
    relation_index: Dict[str, int]
    triplets: np.ndarray  # (n, 3) int array of (head, relation, tail)
    strategy_entities: Dict[str, int]  # strategy identifier -> entity id

    @property
    def num_entities(self) -> int:
        return len(self.entity_index)

    @property
    def num_relations(self) -> int:
        return len(self.relation_index)

    def entities_of_type(self, entity_type: str) -> List[str]:
        return [
            name
            for name, attrs in self.graph.nodes(data=True)
            if attrs.get("entity_type") == entity_type
        ]

    def __repr__(self) -> str:
        return (
            f"KnowledgeGraph({self.num_entities} entities, "
            f"{len(self.triplets)} triplets)"
        )


def build_knowledge_graph(space: StrategySpace) -> KnowledgeGraph:
    """Construct G for every strategy in ``space``."""
    graph = nx.MultiDiGraph()
    entity_index: Dict[str, int] = {}
    triplet_list: List[Tuple[int, int, int]] = []
    relation_index = {r: i for i, r in enumerate(RELATIONS)}

    def entity(name: str, entity_type: str) -> int:
        if name not in entity_index:
            entity_index[name] = len(entity_index)
            graph.add_node(name, entity_type=entity_type)
        return entity_index[name]

    def add(head: int, relation: str, tail: int, head_name: str, tail_name: str) -> None:
        triplet_list.append((head, relation_index[relation], tail))
        graph.add_edge(head_name, tail_name, key=relation, relation=relation)

    # Static skeleton: methods, hyperparameters, settings, techniques.
    for label in space.method_labels:
        method_node = entity(label, "method")
        from ..compression import get_method

        for technique in get_method(label).techniques:
            te_node = entity(technique, "technique")
            add(method_node, "R4", te_node, label, technique)
        for hp in METHOD_HPS[label]:
            hp_node = entity(hp, "hyperparameter")
            add(method_node, "R3", hp_node, label, hp)
            for value in HP_GRID[hp]:
                setting = _setting_id(hp, value)
                setting_node = entity(setting, "setting")
                # R5 edges are added once per (hp, setting) pair.
                if not graph.has_edge(hp, setting, key="R5"):
                    add(hp_node, "R5", setting_node, hp, setting)

    # One strategy node per point of the space.
    strategy_entities: Dict[str, int] = {}
    for strategy in space:
        node = entity(strategy.identifier, "strategy")
        strategy_entities[strategy.identifier] = node
        add(node, "R1", entity_index[strategy.method_label],
            strategy.identifier, strategy.method_label)
        for hp, value in strategy.hp_items:
            setting = _setting_id(hp, value)
            add(node, "R2", entity_index[setting], strategy.identifier, setting)

    return KnowledgeGraph(
        graph=graph,
        entity_index=entity_index,
        relation_index=relation_index,
        triplets=np.asarray(triplet_list, dtype=np.int64),
        strategy_entities=strategy_entities,
    )
