"""Loading and saving experience records as JSON.

Users extending AutoMC with their own measurements drop a JSON file of
records and pass them to :func:`~repro.knowledge.embedding.learn_embeddings`
or the AutoMC facade.  Schema (one object per record):

.. code-block:: json

    {
      "method": "C2",
      "hp": {"HP2": 0.36, "HP8": "l2_weight"},
      "task": {
        "name": "cifar10-resnet56", "num_classes": 10, "image_size": 32,
        "channels": 3, "data_amount": 50000, "model_name": "resnet56",
        "model_params": 0.85, "model_flops": 0.25, "model_accuracy": 0.9303
      },
      "pr": 0.40,
      "ar": -0.005
    }
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from ..data.tasks import CompressionTask
from .experience import ExperienceRecord

_REQUIRED_TASK_KEYS = (
    "name", "num_classes", "image_size", "channels", "data_amount",
    "model_name", "model_params", "model_flops", "model_accuracy",
)


def record_to_dict(record: ExperienceRecord) -> Dict:
    """JSON-serialisable representation of one record."""
    task = record.task
    return {
        "method": record.method_label,
        "hp": dict(record.hp),
        "task": {key: getattr(task, key) for key in _REQUIRED_TASK_KEYS},
        "pr": record.pr,
        "ar": record.ar,
    }


def record_from_dict(payload: Dict) -> ExperienceRecord:
    """Parse and validate one record object."""
    for key in ("method", "task", "pr", "ar"):
        if key not in payload:
            raise ValueError(f"experience record missing {key!r}: {payload}")
    task_payload = payload["task"]
    missing = [k for k in _REQUIRED_TASK_KEYS if k not in task_payload]
    if missing:
        raise ValueError(f"experience task missing {missing}")
    pr = float(payload["pr"])
    ar = float(payload["ar"])
    if not 0.0 < pr < 1.0:
        raise ValueError(f"pr must be in (0, 1), got {pr}")
    if ar <= -1.0:
        raise ValueError(f"ar must be > -1, got {ar}")
    task = CompressionTask(**{k: task_payload[k] for k in _REQUIRED_TASK_KEYS})
    return ExperienceRecord(
        method_label=str(payload["method"]),
        hp=tuple(sorted(dict(payload.get("hp", {})).items())),
        task=task,
        pr=pr,
        ar=ar,
    )


def save_experience(records: Sequence[ExperienceRecord], path: str) -> None:
    """Write records to a JSON file."""
    with open(path, "w") as handle:
        json.dump([record_to_dict(r) for r in records], handle, indent=2)


def load_experience(path: str) -> List[ExperienceRecord]:
    """Read records from a JSON file (validating every entry)."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, list):
        raise ValueError("experience file must contain a JSON list")
    return [record_from_dict(item) for item in payload]
