"""TransR knowledge-graph embedding (Lin et al., AAAI 2015) — Eq. 2.

Entities live in R^d, relations in R^k, and each relation owns a projection
matrix W_r in R^{k x d}.  A true triplet (h, r, t) should satisfy
``W_r e_h + e_r ≈ W_r e_t``; training minimises a margin ranking loss between
true triplets and corrupted negatives, with hand-derived gradients (the
model is small enough that explicit numpy gradients beat the autodiff tape).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass
class TransRConfig:
    entity_dim: int = 32
    relation_dim: int = 32
    margin: float = 1.0
    learning_rate: float = 0.01
    batch_size: int = 512
    seed: int = 0


class TransR:
    """Margin-ranking TransR trainer over integer triplet arrays."""

    def __init__(self, num_entities: int, num_relations: int, config: Optional[TransRConfig] = None):
        self.config = config or TransRConfig()
        rng = np.random.default_rng(self.config.seed)
        d, k = self.config.entity_dim, self.config.relation_dim
        bound = 6.0 / np.sqrt(d)
        self.entities = rng.uniform(-bound, bound, size=(num_entities, d))
        self.relations = rng.uniform(-bound, bound, size=(num_relations, k))
        self.projections = np.tile(np.eye(k, d), (num_relations, 1, 1))
        self.projections += rng.normal(0, 0.01, size=self.projections.shape)
        self._normalize()
        self._rng = rng
        self.loss_history: List[float] = []

    # ------------------------------------------------------------------ #
    def _normalize(self) -> None:
        norms = np.linalg.norm(self.entities, axis=1, keepdims=True)
        np.divide(self.entities, np.maximum(norms, 1.0), out=self.entities)
        rnorms = np.linalg.norm(self.relations, axis=1, keepdims=True)
        np.divide(self.relations, np.maximum(rnorms, 1.0), out=self.relations)

    def score(self, heads: np.ndarray, rels: np.ndarray, tails: np.ndarray) -> np.ndarray:
        """||W_r e_h + e_r - W_r e_t||^2 for each triplet (lower = better)."""
        w = self.projections[rels]  # (n, k, d)
        h = np.einsum("nkd,nd->nk", w, self.entities[heads])
        t = np.einsum("nkd,nd->nk", w, self.entities[tails])
        diff = h + self.relations[rels] - t
        return (diff ** 2).sum(axis=1)

    # ------------------------------------------------------------------ #
    def train_epoch(self, triplets: np.ndarray) -> float:
        """One pass of margin-ranking SGD with uniform negative sampling."""
        cfg = self.config
        rng = self._rng
        order = rng.permutation(len(triplets))
        total_loss = 0.0
        n_entities = len(self.entities)
        for start in range(0, len(order), cfg.batch_size):
            batch = triplets[order[start : start + cfg.batch_size]]
            heads, rels, tails = batch[:, 0], batch[:, 1], batch[:, 2]
            # Corrupt head or tail uniformly.
            corrupt_head = rng.random(len(batch)) < 0.5
            random_entities = rng.integers(0, n_entities, size=len(batch))
            neg_heads = np.where(corrupt_head, random_entities, heads)
            neg_tails = np.where(corrupt_head, tails, random_entities)

            pos = self.score(heads, rels, tails)
            neg = self.score(neg_heads, rels, neg_tails)
            violation = cfg.margin + pos - neg
            active = violation > 0
            total_loss += float(violation[active].sum())
            if not active.any():
                continue
            self._sgd_step(
                heads[active], rels[active], tails[active],
                neg_heads[active], neg_tails[active],
            )
        self._normalize()
        self.loss_history.append(total_loss / max(len(triplets), 1))
        return self.loss_history[-1]

    def _sgd_step(self, heads, rels, tails, neg_heads, neg_tails) -> None:
        """Apply gradients of (pos_score - neg_score) for violating triplets.

        Many triplets in a batch touch the *same* relation (there are only
        five), so raw accumulation explodes; gradients are averaged per
        parameter (entity / relation / projection) before the update.
        """
        lr = self.config.learning_rate
        ent_grad = np.zeros_like(self.entities)
        ent_count = np.zeros(len(self.entities))
        rel_grad = np.zeros_like(self.relations)
        rel_count = np.zeros(len(self.relations))
        proj_grad = np.zeros_like(self.projections)

        for sign, h_idx, t_idx in ((1.0, heads, tails), (-1.0, neg_heads, neg_tails)):
            w = self.projections[rels]  # (n, k, d)
            eh = self.entities[h_idx]
            et = self.entities[t_idx]
            u = np.einsum("nkd,nd->nk", w, eh) + self.relations[rels] - np.einsum(
                "nkd,nd->nk", w, et
            )  # (n, k)
            grad_h = 2.0 * np.einsum("nkd,nk->nd", w, u)
            grad_r = 2.0 * u
            grad_w = 2.0 * np.einsum("nk,nd->nkd", u, eh - et)
            np.add.at(ent_grad, h_idx, sign * grad_h)
            np.add.at(ent_grad, t_idx, -sign * grad_h)
            np.add.at(ent_count, h_idx, 1.0)
            np.add.at(ent_count, t_idx, 1.0)
            np.add.at(rel_grad, rels, sign * grad_r)
            np.add.at(rel_count, rels, 1.0)
            np.add.at(proj_grad, rels, sign * grad_w)

        ent_scale = np.maximum(ent_count, 1.0)[:, None]
        rel_scale = np.maximum(rel_count, 1.0)
        self.entities -= lr * ent_grad / ent_scale
        self.relations -= lr * rel_grad / rel_scale[:, None]
        self.projections -= lr * proj_grad / rel_scale[:, None, None]

    # ------------------------------------------------------------------ #
    def fit(self, triplets: np.ndarray, epochs: int = 20) -> List[float]:
        for _ in range(epochs):
            self.train_epoch(triplets)
        return self.loss_history

    def embedding_of(self, entity_id: int) -> np.ndarray:
        return self.entities[entity_id].copy()
