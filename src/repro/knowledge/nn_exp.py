"""NN_exp — the experience-based embedding enhancement network (§3.3.1, Eq. 3).

A small MLP takes the concatenation of a strategy embedding and a task
feature vector and predicts that strategy's (AR, PR) on the task.  Training
jointly optimises the network parameters θ *and the strategy embeddings
themselves* — the gradient flowing into the embedding table is what injects
the papers' experimental experience into the representations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn import Adam, Embedding, Linear, Module, Tensor, concat
from ..space.strategy import StrategySpace
from .experience import ExperienceRecord, nearest_strategy

TASK_FEATURES = 7


class NNExp(Module):
    """MLP predicting (AR, PR) from [strategy embedding ; task features]."""

    def __init__(self, embedding_dim: int, hidden: int = 64, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(embedding_dim + TASK_FEATURES, hidden, rng=rng)
        self.fc2 = Linear(hidden, hidden // 2, rng=rng)
        self.out = Linear(hidden // 2, 2, rng=rng)

    def forward(self, strategy_embedding: Tensor, task_features: Tensor) -> Tensor:
        x = concat([strategy_embedding, task_features], axis=1)
        x = self.fc1(x).relu()
        x = self.fc2(x).relu()
        return self.out(x)


@dataclass
class EnhancementResult:
    """Outcome of one embedding-enhancement phase."""

    embeddings: np.ndarray  # (num_strategies, dim) — the enhanced table
    losses: List[float]
    matched_records: int


def enhance_embeddings(
    embeddings: np.ndarray,
    space: StrategySpace,
    records: Sequence[ExperienceRecord],
    network: Optional[NNExp] = None,
    epochs: int = 30,
    learning_rate: float = 1e-3,
    seed: int = 0,
) -> Tuple[EnhancementResult, NNExp]:
    """Optimise θ and the strategy embeddings against Eq. 3's MSE objective.

    Returns the enhanced embedding table (a copy) and the trained network
    (reusable across Algorithm 1's alternating rounds).
    """
    dim = embeddings.shape[1]
    net = network or NNExp(dim, seed=seed)

    table = Embedding(embeddings.shape[0], dim)
    table.weight.data = embeddings.copy()

    pairs = []
    for record in records:
        strategy = nearest_strategy(space, record)
        if strategy is not None:
            pairs.append((strategy.index, record))
    if not pairs:
        return EnhancementResult(embeddings.copy(), [], 0), net

    ids = np.array([i for i, _ in pairs], dtype=np.int64)
    tasks = np.stack([r.task.feature_vector() for _, r in pairs])
    targets = np.stack([r.target for _, r in pairs])

    optimizer = Adam(list(net.parameters()) + [table.weight], lr=learning_rate)
    losses: List[float] = []
    for _ in range(epochs):
        emb = table(ids)
        pred = net(emb, Tensor(tasks))
        diff = pred - Tensor(targets)
        loss = (diff * diff).mean()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        losses.append(loss.item())

    return (
        EnhancementResult(
            embeddings=table.weight.data.copy(),
            losses=losses,
            matched_records=len(pairs),
        ),
        net,
    )


def predict_performance(
    net: NNExp,
    embeddings: np.ndarray,
    strategy_indices: np.ndarray,
    task_features: np.ndarray,
) -> np.ndarray:
    """Batch (AR, PR) predictions for strategies on one task."""
    emb = Tensor(embeddings[strategy_indices])
    tasks = Tensor(np.tile(task_features, (len(strategy_indices), 1)))
    return net(emb, tasks).data
