"""Domain knowledge: knowledge graph, TransR, experience, NN_exp (§3.3.1)."""

from .embedding import EmbeddingConfig, StrategyEmbeddings, learn_embeddings
from .experience import ExperienceRecord, default_experience, nearest_strategy
from .graph import ENTITY_TYPES, RELATIONS, KnowledgeGraph, build_knowledge_graph
from .nn_exp import NNExp, enhance_embeddings, predict_performance
from .persistence import load_experience, record_from_dict, record_to_dict, save_experience
from .transe import TransE, TransEConfig
from .transr import TransR, TransRConfig

__all__ = [
    "ENTITY_TYPES",
    "EmbeddingConfig",
    "ExperienceRecord",
    "KnowledgeGraph",
    "NNExp",
    "RELATIONS",
    "StrategyEmbeddings",
    "TransE",
    "TransEConfig",
    "TransR",
    "TransRConfig",
    "build_knowledge_graph",
    "default_experience",
    "enhance_embeddings",
    "learn_embeddings",
    "load_experience",
    "nearest_strategy",
    "predict_performance",
    "record_from_dict",
    "record_to_dict",
    "save_experience",
]
