"""Experimental experience E extracted from the six source papers (§3.3.1).

Each record is one published result: *method X with (partial) setting Y
achieved parameter reduction PR and accuracy change AR on task Z*.  The
numbers below are transcriptions/derivations from the evaluation tables of
the six papers in Table 1 (LMA AAAI'20, LeGR CVPR'20, NS ICCV'17, SFP
IJCAI'18, HOS CVPR'20, LFB ICCV'19), rounded and normalised to the paper's
AR/PR convention:

* ``pr`` = (P(M) - P(S[M])) / P(M) in [0, 1]
* ``ar`` = (A(S[M]) - A(M)) / A(M), usually small and negative.

AutoMC never evaluates these tasks — they exist purely to teach
:math:`\\mathcal{NN}_{exp}` how each method's accuracy degrades with PR on
different kinds of tasks (small vs large models, 10 vs 100 vs 1000 classes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.tasks import CompressionTask
from ..space.hyperparams import HP_GRID
from ..space.strategy import CompressionStrategy, StrategySpace

# ---------------------------------------------------------------------------
# Task descriptors for the benchmarks the source papers report on.
# ---------------------------------------------------------------------------
_TASKS: Dict[str, CompressionTask] = {
    "c10-r20": CompressionTask("cifar10-resnet20", 10, 32, 3, 50_000, "resnet20", 0.27, 0.08, 0.9153),
    "c10-r56": CompressionTask("cifar10-resnet56", 10, 32, 3, 50_000, "resnet56", 0.85, 0.25, 0.9303),
    "c10-r110": CompressionTask("cifar10-resnet110", 10, 32, 3, 50_000, "resnet110", 1.72, 0.51, 0.9350),
    "c10-vgg16": CompressionTask("cifar10-vgg16", 10, 32, 3, 50_000, "vgg16", 14.72, 0.63, 0.9366),
    "c100-vgg16": CompressionTask("cifar100-vgg16", 100, 32, 3, 50_000, "vgg16", 14.77, 0.63, 0.7351),
    "c100-r56": CompressionTask("cifar100-resnet56", 100, 32, 3, 50_000, "resnet56", 0.86, 0.25, 0.7137),
    "imagenet-r18": CompressionTask("imagenet-resnet18", 1000, 224, 3, 1_281_167, "resnet18", 11.69, 3.64, 0.6976),
    "imagenet-r34": CompressionTask("imagenet-resnet34", 1000, 224, 3, 1_281_167, "resnet34", 21.80, 7.34, 0.7331),
}


@dataclass(frozen=True)
class ExperienceRecord:
    """One (strategy-ish, task, AR, PR) tuple from a source paper."""

    method_label: str
    hp: Tuple[Tuple[str, object], ...]  # partial settings reported by the paper
    task: CompressionTask
    pr: float
    ar: float

    @property
    def target(self) -> np.ndarray:
        return np.array([self.ar, self.pr])


def _rec(method: str, task_key: str, pr: float, acc_drop_pct: float, **hp) -> ExperienceRecord:
    """Record helper: ``acc_drop_pct`` is the absolute accuracy change in %."""
    task = _TASKS[task_key]
    ar = (acc_drop_pct / 100.0) / task.model_accuracy
    return ExperienceRecord(
        method_label=method,
        hp=tuple(sorted(hp.items())),
        task=task,
        pr=pr,
        ar=ar,
    )


def default_experience() -> List[ExperienceRecord]:
    """The curated experience table (≈70 records, ~12 per method)."""
    records = [
        # --- C1 LMA (Xu et al., AAAI 2020): distillation-only compression;
        # large accuracy losses when used alone at high compression.
        _rec("C1", "c10-r56", 0.30, -2.1, HP2=0.28, HP4=3, HP5=0.5),
        _rec("C1", "c10-r56", 0.40, -4.8, HP2=0.36, HP4=3, HP5=0.5),
        _rec("C1", "c10-r56", 0.70, -11.9, HP2=0.44, HP4=6, HP5=0.3),
        _rec("C1", "c10-r20", 0.40, -5.6, HP2=0.36, HP4=3, HP5=0.5),
        _rec("C1", "c100-vgg16", 0.40, -19.5, HP2=0.36, HP4=6, HP5=0.3),
        _rec("C1", "c100-vgg16", 0.70, -20.4, HP2=0.44, HP4=6, HP5=0.3),
        _rec("C1", "c10-vgg16", 0.40, -3.9, HP2=0.36, HP4=3, HP5=0.5),
        _rec("C1", "imagenet-r18", 0.30, -3.2, HP2=0.28, HP4=3, HP5=0.5),
        _rec("C1", "c10-r56", 0.12, -0.6, HP2=0.12, HP4=3, HP5=0.5),
        _rec("C1", "c100-r56", 0.40, -8.3, HP2=0.36, HP4=6, HP5=0.3),
        # --- C2 LeGR (Chin et al., CVPR 2020): excellent at mild pruning,
        # degrades faster past ~60% reduction.
        _rec("C2", "c10-r56", 0.20, +0.1, HP2=0.2, HP6=0.9, HP8="l2_weight"),
        _rec("C2", "c10-r56", 0.40, -0.4, HP2=0.36, HP6=0.9, HP8="l2_weight"),
        _rec("C2", "c10-r56", 0.70, -2.1, HP2=0.44, HP6=0.9, HP8="l2_weight"),
        _rec("C2", "c10-r20", 0.40, -0.7, HP2=0.36, HP6=0.7, HP8="l2_weight"),
        _rec("C2", "c10-r110", 0.40, -0.2, HP2=0.36, HP6=0.9, HP8="l1_weight"),
        _rec("C2", "c100-vgg16", 0.40, -0.3, HP2=0.36, HP6=0.9, HP8="l2_weight"),
        _rec("C2", "c100-vgg16", 0.70, -1.6, HP2=0.44, HP6=0.9, HP8="l2_weight"),
        _rec("C2", "imagenet-r18", 0.30, -1.2, HP2=0.28, HP6=0.7, HP8="l2_weight"),
        _rec("C2", "imagenet-r34", 0.30, -0.9, HP2=0.28, HP6=0.7, HP8="l2_bn_param"),
        _rec("C2", "c10-vgg16", 0.40, -0.2, HP2=0.36, HP6=0.9, HP8="l2_weight"),
        _rec("C2", "c10-r56", 0.55, -1.1, HP2=0.44, HP6=0.9, HP8="l2_weight"),
        # --- C3 NS (Liu et al., ICCV 2017): solid all-rounder, slightly
        # behind LeGR at mild ratios, better FLOPs reduction.
        _rec("C3", "c10-r56", 0.40, -1.7, HP2=0.36, HP6=0.9),
        _rec("C3", "c10-r56", 0.70, -4.9, HP2=0.44, HP6=0.9),
        _rec("C3", "c10-vgg16", 0.70, -0.1, HP2=0.44, HP6=0.9),
        _rec("C3", "c100-vgg16", 0.40, -0.1, HP2=0.36, HP6=0.9),
        _rec("C3", "c100-vgg16", 0.70, -1.1, HP2=0.44, HP6=0.9),
        _rec("C3", "c10-r20", 0.40, -1.9, HP2=0.36, HP6=0.7),
        _rec("C3", "c10-r110", 0.40, -0.9, HP2=0.36, HP6=0.9),
        _rec("C3", "c100-r56", 0.40, -2.1, HP2=0.36, HP6=0.9),
        _rec("C3", "imagenet-r18", 0.30, -1.8, HP2=0.28, HP6=0.7),
        _rec("C3", "c10-vgg16", 0.40, +0.1, HP2=0.36, HP6=0.9),
        # --- C4 SFP (He et al., IJCAI 2018): soft pruning recovers well at
        # moderate ratios; needs many back-prop epochs.
        _rec("C4", "c10-r56", 0.40, -2.6, HP2=0.36, HP9=0.4, HP10=1),
        _rec("C4", "c10-r56", 0.70, -4.0, HP2=0.44, HP9=0.5, HP10=1),
        _rec("C4", "c10-r20", 0.40, -3.4, HP2=0.36, HP9=0.4, HP10=1),
        _rec("C4", "c10-r110", 0.40, -1.2, HP2=0.36, HP9=0.4, HP10=3),
        _rec("C4", "c100-vgg16", 0.40, -0.6, HP2=0.36, HP9=0.4, HP10=1),
        _rec("C4", "c100-vgg16", 0.70, -2.4, HP2=0.44, HP9=0.5, HP10=1),
        _rec("C4", "c100-r56", 0.40, -2.7, HP2=0.36, HP9=0.4, HP10=1),
        _rec("C4", "imagenet-r34", 0.30, -2.1, HP2=0.28, HP9=0.3, HP10=1),
        _rec("C4", "imagenet-r18", 0.30, -2.5, HP2=0.28, HP9=0.3, HP10=1),
        _rec("C4", "c10-vgg16", 0.40, -1.1, HP2=0.36, HP9=0.4, HP10=3),
        # --- C5 HOS (Chatzikonstantinou et al., CVPR 2020): strongest at
        # aggressive compression thanks to the low-rank second stage, but
        # weak on many-class tasks (VGG-16/CIFAR-100 drops hard).
        _rec("C5", "c10-r56", 0.40, -0.9, HP2=0.36, HP11="P1", HP12="k34"),
        _rec("C5", "c10-r56", 0.70, -1.8, HP2=0.44, HP11="P1", HP12="k34"),
        _rec("C5", "c10-r20", 0.40, -1.5, HP2=0.36, HP11="P1", HP12="skew_kur"),
        _rec("C5", "c10-r110", 0.40, -0.5, HP2=0.36, HP11="P2", HP12="k34"),
        _rec("C5", "c10-vgg16", 0.70, -1.2, HP2=0.44, HP11="P1", HP12="k34"),
        _rec("C5", "c100-vgg16", 0.40, -7.9, HP2=0.36, HP11="P1", HP12="l1norm"),
        _rec("C5", "c100-vgg16", 0.70, -10.3, HP2=0.44, HP11="P1", HP12="l1norm"),
        _rec("C5", "c100-r56", 0.40, -3.3, HP2=0.36, HP11="P1", HP12="k34"),
        _rec("C5", "imagenet-r18", 0.30, -1.9, HP2=0.28, HP11="P3", HP12="k34"),
        _rec("C5", "imagenet-r34", 0.30, -1.4, HP2=0.28, HP11="P1", HP12="k34"),
        _rec("C5", "c10-r56", 0.55, -1.3, HP2=0.44, HP11="P1", HP12="k34"),
        # --- C6 LFB (Li et al., ICCV 2019): shines on small/shallow models,
        # collapses on very deep ones (the paper's ResNet-164 observation).
        _rec("C6", "c10-r20", 0.40, +0.3, HP2=0.36, HP15=1, HP16="MSE"),
        _rec("C6", "c10-r56", 0.40, -1.2, HP2=0.36, HP15=1, HP16="MSE"),
        _rec("C6", "c10-r56", 0.70, -0.9, HP2=0.44, HP15=1.5, HP16="MSE"),
        _rec("C6", "c10-r110", 0.40, -4.7, HP2=0.36, HP15=1, HP16="CE"),
        _rec("C6", "c100-vgg16", 0.40, -9.2, HP2=0.36, HP15=1, HP16="MSE"),
        _rec("C6", "c100-vgg16", 0.57, -12.5, HP2=0.44, HP15=3, HP16="MSE"),
        _rec("C6", "c10-vgg16", 0.40, -2.3, HP2=0.36, HP15=1, HP16="NLL"),
        _rec("C6", "imagenet-r18", 0.30, -2.2, HP2=0.28, HP15=0.5, HP16="CE"),
        _rec("C6", "c100-r56", 0.40, -3.9, HP2=0.36, HP15=1, HP16="MSE"),
        _rec("C6", "c10-r20", 0.60, -0.8, HP2=0.44, HP15=1.5, HP16="MSE"),
        # --- C8 PTQ extension (Distiller-style post-training quantization):
        # removes no parameters (pr = 0) but halves/quarters weight storage;
        # int8 costs a few tenths of a point, fp16 is essentially free, and
        # more calibration batches tighten int8 activation scales.
        _rec("C8", "c10-r56", 0.0, -0.3, HP19="int8", HP20=4),
        _rec("C8", "c10-r56", 0.0, -0.6, HP19="int8", HP20=1),
        _rec("C8", "c10-r56", 0.0, -0.05, HP19="fp16"),
        _rec("C8", "c10-r20", 0.0, -0.4, HP19="int8", HP20=2),
        _rec("C8", "c10-vgg16", 0.0, -0.2, HP19="int8", HP20=2),
        _rec("C8", "c100-vgg16", 0.0, -0.7, HP19="int8", HP20=4),
        _rec("C8", "c100-r56", 0.0, -0.5, HP19="int8", HP20=2),
        _rec("C8", "imagenet-r18", 0.0, -0.9, HP19="int8", HP20=4),
        _rec("C8", "imagenet-r18", 0.0, -0.1, HP19="fp16"),
        _rec("C8", "c10-r110", 0.0, -0.3, HP19="int8", HP20=4),
    ]
    # Fine-tune-epoch sensitivity: every method recovers with more epochs.
    for method in ("C1", "C2", "C3", "C5", "C6"):
        for hp1, bonus in ((0.1, -0.8), (0.3, -0.2), (0.5, +0.1)):
            records.append(_rec(method, "c10-r56", 0.40, -2.0 + bonus * 2, HP1=hp1, HP2=0.36))
    return records


# ---------------------------------------------------------------------------
# Matching records to strategies in the live search space.
# ---------------------------------------------------------------------------
def nearest_strategy(space: StrategySpace, record: ExperienceRecord) -> Optional[CompressionStrategy]:
    """The strategy in ``space`` closest to a record's reported setting.

    Matching is by method, then by minimal normalised distance over the
    hyperparameters the record specifies (categoricals count 0/1).
    """
    candidates = space.of_method(record.method_label)
    if not candidates:
        return None
    recorded = dict(record.hp)

    def distance(strategy: CompressionStrategy) -> float:
        total = 0.0
        hp = strategy.hp
        for name, value in recorded.items():
            if name not in hp:
                continue
            if isinstance(value, str):
                total += 0.0 if hp[name] == value else 1.0
            else:
                grid = [v for v in HP_GRID[name] if not isinstance(v, str)]
                span = (max(grid) - min(grid)) or 1.0
                total += abs(float(hp[name]) - float(value)) / span
        return total

    return min(candidates, key=distance)
