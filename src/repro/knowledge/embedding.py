"""Algorithm 1 — compression-strategy embedding learning.

Alternates TransR training over the knowledge graph with experience-based
enhancement through NN_exp, exactly as the paper's pseudo-code:

1. build G over the strategy space and gather experience E;
2. each round: one (or a few) TransR epochs -> extract strategy embeddings ->
   optimise them jointly with NN_exp against E (Eq. 3) -> write the enhanced
   embeddings back into the TransR entity table;
3. return the final high-level embeddings.

Ablation switches: ``use_kg=False`` skips TransR (random init — the
AutoMC-KG variant); ``use_experience=False`` skips the enhancement rounds
(the AutoMC-NN_exp variant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..space.strategy import StrategySpace
from .experience import ExperienceRecord, default_experience
from .graph import KnowledgeGraph, build_knowledge_graph
from .nn_exp import NNExp, enhance_embeddings
from .transr import TransR, TransRConfig


@dataclass
class EmbeddingConfig:
    dim: int = 32
    rounds: int = 4              # alternating rounds of Algorithm 1
    transr_epochs_per_round: int = 3
    nn_exp_epochs_per_round: int = 30
    use_kg: bool = True
    use_experience: bool = True
    seed: int = 0


@dataclass
class StrategyEmbeddings:
    """The learned high-level embeddings, indexed like the strategy space."""

    table: np.ndarray  # (num_strategies, dim)
    space: StrategySpace
    nn_exp: Optional[NNExp] = None
    transr_losses: List[float] = field(default_factory=list)
    nn_exp_losses: List[float] = field(default_factory=list)

    def of(self, strategy) -> np.ndarray:
        return self.table[strategy.index]

    @property
    def dim(self) -> int:
        return self.table.shape[1]


def learn_embeddings(
    space: StrategySpace,
    records: Optional[Sequence[ExperienceRecord]] = None,
    config: Optional[EmbeddingConfig] = None,
    graph: Optional[KnowledgeGraph] = None,
) -> StrategyEmbeddings:
    """Run Algorithm 1 and return the high-level strategy embeddings."""
    cfg = config or EmbeddingConfig()
    records = list(records) if records is not None else default_experience()
    rng = np.random.default_rng(cfg.seed)

    strategy_ids = None
    transr = None
    if cfg.use_kg:
        graph = graph or build_knowledge_graph(space)
        transr = TransR(
            graph.num_entities,
            graph.num_relations,
            TransRConfig(entity_dim=cfg.dim, relation_dim=cfg.dim, seed=cfg.seed),
        )
        strategy_ids = np.array(
            [graph.strategy_entities[s.identifier] for s in space], dtype=np.int64
        )
        table = transr.entities[strategy_ids].copy()
    else:
        table = rng.normal(0, 0.1, size=(len(space), cfg.dim))

    nn_exp: Optional[NNExp] = None
    transr_losses: List[float] = []
    nn_exp_losses: List[float] = []

    for _ in range(max(cfg.rounds, 1)):
        if cfg.use_kg and transr is not None:
            for _ in range(cfg.transr_epochs_per_round):
                transr_losses.append(transr.train_epoch(graph.triplets))
            table = transr.entities[strategy_ids].copy()
        if cfg.use_experience:
            result, nn_exp = enhance_embeddings(
                table,
                space,
                records,
                network=nn_exp,
                epochs=cfg.nn_exp_epochs_per_round,
                seed=cfg.seed,
            )
            table = result.embeddings
            nn_exp_losses.extend(result.losses)
            if cfg.use_kg and transr is not None:
                # Replace e with the enhanced ẽ (Algorithm 1, line 9).
                transr.entities[strategy_ids] = table
        if not cfg.use_kg and not cfg.use_experience:
            break

    return StrategyEmbeddings(
        table=table,
        space=space,
        nn_exp=nn_exp,
        transr_losses=transr_losses,
        nn_exp_losses=nn_exp_losses,
    )
