"""Shared search-strategy infrastructure: results, trajectories, base class.

Every search algorithm (AutoMC's progressive search and the RL / EA / Random
baselines) consumes a :class:`~repro.core.evaluator.SchemeEvaluator` and a
:class:`~repro.space.strategy.StrategySpace`, runs until its simulated
GPU-hour budget is exhausted, and produces a :class:`SearchResult` with the
Pareto-optimal schemes and a trajectory for the Figure 4/5 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..space.scheme import CompressionScheme
from ..space.strategy import StrategySpace
from .evaluator import EvaluationResult, SchemeEvaluator
from .pareto import hypervolume_2d, pareto_mask


@dataclass
class TrajectoryPoint:
    """One snapshot of search progress (for Figures 4 and 5)."""

    cost: float                 # simulated GPU-hours spent so far
    evaluations: int            # schemes evaluated so far
    best_accuracy: float        # best accuracy among schemes with PR >= gamma
    best_ar: float              # its AR
    hypervolume: float          # HV of the (AR, PR) front vs (-1, 0)
    front_size: int


@dataclass
class SearchResult:
    """Outcome of one search run."""

    algorithm: str
    pareto: List[EvaluationResult]          # Pareto schemes with PR >= gamma
    front: List[EvaluationResult]           # unconstrained Pareto front
    trajectory: List[TrajectoryPoint]
    total_cost: float
    evaluations: int
    gamma: float
    all_results: List[EvaluationResult] = None  # every evaluated scheme

    @property
    def best(self) -> Optional[EvaluationResult]:
        """Pareto scheme with the highest accuracy (the paper's headline pick)."""
        if not self.pareto:
            return None
        return max(self.pareto, key=lambda r: r.accuracy)

    def summary(self) -> str:
        best = self.best
        head = f"{self.algorithm}: {self.evaluations} evals, {self.total_cost:.1f} sim-h"
        if best is None:
            return head + " — no scheme met the PR target"
        return head + f" | best: {best}"


class SearchStrategy:
    """Base class: budgeted loop with trajectory recording."""

    name = "base"

    def __init__(
        self,
        evaluator: SchemeEvaluator,
        space: StrategySpace,
        gamma: float = 0.3,
        budget_hours: float = 24.0,
        max_length: int = 5,
        seed: int = 0,
    ):
        self.evaluator = evaluator
        self.space = space
        self.gamma = gamma
        self.budget_hours = budget_hours
        self.max_length = max_length
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.trajectory: List[TrajectoryPoint] = []

    # ------------------------------------------------------------------ #
    def budget_left(self) -> float:
        return self.budget_hours - self.evaluator.total_cost

    def record(self) -> TrajectoryPoint:
        """Append a trajectory snapshot from the evaluator's history."""
        feasible = [
            r
            for r in self.evaluator.results.values()
            if not r.scheme.is_empty and r.meets_target(self.gamma)
        ]
        everything = [r for r in self.evaluator.results.values() if not r.scheme.is_empty]
        if feasible:
            best = max(feasible, key=lambda r: r.accuracy)
            best_accuracy, best_ar = best.accuracy, best.ar
        else:
            best_accuracy, best_ar = 0.0, -1.0
        if everything:
            points = np.stack([r.objectives for r in everything])
            hv = hypervolume_2d(points, (-1.0, 0.0))
            front = int(pareto_mask(points).sum())
        else:
            hv, front = 0.0, 0
        point = TrajectoryPoint(
            cost=self.evaluator.total_cost,
            evaluations=self.evaluator.evaluation_count,
            best_accuracy=best_accuracy,
            best_ar=best_ar,
            hypervolume=hv,
            front_size=front,
        )
        self.trajectory.append(point)
        return point

    def finish(self) -> SearchResult:
        return SearchResult(
            algorithm=self.name,
            pareto=self.evaluator.pareto_results(self.gamma),
            front=self.evaluator.pareto_results(None),
            trajectory=self.trajectory,
            total_cost=self.evaluator.total_cost,
            evaluations=self.evaluator.evaluation_count,
            gamma=self.gamma,
            all_results=[
                r for r in self.evaluator.results.values() if not r.scheme.is_empty
            ],
        )

    def run(self) -> SearchResult:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def random_scheme(self, max_pr: float = 0.9) -> CompressionScheme:
        """A random scheme of length 1..max_length within the nominal budget."""
        length = int(self.rng.integers(1, self.max_length + 1))
        scheme = CompressionScheme()
        for _ in range(length):
            for _ in range(20):
                strategy = self.space[int(self.rng.integers(0, len(self.space)))]
                if scheme.total_param_step + strategy.param_step <= max_pr:
                    scheme = scheme.extend(strategy)
                    break
        return scheme
