"""Shared search-strategy infrastructure: results, trajectories, base class.

Every search algorithm (AutoMC's progressive search and the RL / EA / Random
baselines) consumes an :class:`~repro.core.interface.Evaluator` (a bare
backend or a batched :class:`~repro.core.engine.EvaluationEngine`) and a
:class:`~repro.space.strategy.StrategySpace`, runs until its simulated
GPU-hour budget is exhausted, and produces a :class:`SearchResult` with the
Pareto-optimal schemes and a trajectory for the Figure 4/5 plots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import islice
from typing import List, Optional

import numpy as np

from ..obs import NULL_TRACER
from ..space.scheme import CompressionScheme
from ..space.strategy import StrategySpace
from .evaluator import EvaluationResult
from .interface import Evaluator
from .pareto import hypervolume_2d


@dataclass
class TrajectoryPoint:
    """One snapshot of search progress (for Figures 4 and 5)."""

    cost: float                 # simulated GPU-hours spent so far
    evaluations: int            # schemes evaluated so far
    best_accuracy: float        # best accuracy among schemes with PR >= gamma
    best_ar: float              # its AR
    hypervolume: float          # HV of the (AR, PR) front vs (-1, 0)
    front_size: int


@dataclass
class SearchResult:
    """Outcome of one search run."""

    algorithm: str
    pareto: List[EvaluationResult]          # Pareto schemes with PR >= gamma
    front: List[EvaluationResult]           # unconstrained Pareto front
    trajectory: List[TrajectoryPoint]
    total_cost: float
    evaluations: int
    gamma: float
    all_results: List[EvaluationResult] = field(default_factory=list)
    #: populated by harnesses running behind an EvaluationEngine
    #: (cache_hits / fresh_evaluations / workers)
    engine_stats: Optional[dict] = None
    #: wall-clock seconds from the first trajectory snapshot to finish()
    wall_seconds: float = 0.0
    #: metrics snapshot from the attached tracer (None when tracing is off)
    obs: Optional[dict] = None
    #: registry name of the solver that produced this result (repro.core.solver)
    solver: Optional[str] = None
    #: completed propose/observe rounds
    rounds: int = 0
    #: driver-gate accounting: proposals / budget-pruned / evaluated counts
    solver_stats: Optional[dict] = None

    @property
    def best(self) -> Optional[EvaluationResult]:
        """Pareto scheme with the highest accuracy (the paper's headline pick)."""
        if not self.pareto:
            return None
        return max(self.pareto, key=lambda r: r.accuracy)

    def summary(self) -> str:
        best = self.best
        head = f"{self.algorithm}: {self.evaluations} evals, {self.total_cost:.1f} sim-h"
        extras = []
        if self.solver is not None:
            extras.append(f"solver={self.solver}")
            extras.append(f"{self.rounds} rounds")
        stats = self.solver_stats or {}
        if stats.get("proposals_pruned"):
            extras.append(
                f"{stats['proposals_pruned']}/{stats['proposals_total']} "
                f"proposals budget-pruned"
            )
        engine = self.engine_stats or {}
        if engine.get("cache_hits"):
            extras.append(f"{engine['cache_hits']} cache hits")
        if engine.get("snapshot_hits"):
            extras.append(f"{engine['snapshot_hits']} snapshot hits")
        counters = (self.obs or {}).get("counters", {})
        plan_hits = counters.get("nn.plan_cache_hits", 0)
        plan_misses = counters.get("nn.plan_cache_misses", 0)
        if plan_hits or plan_misses:
            extras.append(
                f"plan cache {plan_hits:.0f}/{plan_hits + plan_misses:.0f} hits"
            )
        ws_peak = (self.obs or {}).get("gauges", {}).get("nn.workspace_bytes_peak")
        if ws_peak:
            extras.append(f"ws peak {ws_peak / 1024.0:.0f} KiB")
        if extras:
            head += " [" + ", ".join(extras) + "]"
        if best is None:
            return head + " — no scheme met the PR target"
        tail = head + f" | best: {best}"
        if best.latency_ms > 0.0:
            tail += f" @ {best.latency_ms:.2f} ms/batch"
        return tail


class SearchStrategy:
    """Base class: budgeted loop with trajectory recording."""

    name = "base"

    def __init__(
        self,
        evaluator: Evaluator,
        space: StrategySpace,
        gamma: float = 0.3,
        budget_hours: float = 24.0,
        max_length: int = 5,
        seed: int = 0,
        tracer=None,
    ):
        self.evaluator = evaluator
        self.space = space
        self.gamma = gamma
        self.budget_hours = budget_hours
        self.max_length = max_length
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.trajectory: List[TrajectoryPoint] = []
        # Observability: inherit the evaluator's tracer unless given one
        # explicitly, so obs.attach_tracer(evaluator, t) before construction
        # wires the whole search.
        self.tracer = (
            tracer if tracer is not None else getattr(evaluator, "tracer", NULL_TRACER)
        )
        self._run_started: Optional[float] = None
        # incremental record() bookkeeping: results consumed so far, the
        # running Pareto front and the running best feasible result
        self._consumed = 0
        self._front: List[EvaluationResult] = []
        self._best_feasible: Optional[EvaluationResult] = None
        #: candidates dropped by the static budget filter (zero cost charged)
        self.budget_pruned = 0
        # Solver-driver accounting (repro.core.solver): every non-empty
        # proposal is either pruned by the static budget gate at zero cost
        # or submitted for evaluation, so for every registered solver
        # proposals_total == proposals_pruned + evaluated_proposals.
        self.solver_name: Optional[str] = None
        self.rounds_completed = 0
        self.proposals_total = 0
        self.proposals_pruned = 0
        self.evaluated_proposals = 0

    # ------------------------------------------------------------------ #
    def budget_left(self) -> float:
        return self.budget_hours - self.evaluator.total_cost

    def feasible(self, scheme: CompressionScheme) -> bool:
        """Static budget-feasibility of ``scheme`` (free, pre-evaluation).

        Delegates to the evaluator's cost model when it has one; evaluators
        outside the core backends (e.g. test doubles) simply accept all
        schemes.  Infeasible candidates are counted in ``budget_pruned``.
        """
        check = getattr(self.evaluator, "is_feasible", None)
        if check is None or check(scheme):
            return True
        self.budget_pruned += 1
        return False

    def _absorb(self, result: EvaluationResult) -> None:
        """Fold one new result into the incremental front / best-feasible."""
        if result.scheme.is_empty:
            return
        if result.meets_target(self.gamma) and (
            self._best_feasible is None
            or result.accuracy > self._best_feasible.accuracy
        ):
            self._best_feasible = result
        point = result.objectives
        for kept in self._front:
            other = kept.objectives
            # strict domination, same semantics as pareto.pareto_mask:
            # equal objective vectors both survive
            if np.all(other >= point) and np.any(other > point):
                return
        self._front = [
            kept
            for kept in self._front
            if not (np.all(point >= kept.objectives) and np.any(point > kept.objectives))
        ]
        self._front.append(result)

    def record(self) -> TrajectoryPoint:
        """Append a trajectory snapshot from the evaluator's history.

        Incremental: only results added to the evaluator since the previous
        snapshot are scanned, and the Pareto front / hypervolume / best
        feasible scheme are maintained as running state — ``record()`` cost
        no longer grows with the full evaluation history.  (Dominated points
        contribute nothing to the hypervolume, so front-only HV equals
        full-history HV.)
        """
        if self._run_started is None:
            self._run_started = time.perf_counter()
        new = list(islice(self.evaluator.results.values(), self._consumed, None))
        self._consumed += len(new)
        for result in new:
            self._absorb(result)
        if self._best_feasible is not None:
            best_accuracy = self._best_feasible.accuracy
            best_ar = self._best_feasible.ar
        else:
            best_accuracy, best_ar = 0.0, -1.0
        if self._front:
            points = np.stack([r.objectives for r in self._front])
            hv = hypervolume_2d(points, (-1.0, 0.0))
        else:
            hv = 0.0
        point = TrajectoryPoint(
            cost=self.evaluator.total_cost,
            evaluations=self.evaluator.evaluation_count,
            best_accuracy=best_accuracy,
            best_ar=best_ar,
            hypervolume=hv,
            front_size=len(self._front),
        )
        self.trajectory.append(point)
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(
                "search.trajectory",
                cost=point.cost,
                evaluations=point.evaluations,
                best_accuracy=point.best_accuracy,
                best_ar=point.best_ar,
                hypervolume=point.hypervolume,
                front_size=point.front_size,
            )
            metrics = tracer.metrics
            metrics.gauge("search.front_size").set(point.front_size)
            metrics.gauge("search.hypervolume").set(point.hypervolume)
            metrics.gauge("search.best_accuracy").set(point.best_accuracy)
            metrics.gauge("search.total_cost").set(point.cost)
            metrics.gauge("search.evaluations").set(point.evaluations)
        return point

    def finish(self) -> SearchResult:
        tracer = self.tracer
        return SearchResult(
            algorithm=self.name,
            pareto=self.evaluator.pareto_results(self.gamma),
            front=self.evaluator.pareto_results(None),
            trajectory=self.trajectory,
            total_cost=self.evaluator.total_cost,
            evaluations=self.evaluator.evaluation_count,
            gamma=self.gamma,
            all_results=[
                r for r in self.evaluator.results.values() if not r.scheme.is_empty
            ],
            wall_seconds=(
                time.perf_counter() - self._run_started if self._run_started else 0.0
            ),
            obs=tracer.metrics.snapshot() if tracer.enabled else None,
            solver=self.solver_name,
            rounds=self.rounds_completed,
            solver_stats=(
                {
                    "proposals_total": self.proposals_total,
                    "proposals_pruned": self.proposals_pruned,
                    "evaluated_proposals": self.evaluated_proposals,
                    "budget_pruned": self.budget_pruned,
                }
                if self.solver_name is not None
                else None
            ),
        )

    def run(self) -> SearchResult:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def random_scheme(self, max_pr: float = 0.9) -> CompressionScheme:
        """A random scheme of length 1..max_length within the nominal budget."""
        length = int(self.rng.integers(1, self.max_length + 1))
        scheme = CompressionScheme()
        for _ in range(length):
            for _ in range(20):
                strategy = self.space[int(self.rng.integers(0, len(self.space)))]
                if scheme.total_param_step + strategy.param_step <= max_pr:
                    scheme = scheme.extend(strategy)
                    break
        return scheme
