"""AutoMC — the user-facing facade.

Typical use (paper scale, surrogate accuracy):

    from repro import AutoMC
    automc = AutoMC.paper_scale("resnet56", "cifar10", gamma=0.3, budget_hours=8)
    result = automc.search()
    print(result.summary())

Or fully real (tiny models, real training):

    automc = AutoMC.with_training(model_factory, train_data, val_data, gamma=0.2)
    result = automc.search()
"""

from __future__ import annotations

from typing import Callable, Optional

from ..data.tasks import EXP1, EXP2, CompressionTask
from ..knowledge.embedding import EmbeddingConfig, StrategyEmbeddings, learn_embeddings
from ..nn import Module
from ..space.strategy import StrategySpace
from .evaluator import SchemeEvaluator, SurrogateEvaluator, TrainingEvaluator
from .progressive import ProgressiveConfig, ProgressiveSearch
from .search import SearchResult

_PAPER_TASKS = {
    ("resnet56", "cifar10"): EXP1,
    ("vgg16", "cifar100"): EXP2,
}


class AutoMC:
    """Automatic model compression with domain knowledge + progressive search."""

    def __init__(
        self,
        evaluator: SchemeEvaluator,
        space: Optional[StrategySpace] = None,
        embeddings: Optional[StrategyEmbeddings] = None,
        gamma: float = 0.3,
        budget_hours: float = 24.0,
        max_length: int = 5,
        embedding_config: Optional[EmbeddingConfig] = None,
        progressive_config: Optional[ProgressiveConfig] = None,
        seed: int = 0,
    ):
        self.evaluator = evaluator
        self.space = space or StrategySpace()
        self.gamma = gamma
        self.budget_hours = budget_hours
        self.max_length = max_length
        self.seed = seed
        self.progressive_config = progressive_config
        if embeddings is None:
            embeddings = learn_embeddings(
                self.space, config=embedding_config or EmbeddingConfig(seed=seed)
            )
        self.embeddings = embeddings

    # ------------------------------------------------------------------ #
    @classmethod
    def paper_scale(
        cls,
        model_name: str,
        dataset_name: str,
        gamma: float = 0.3,
        budget_hours: float = 24.0,
        task: Optional[CompressionTask] = None,
        seed: int = 0,
        **kwargs,
    ) -> "AutoMC":
        """Surrogate backend on a real full-size model (Exp1/Exp2 setups)."""
        from ..models import create_model

        if task is None:
            task = _PAPER_TASKS.get((model_name, dataset_name))
        if task is None:
            raise KeyError(
                f"no predefined task for ({model_name}, {dataset_name}); pass task="
            )
        num_classes = task.num_classes
        evaluator = SurrogateEvaluator(
            lambda: create_model(model_name, num_classes=num_classes),
            model_name,
            dataset_name,
            task,
            seed=seed,
        )
        return cls(evaluator, gamma=gamma, budget_hours=budget_hours, seed=seed, **kwargs)

    @classmethod
    def with_training(
        cls,
        model_factory: Callable[[], Module],
        train_data,
        val_data,
        gamma: float = 0.2,
        budget_hours: float = 2.0,
        pretrain_epochs: float = 2.0,
        seed: int = 0,
        **kwargs,
    ) -> "AutoMC":
        """Fully real backend: tiny models, real gradient training."""
        evaluator = TrainingEvaluator(
            model_factory,
            train_data,
            val_data,
            pretrain_epochs=pretrain_epochs,
            seed=seed,
        )
        return cls(evaluator, gamma=gamma, budget_hours=budget_hours, seed=seed, **kwargs)

    # ------------------------------------------------------------------ #
    def search(self) -> SearchResult:
        """Run Algorithm 2 and return the Pareto-optimal schemes."""
        from ..knowledge.experience import default_experience

        searcher = ProgressiveSearch(
            self.evaluator,
            self.space,
            self.embeddings,
            gamma=self.gamma,
            budget_hours=self.budget_hours,
            max_length=self.max_length,
            config=self.progressive_config,
            experience=default_experience(),
            seed=self.seed,
        )
        return searcher.run()
