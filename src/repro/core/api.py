"""AutoMC — the user-facing facade.

Typical use (paper scale, surrogate accuracy):

    from repro import AutoMC
    automc = AutoMC.paper_scale("resnet56", "cifar10", gamma=0.3, budget_hours=8)
    result = automc.search()
    print(result.summary())

Parallel evaluation with a persistent cross-run cache:

    automc = AutoMC.paper_scale(
        "resnet56", "cifar10", budget_hours=8,
        parallelism=4, cache_dir="runs/cache",
    )
    result = automc.search()  # repeated runs skip already-paid evaluations

Or fully real (tiny models, real training):

    automc = AutoMC.with_training(model_factory, train_data, val_data, gamma=0.2)
    result = automc.search()
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ..data.tasks import EXP1, EXP2, CompressionTask
from ..knowledge.embedding import EmbeddingConfig, StrategyEmbeddings, learn_embeddings
from ..nn import Module
from ..obs import NULL_TRACER, RunJournal, Tracer, attach_tracer
from ..space.strategy import StrategySpace
from .config import EvaluatorConfig
from .engine import EvaluationEngine
from .evaluator import SurrogateEvaluator, TrainingEvaluator
from .interface import Evaluator
from .progressive import ProgressiveConfig
from .search import SearchResult
from .solver import make_solver

_PAPER_TASKS = {
    ("resnet56", "cifar10"): EXP1,
    ("vgg16", "cifar100"): EXP2,
}


class AutoMC:
    """Automatic model compression with domain knowledge + progressive search.

    ``parallelism`` and ``cache_dir`` wrap the evaluator in an
    :class:`~repro.core.engine.EvaluationEngine`: candidate batches fan out
    across ``parallelism`` worker processes (0 = serial, with identical
    results), and evaluations persist under ``cache_dir`` so repeated runs
    with the same model/dataset/seed/config skip already-paid simulated
    GPU-hours.  ``snapshot_dir`` adds the disk-backed
    :class:`~repro.core.snapshots.ModelSnapshotStore`: trained prefix models
    are shared across workers and runs, so siblings of an evaluated scheme
    resume instead of replaying (results and charged costs are unchanged —
    only wall-clock drops).  ``snapshot_budget_mb`` caps the store's on-disk
    size (default 256 MB, LRU eviction).

    ``solver`` picks the search algorithm by registry name (default
    ``"progressive"`` — the paper's Algorithm 2; see
    :func:`repro.core.solver.list_solvers` for the zoo) and
    ``solver_kwargs`` passes per-solver options, e.g.
    ``AutoMC(evaluator, solver="sa", solver_kwargs={"chains": 8})``.

    ``trace`` turns on the :mod:`repro.obs` observability layer: pass
    ``True`` for an in-memory :class:`~repro.obs.Tracer` (inspect
    ``automc.tracer.spans`` / ``.metrics`` afterwards), a path to stream a
    JSONL run journal there (summarise with ``repro trace summarize``), or a
    ready-made :class:`~repro.obs.Tracer`.  The default traces nothing and
    costs one attribute check per hot-path operation.
    """

    def __init__(
        self,
        evaluator: Evaluator,
        space: Optional[StrategySpace] = None,
        embeddings: Optional[StrategyEmbeddings] = None,
        gamma: float = 0.3,
        budget_hours: float = 24.0,
        max_length: int = 5,
        embedding_config: Optional[EmbeddingConfig] = None,
        progressive_config: Optional[ProgressiveConfig] = None,
        solver: str = "progressive",
        solver_kwargs: Optional[dict] = None,
        seed: int = 0,
        parallelism: int = 0,
        cache_dir: Optional[str] = None,
        snapshot_dir: Optional[str] = None,
        snapshot_budget_mb: Optional[float] = None,
        trace: Union[None, bool, str, Tracer] = None,
    ):
        if snapshot_dir is not None:
            if not hasattr(evaluator, "set_snapshot_dir"):
                raise ValueError(
                    "snapshot_dir needs an evaluator with prefix-snapshot "
                    "support (SurrogateEvaluator / TrainingEvaluator)"
                )
            # Before the engine wrap: workers rebuild evaluators from the
            # config, so the store location must be recorded there.
            evaluator.set_snapshot_dir(snapshot_dir, budget_mb=snapshot_budget_mb)
        if parallelism > 0 or cache_dir is not None:
            evaluator = EvaluationEngine(
                evaluator, workers=parallelism, cache_dir=cache_dir
            )
        if trace is None or trace is False:
            self.tracer = NULL_TRACER
        elif isinstance(trace, Tracer):
            self.tracer = trace
        elif trace is True:
            self.tracer = Tracer()
        else:  # a journal path
            self.tracer = Tracer(journal=RunJournal(trace, run={"api": "AutoMC"}))
        if self.tracer.enabled:
            attach_tracer(evaluator, self.tracer)
        self.evaluator = evaluator
        self.space = space or StrategySpace()
        self.gamma = gamma
        self.budget_hours = budget_hours
        self.max_length = max_length
        self.seed = seed
        self.progressive_config = progressive_config
        self.solver = solver
        self.solver_kwargs = dict(solver_kwargs or {})
        # Embeddings are only needed by the progressive solver; learn them
        # lazily so AutoMC(solver="sa") and friends skip the KG training.
        self._embeddings = embeddings
        self._embedding_config = embedding_config

    # ------------------------------------------------------------------ #
    @classmethod
    def paper_scale(
        cls,
        model_name: str,
        dataset_name: str,
        gamma: float = 0.3,
        budget_hours: float = 24.0,
        task: Optional[CompressionTask] = None,
        seed: int = 0,
        **kwargs,
    ) -> "AutoMC":
        """Surrogate backend on a real full-size model (Exp1/Exp2 setups)."""
        from ..models import create_model

        if task is None:
            task = _PAPER_TASKS.get((model_name, dataset_name))
        if task is None:
            raise KeyError(
                f"no predefined task for ({model_name}, {dataset_name}); pass task="
            )
        num_classes = task.num_classes
        evaluator = SurrogateEvaluator(
            lambda: create_model(model_name, num_classes=num_classes),
            model_name,
            dataset_name,
            task,
            config=EvaluatorConfig(seed=seed),
        )
        return cls(evaluator, gamma=gamma, budget_hours=budget_hours, seed=seed, **kwargs)

    @classmethod
    def with_training(
        cls,
        model_factory: Callable[[], Module],
        train_data,
        val_data,
        gamma: float = 0.2,
        budget_hours: float = 2.0,
        pretrain_epochs: float = 2.0,
        seed: int = 0,
        **kwargs,
    ) -> "AutoMC":
        """Fully real backend: tiny models, real gradient training.

        Pass a registry model *name* (e.g. ``"resnet8"``) as ``model_factory``
        to make the evaluator rebuildable in worker processes — required for
        ``parallelism > 0``.
        """
        evaluator = TrainingEvaluator(
            model_factory,
            train_data,
            val_data,
            config=EvaluatorConfig(pretrain_epochs=pretrain_epochs, seed=seed),
        )
        return cls(evaluator, gamma=gamma, budget_hours=budget_hours, seed=seed, **kwargs)

    # ------------------------------------------------------------------ #
    @property
    def embeddings(self) -> StrategyEmbeddings:
        """Learned strategy embeddings (trained on first access)."""
        if self._embeddings is None:
            self._embeddings = learn_embeddings(
                self.space,
                config=self._embedding_config or EmbeddingConfig(seed=self.seed),
            )
        return self._embeddings

    def search(self) -> SearchResult:
        """Run the selected solver and return the Pareto-optimal schemes.

        The default solver is the paper's progressive search (Algorithm 2);
        any registered solver name works — see
        :func:`repro.core.solver.list_solvers`.
        """
        kwargs = dict(self.solver_kwargs)
        if self.solver == "progressive":
            from ..knowledge.experience import default_experience

            kwargs.setdefault("embeddings", self.embeddings)
            kwargs.setdefault("config", self.progressive_config)
            kwargs.setdefault("experience", default_experience())
        searcher = make_solver(
            self.solver,
            self.evaluator,
            self.space,
            gamma=self.gamma,
            budget_hours=self.budget_hours,
            max_length=self.max_length,
            seed=self.seed,
            tracer=self.tracer if self.tracer.enabled else None,
            **kwargs,
        )
        try:
            return searcher.run()
        finally:
            self.close()

    def close(self) -> None:
        """Release engine workers and flush the trace journal (idempotent)."""
        if isinstance(self.evaluator, EvaluationEngine):
            self.evaluator.close()
        self.tracer.close()
