"""AutoMC core: evaluators, F_mo, progressive search, Pareto tools, facade."""

from .ablation import VARIANTS, build_variant
from .api import AutoMC
from .evaluator import (
    EvaluationResult,
    SchemeEvaluator,
    SurrogateEvaluator,
    TrainingEvaluator,
)
from .fmo import Fmo, FmoNetwork
from .pareto import (
    crowding_distance,
    hypervolume_2d,
    nondominated_sort,
    pareto_indices,
    pareto_mask,
    select_diverse,
)
from .progressive import ProgressiveConfig, ProgressiveSearch
from .search import SearchResult, SearchStrategy, TrajectoryPoint

__all__ = [
    "AutoMC",
    "EvaluationResult",
    "Fmo",
    "FmoNetwork",
    "ProgressiveConfig",
    "ProgressiveSearch",
    "SchemeEvaluator",
    "SearchResult",
    "SearchStrategy",
    "SurrogateEvaluator",
    "TrainingEvaluator",
    "TrajectoryPoint",
    "VARIANTS",
    "build_variant",
    "crowding_distance",
    "hypervolume_2d",
    "nondominated_sort",
    "pareto_indices",
    "pareto_mask",
    "select_diverse",
]
