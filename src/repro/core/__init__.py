"""AutoMC core: evaluators, engine, F_mo, progressive search, Pareto tools."""

from .ablation import VARIANTS, build_variant
from .api import AutoMC
from .config import EvaluatorConfig
from .engine import (
    EvaluationEngine,
    ResultCache,
    WorkerError,
    cache_stats,
    plan_prefix_groups,
    prune_cache,
)
from .evaluator import (
    EvaluationResult,
    SchemeEvaluator,
    SurrogateEvaluator,
    TrainingEvaluator,
)
from .fmo import Fmo, FmoNetwork
from .interface import Evaluator
from .pareto import (
    crowding_distance,
    hypervolume_2d,
    nondominated_sort,
    pareto_indices,
    pareto_mask,
    select_diverse,
)
from .progressive import ProgressiveConfig, ProgressiveSearch, ProgressiveSolver
from .search import SearchResult, SearchStrategy, TrajectoryPoint
from .solver import (
    SOLVER_REGISTRY,
    Solver,
    get_solver,
    list_solvers,
    make_solver,
    register_solver,
    run_solver,
)
from .snapshots import ModelSnapshot, ModelSnapshotStore

__all__ = [
    "AutoMC",
    "EvaluationEngine",
    "EvaluationResult",
    "Evaluator",
    "EvaluatorConfig",
    "Fmo",
    "FmoNetwork",
    "ModelSnapshot",
    "ModelSnapshotStore",
    "ProgressiveConfig",
    "ProgressiveSearch",
    "ProgressiveSolver",
    "ResultCache",
    "SchemeEvaluator",
    "SOLVER_REGISTRY",
    "SearchResult",
    "SearchStrategy",
    "Solver",
    "SurrogateEvaluator",
    "TrainingEvaluator",
    "TrajectoryPoint",
    "VARIANTS",
    "WorkerError",
    "build_variant",
    "cache_stats",
    "crowding_distance",
    "get_solver",
    "hypervolume_2d",
    "list_solvers",
    "make_solver",
    "nondominated_sort",
    "pareto_indices",
    "pareto_mask",
    "plan_prefix_groups",
    "prune_cache",
    "register_solver",
    "run_solver",
    "select_diverse",
]
