"""First-class solver abstraction: registry + shared round-loop driver.

Every search algorithm — the paper's progressive search and every baseline —
is a :class:`Solver`: a propose/observe/done state machine registered under a
short name.  The shared :class:`~repro.core.search.SearchStrategy` keeps
ownership of budget accounting, static ``feasible()`` pruning, Pareto/HV
trajectory recording and journaling; the :meth:`Solver.run` driver owns the
round loop and submits each round's proposals through
``Evaluator.evaluate_many`` as one batch, so every solver inherits the
:class:`~repro.core.engine.EvaluationEngine`'s worker fan-out, result cache
and prefix-affinity lanes for free.

Adding a solver::

    from repro.core.solver import Solver, register_solver

    @register_solver("mine", label="Mine")
    class MySolver(Solver):
        def propose(self, state):
            return [state.random_scheme() for _ in range(4)]

    result = run_solver("mine", evaluator, space, budget_hours=2.0)

The driver enforces one accounting invariant for every registered solver:
each proposed (non-empty) scheme is either statically pruned by the budget
at zero cost or submitted for evaluation, so
``proposals_total == proposals_pruned + evaluated_proposals`` always holds
on the strategy state (see ``tests/test_solver_api.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from ..space.scheme import CompressionScheme
from ..space.strategy import StrategySpace
from .evaluator import EvaluationResult
from .interface import Evaluator
from .search import SearchResult, SearchStrategy

#: name -> Solver subclass; populated by :func:`register_solver`
SOLVER_REGISTRY: Dict[str, Type["Solver"]] = {}


def register_solver(
    name: str, label: Optional[str] = None
) -> Callable[[Type["Solver"]], Type["Solver"]]:
    """Class decorator: register a :class:`Solver` under ``name``.

    ``label`` sets the human-facing algorithm name used in
    :attr:`SearchResult.algorithm` (defaults to the class's ``label``).
    Re-registering a name with a *different* class is an error — solver
    names are part of the CLI/config surface.
    """

    def decorate(cls: Type["Solver"]) -> Type["Solver"]:
        existing = SOLVER_REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"solver name {name!r} already registered to {existing.__name__}"
            )
        cls.solver_name = name
        if label is not None:
            cls.label = label
        SOLVER_REGISTRY[name] = cls
        return cls

    return decorate


def _ensure_builtin_solvers() -> None:
    """Import the modules that register the built-in solvers (idempotent)."""
    from . import progressive  # noqa: F401  (registers "progressive")
    from .. import baselines  # noqa: F401  (registers the other seven)


def list_solvers() -> List[str]:
    """Sorted names of every registered solver."""
    _ensure_builtin_solvers()
    return sorted(SOLVER_REGISTRY)


def get_solver(name: str) -> Type["Solver"]:
    """The :class:`Solver` subclass registered under ``name``."""
    _ensure_builtin_solvers()
    try:
        return SOLVER_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown solver {name!r}; registered: {', '.join(list_solvers())}"
        ) from None


def make_solver(
    name: str,
    evaluator: Evaluator,
    space: Optional[StrategySpace] = None,
    *,
    gamma: float = 0.3,
    budget_hours: float = 24.0,
    max_length: int = 5,
    seed: int = 0,
    tracer=None,
    **solver_kwargs,
) -> "Solver":
    """Construct a registered solver on a fresh :class:`SearchStrategy`."""
    cls = get_solver(name)
    strategy = SearchStrategy(
        evaluator,
        space if space is not None else StrategySpace(),
        gamma=gamma,
        budget_hours=budget_hours,
        max_length=max_length,
        seed=seed,
        tracer=tracer,
    )
    return cls(strategy, **solver_kwargs)


def run_solver(
    name: str,
    evaluator: Evaluator,
    space: Optional[StrategySpace] = None,
    **kwargs,
) -> SearchResult:
    """One-call convenience: build the solver and run it to completion."""
    return make_solver(name, evaluator, space, **kwargs).run()


class Solver:
    """Base class: a propose/observe/done state machine over schemes.

    Subclasses implement:

    * :meth:`propose` — the next round's candidate schemes (may repeat or
      return schemes already evaluated: the evaluator's result map dedups
      and charges nothing for repeats);
    * :meth:`observe` — fold the round's evaluation results back into
      solver state (train a surrogate, update a population, cool a
      temperature...).  Results arrive in proposal order but may be fewer
      than proposed when the static budget pruned some candidates;
    * :meth:`done` — optional early termination before the budget runs out;
    * :meth:`setup` — optional pre-loop work (seed evaluations).

    The driver in :meth:`run` owns everything else: budget checking, the
    static feasibility gate (zero cost for pruned proposals), batched
    evaluation, trajectory recording and the per-round journal span.
    """

    #: registry name, set by :func:`register_solver`
    solver_name = "base"
    #: human-facing algorithm label (SearchResult.algorithm)
    label = "Solver"
    #: consecutive all-pruned rounds tolerated before giving up
    max_empty_rounds = 8

    def __init__(self, strategy: SearchStrategy):
        self.strategy = strategy
        strategy.solver_name = self.solver_name
        if type(strategy) is SearchStrategy:
            # Strategy subclasses (the deprecated shims) keep their own
            # display name; a bare state machine adopts the solver's label.
            strategy.name = self.label
        #: extra attributes for the current round's journal span
        self._round_attrs: Dict[str, object] = {}

    # -- convenience proxies into the shared strategy state ---------------- #
    @property
    def rng(self):
        return self.strategy.rng

    @property
    def space(self) -> StrategySpace:
        return self.strategy.space

    @property
    def evaluator(self) -> Evaluator:
        return self.strategy.evaluator

    @property
    def gamma(self) -> float:
        return self.strategy.gamma

    @property
    def max_length(self) -> int:
        return self.strategy.max_length

    @property
    def seed(self) -> int:
        return self.strategy.seed

    def scalar_reward(self, result: EvaluationResult) -> float:
        """The shared single-objective scalarisation: ``AR - 2·max(0, γ-PR)``.

        Used by every solver that needs a scalar fitness (RL, SA, RegEvo,
        AMC) so their rewards are directly comparable.
        """
        return result.ar - 2.0 * max(0.0, self.gamma - result.pr)

    # -- the solver contract ----------------------------------------------- #
    def setup(self) -> None:
        """Optional pre-loop hook (runs before the first trajectory point)."""

    def propose(self, state: SearchStrategy) -> List[CompressionScheme]:
        """The next round's candidate schemes (empty list = exhausted)."""
        raise NotImplementedError

    def observe(self, results: List[EvaluationResult]) -> None:
        """Fold the round's evaluation results into solver state."""

    def done(self) -> bool:
        """Early-termination signal checked before each round."""
        return False

    # -- the shared round loop --------------------------------------------- #
    def run(
        self,
        stop: Optional[Callable[[], bool]] = None,
        on_round: Optional[Callable[[SearchStrategy], None]] = None,
    ) -> SearchResult:
        """Drive the solver to completion; returns the finished result.

        ``stop`` is a cooperative cancellation hook polled at every round
        boundary: when it returns true the loop exits cleanly and the
        partial result is finished exactly like a budget exhaustion — the
        multi-tenant server uses this for job cancellation.  ``on_round``
        runs after each completed round (post ``record()``), letting a
        caller stream progress (Pareto fronts, costs) without changing the
        search: neither hook runs inside the round, so a run with hooks is
        bit-identical to one without.
        """
        st = self.strategy
        tracer = st.tracer
        if tracer.enabled:
            tracer.annotate_run(solver=self.solver_name, algorithm=st.name)
        self.setup()
        st.record()

        round_index = 0
        empty_rounds = 0
        while st.budget_left() > 0 and not self.done():
            if stop is not None and stop():
                break
            span = (
                tracer.start(
                    "search.round",
                    algorithm=st.name,
                    solver=self.solver_name,
                    round=round_index,
                )
                if tracer.enabled
                else None
            )
            try:
                self._round_attrs = {}
                proposals = [s for s in self.propose(st) if not s.is_empty]
                batch: List[CompressionScheme] = []
                for scheme in proposals:
                    # The accounting gate: every proposal is either pruned
                    # here at zero cost or submitted for evaluation.
                    st.proposals_total += 1
                    if st.feasible(scheme):
                        batch.append(scheme)
                    else:
                        st.proposals_pruned += 1
                if span is not None:
                    span.set(proposals=len(proposals), batch=len(batch))
                if not proposals:
                    break
                results: List[EvaluationResult] = []
                if batch:
                    empty_rounds = 0
                    st.evaluated_proposals += len(batch)
                    results = st.evaluator.evaluate_many(batch)
                else:
                    empty_rounds += 1
                self.observe(results)
                st.record()
                st.rounds_completed += 1
                if on_round is not None:
                    on_round(st)
                if span is not None and self._round_attrs:
                    span.set(**self._round_attrs)
                if not batch and empty_rounds >= self.max_empty_rounds:
                    break
            finally:
                if span is not None:
                    tracer.finish(span)
            round_index += 1
        return st.finish()
