"""The four ablation variants of §4.5.

========================  ====================================================
AutoMC                    the full algorithm
AutoMC-KG                 no knowledge-graph embedding (random init + NN_exp)
AutoMC-NNexp              no experience enhancement (TransR only)
AutoMC-MultipleSource     search space restricted to LeGR strategies
AutoMC-ProgressiveSearch  RL controller instead of the progressive strategy
========================  ====================================================

:func:`build_variant` wires a ready-to-run search strategy for one variant
given an evaluator factory (each variant needs its own evaluator so budgets
are independent).
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..baselines.rl import RLSearch
from ..knowledge.embedding import EmbeddingConfig, learn_embeddings
from ..space.strategy import StrategySpace
from .interface import Evaluator
from .progressive import ProgressiveConfig, ProgressiveSearch
from .search import SearchStrategy

VARIANTS = (
    "AutoMC",
    "AutoMC-KG",
    "AutoMC-NNexp",
    "AutoMC-MultipleSource",
    "AutoMC-ProgressiveSearch",
)


def build_variant(
    name: str,
    evaluator: Evaluator,
    gamma: float = 0.3,
    budget_hours: float = 24.0,
    max_length: int = 5,
    seed: int = 0,
    embedding_rounds: int = 3,
    progressive_config: Optional[ProgressiveConfig] = None,
) -> SearchStrategy:
    """A configured search strategy implementing one §4.5 variant."""
    if name not in VARIANTS:
        raise KeyError(f"unknown variant {name!r}; choose from {VARIANTS}")

    if name == "AutoMC-ProgressiveSearch":
        # Same knowledge, non-progressive RL search.  The facade is the
        # deprecated *public* entry point; as internal wiring it is exactly
        # the strategy-state shape the variant harness needs.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            searcher = RLSearch(
                evaluator, StrategySpace(), gamma=gamma,
                budget_hours=budget_hours, max_length=max_length, seed=seed,
            )
        searcher.name = name
        return searcher

    from ..knowledge.experience import default_experience

    experience = default_experience()
    if name == "AutoMC-MultipleSource":
        space = StrategySpace(method_labels=["C2"])
        config = EmbeddingConfig(rounds=embedding_rounds, seed=seed)
    elif name == "AutoMC-KG":
        space = StrategySpace()
        config = EmbeddingConfig(rounds=embedding_rounds, use_kg=False, seed=seed)
    elif name == "AutoMC-NNexp":
        # No experience anywhere: neither embedding enhancement nor warm start.
        space = StrategySpace()
        config = EmbeddingConfig(rounds=embedding_rounds, use_experience=False, seed=seed)
        experience = None
    else:  # full AutoMC
        space = StrategySpace()
        config = EmbeddingConfig(rounds=embedding_rounds, seed=seed)

    embeddings = learn_embeddings(space, config=config)
    searcher = ProgressiveSearch(
        evaluator, space, embeddings, gamma=gamma,
        budget_hours=budget_hours, max_length=max_length,
        config=progressive_config, experience=experience, seed=seed,
    )
    searcher.name = name
    return searcher
