"""Scheme evaluators — the bridge between search and compression execution.

Two backends share one interface (the :class:`~repro.core.interface.Evaluator`
protocol):

* :class:`TrainingEvaluator` — everything real: a model is pre-trained on a
  (tiny) dataset, strategies execute with gradient training, accuracy is
  measured on a held-out split.  Used by tests and the runnable examples.
* :class:`SurrogateEvaluator` — paper scale: strategies perform *real
  structural surgery* on the real full-size numpy model (so parameters and
  FLOPs are measured), gradient phases are skipped, and accuracy evolves via
  the calibrated :class:`~repro.sim.accuracy.AccuracyModel`.

Both cache results by scheme identifier and keep an LRU of compressed model
snapshots so progressive search can extend an evaluated scheme without
re-running its prefix.  With ``config.snapshot_dir`` set, a disk-backed
:class:`~repro.core.snapshots.ModelSnapshotStore` acts as a second tier
below the in-memory LRU: trained prefix states survive across worker
processes, pool recycles and whole runs, and every prefix reached during a
replay is snapshotted so siblings resume instead of replaying.  Resuming is
bit-identical to replaying (per-step seeds derive from stable sub-scheme
digests), so the store changes wall-clock only — never results or charged
costs.  Every evaluation also charges a *simulated GPU-hour*
cost — the common currency that gives all AutoML baselines equal budgets
(§4.1 "control the running time of each algorithm to be the same").

Cost accounting is *canonical*: every result carries the full per-step cost
vector of its scheme (independent of which prefix happened to be resumed
from the model LRU), and the charged cost is the increment over the longest
prefix already present in ``results``.  This makes charged costs a pure
function of the evaluation history — the property the batched
:class:`~repro.core.engine.EvaluationEngine` relies on to merge parallel
worker results bit-identically to a serial run.
"""

from __future__ import annotations

import copy
import hashlib
import json
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.costmodel import Budget, SchemeCostModel
from ..analysis.diagnostics import Report
from ..analysis.linter import SchemeRejected, lint_scheme
from ..compression import ExecutionContext, StepReport
from ..data.tasks import CompressionTask
from ..nn import Module, Trainer, evaluate_accuracy, profile_model
from ..obs import NULL_TRACER
from ..sim.accuracy import AccuracyModel
from ..space.scheme import CompressionScheme
from .config import EvaluatorConfig, coerce_config
from .snapshots import ModelSnapshot, ModelSnapshotStore

#: simulated GPU-hours per (epoch x GFLOP x full-dataset) of training
EPOCH_COST_HOURS = 0.01
#: fixed simulated cost of evaluating any scheme (accuracy measurement etc.)
EVAL_OVERHEAD_HOURS = 0.05


def stable_hash(text: str) -> int:
    """Process-stable 32-bit digest of ``text`` (replaces builtin ``hash``).

    Builtin ``hash(str)`` is salted per process via ``PYTHONHASHSEED``, so
    seeding step RNGs with it made results differ between runs and between
    the engine's worker processes.  CRC32 is cheap, deterministic everywhere
    and plenty for seed derivation.
    """
    return zlib.crc32(text.encode("utf-8"))


@dataclass
class EvaluationResult:
    """Measured outcome of executing a compression scheme on the task model."""

    scheme: CompressionScheme
    params: int
    flops: int
    accuracy: float  # fraction in [0, 1]
    base_params: int
    base_flops: int
    base_accuracy: float
    cost: float  # simulated GPU-hours charged for this evaluation
    step_reports: List[StepReport] = field(default_factory=list)
    #: canonical per-step simulated cost of the *whole* scheme (one entry per
    #: strategy, independent of prefix reuse) — the basis of deterministic
    #: incremental charging and of the persistent cache
    step_costs: List[float] = field(default_factory=list)
    #: measured median wall-clock per inference batch (ms); 0.0 when latency
    #: measurement is disabled (``config.latency_batch`` unset)
    latency_ms: float = 0.0
    #: peak workspace-arena bytes held while running the latency probe on
    #: the compressed model (0 when latency measurement is disabled) — the
    #: *measured* scratch footprint cross-checked against the cost model's
    #: act_mem prediction
    workspace_bytes_peak: int = 0

    @property
    def pr(self) -> float:
        """Parameter reduction rate (paper's PR)."""
        return (self.base_params - self.params) / max(self.base_params, 1)

    @property
    def fr(self) -> float:
        """FLOPs reduction rate (paper's FR)."""
        return (self.base_flops - self.flops) / max(self.base_flops, 1)

    @property
    def ar(self) -> float:
        """Accuracy increase rate (paper's AR, usually negative)."""
        return (self.accuracy - self.base_accuracy) / max(self.base_accuracy, 1e-9)

    def meets_target(self, gamma: float) -> bool:
        return self.pr >= gamma

    @property
    def objectives(self) -> np.ndarray:
        """(AR, PR) — both maximised in Definition 1."""
        return np.array([self.ar, self.pr])

    def __str__(self) -> str:
        return (
            f"PR {100 * self.pr:.2f}% | FR {100 * self.fr:.2f}% | "
            f"acc {100 * self.accuracy:.2f}% (AR {100 * self.ar:+.2f}%) | "
            f"{self.scheme.identifier}"
        )


class SchemeEvaluator:
    """Shared caching / cost-accounting base for both backends."""

    _BACKEND = "base"

    def __init__(
        self,
        task: CompressionTask,
        config: Optional[EvaluatorConfig] = None,
        **legacy,
    ):
        if config is None or legacy:
            config = coerce_config(self._BACKEND, config, legacy)
        if task is not None and config.task is None:
            config = replace(config, task=task)
        self.config = config
        self.task = task
        self.seed = config.seed
        self.results: Dict[str, EvaluationResult] = {}
        self.total_cost = 0.0
        self.evaluation_count = 0
        self.lint_schemes = config.lint_schemes
        self.rejected_count = 0
        self.rejected: Dict[str, Report] = {}
        #: static budget-feasibility ceilings (None disables the S### rules)
        self.budget: Optional[Budget] = config.budget
        #: schemes rejected by an S### rule inside lint (subset of rejected)
        self.budget_rejects = 0
        #: schemes filtered by is_feasible() before reaching evaluation
        self.budget_filtered = 0
        #: prediction-drift accounting: |predicted - measured| / measured sums
        self.predicted_evals = 0
        self.drift_params_pct_sum = 0.0
        self.drift_flops_pct_sum = 0.0
        #: act-mem drift: measured workspace peak vs predicted activation
        #: bytes (only accumulated when the latency probe measures a peak)
        self.act_mem_evals = 0
        self.drift_act_mem_pct_sum = 0.0
        #: largest workspace footprint any evaluated scheme reached
        self.workspace_bytes_peak = 0
        #: evaluations whose predicted weight_bits != executed effective bits
        self.weight_bits_mismatches = 0
        #: evaluations whose *measured* latency exceeded budget.max_latency_ms
        self.latency_violations = 0
        self._cost_model: Optional[SchemeCostModel] = None
        self._cost_model_ready = False
        self._model_cache: "OrderedDict[str, ModelSnapshot]" = OrderedDict()
        self._model_cache_size = config.model_cache_size
        self._fingerprint: Optional[str] = None
        #: observability hook (see repro.obs); NULL_TRACER keeps the
        #: uninstrumented hot path to a single attribute check
        self.tracer = NULL_TRACER
        #: strategy steps actually executed (replay work; resumed steps skip)
        self.steps_executed = 0
        #: disk snapshot-store accounting (zero when no store is configured)
        self.snapshot_hits = 0
        self.snapshot_misses = 0
        self.snapshot_steps_saved = 0
        #: hits on snapshots written by another process/job/run (cross-job dedup)
        self.snapshot_foreign_hits = 0
        self._snapshot_store: Optional[ModelSnapshotStore] = None
        self._snapshot_store_ready = False

    # -- model snapshot tiers ----------------------------------------------
    @property
    def snapshot_store(self) -> Optional[ModelSnapshotStore]:
        """The disk tier, built lazily (the fingerprint needs base profiling)."""
        if not self._snapshot_store_ready:
            self._snapshot_store_ready = True
            if self.config.snapshot_dir is not None:
                budget = self.config.snapshot_budget_mb
                self._snapshot_store = ModelSnapshotStore(
                    self.config.snapshot_dir,
                    self.fingerprint(),
                    budget_bytes=None if budget is None else int(budget * 1024 * 1024),
                )
        return self._snapshot_store

    def set_snapshot_dir(self, snapshot_dir, budget_mb: Optional[float] = None) -> None:
        """(Re)configure the disk snapshot tier after construction.

        Updates ``config`` too, so engine workers rebuilt from it share the
        same store directory.
        """
        self.config = replace(
            self.config,
            snapshot_dir=None if snapshot_dir is None else str(snapshot_dir),
            snapshot_budget_mb=budget_mb,
        )
        self._snapshot_store = None
        self._snapshot_store_ready = False

    def _cache_model(
        self,
        key: str,
        model: Module,
        accuracy: float,
        step_reports: Sequence[StepReport] = (),
        step_costs: Sequence[float] = (),
        persist: bool = True,
    ) -> None:
        snapshot = ModelSnapshot(
            identifier=key,
            model=model,
            accuracy=accuracy,
            step_reports=list(step_reports),
            step_costs=list(step_costs),
        )
        self._model_cache[key] = snapshot
        self._model_cache.move_to_end(key)
        while len(self._model_cache) > self._model_cache_size:
            self._model_cache.popitem(last=False)
        store = self.snapshot_store
        if persist and store is not None:
            tracer = self.tracer
            if tracer.enabled:
                before = store.bytes_written
                with tracer.span("snapshot.save", prefix=key):
                    store.put(snapshot)
                tracer.metrics.counter("snapshot.bytes_written").inc(
                    store.bytes_written - before
                )
            else:
                store.put(snapshot)

    def _longest_cached_prefix(
        self, scheme: CompressionScheme
    ) -> Tuple[int, Optional[ModelSnapshot]]:
        """Longest resumable proper prefix: in-memory LRU first, disk second.

        A disk hit is adopted into the memory LRU (without re-persisting), so
        sibling evaluations in the same process pay the unpickle once.
        """
        store = self.snapshot_store
        for length in range(scheme.length - 1, 0, -1):
            identifier = scheme.prefix(length).identifier
            snapshot = self._model_cache.get(identifier)
            if snapshot is not None:
                self._model_cache.move_to_end(identifier)
                return length, snapshot
            if store is not None and identifier in store:
                tracer = self.tracer
                if tracer.enabled:
                    with tracer.span("snapshot.load", prefix=identifier, steps=length):
                        snapshot = store.get(identifier)
                else:
                    snapshot = store.get(identifier)
                if snapshot is not None:
                    self.snapshot_hits += 1
                    self.snapshot_steps_saved += length
                    if identifier not in store.written_ids:
                        self.snapshot_foreign_hits += 1
                    if tracer.enabled:
                        tracer.event("snapshot_hit", prefix=identifier, steps=length)
                        tracer.metrics.counter("snapshot.hits").inc()
                        tracer.metrics.counter("snapshot.steps_saved").inc(length)
                    self._cache_model(
                        identifier,
                        snapshot.model,
                        snapshot.accuracy,
                        snapshot.step_reports,
                        snapshot.step_costs,
                        persist=False,
                    )
                    return length, snapshot
        if store is not None and scheme.length > 1:
            self.snapshot_misses += 1
            if self.tracer.enabled:
                self.tracer.metrics.counter("snapshot.misses").inc()
        return 0, None

    def _measure_latency(self, model: Module) -> Tuple[float, int]:
        """``(median ms per inference batch, workspace bytes peak)``.

        Both zero when latency measurement is disabled.  The workspace is
        cleared before the probe so the peak is *this* model's scratch
        footprint at the probe batch size (the arena is grow-only, so
        without the clear it would report the largest model ever run on the
        thread); the probe's warm-up forward repopulates the buffers before
        anything is timed.
        """
        batch = self.config.latency_batch
        if not batch:
            return 0.0, 0
        from ..nn.bench import measure_latency
        from ..nn.workspace import (
            clear_workspace,
            reset_workspace_peak,
            workspace_stats,
        )

        input_shape = getattr(self, "_input_shape", (3, 32, 32))
        clear_workspace()
        reset_workspace_peak()
        if self.tracer.enabled:
            with self.tracer.span("latency.measure", batch=batch):
                ms = measure_latency(model, input_shape, batch=batch, seed=self.seed)
        else:
            ms = measure_latency(model, input_shape, batch=batch, seed=self.seed)
        return ms, int(workspace_stats()["bytes_peak"])

    def _longest_paid_prefix(self, scheme: CompressionScheme) -> int:
        """Longest proper prefix whose evaluation is already in ``results``."""
        for length in range(scheme.length - 1, 0, -1):
            if scheme.prefix(length).identifier in self.results:
                return length
        return 0

    def _charge(self, scheme: CompressionScheme, step_costs: Sequence[float]) -> float:
        """Canonical charged cost: overhead + steps beyond the paid prefix."""
        cost = EVAL_OVERHEAD_HOURS
        for step_cost in step_costs[self._longest_paid_prefix(scheme):]:
            cost += step_cost
        return cost

    # -- static cost model -------------------------------------------------
    @property
    def cost_model(self) -> Optional[SchemeCostModel]:
        """Lazy :class:`SchemeCostModel` over the backend's base model.

        ``None`` when the base model cannot be traced (custom test modules);
        budget checks then degrade to no-ops rather than failing evaluation.
        """
        if not self._cost_model_ready:
            self._cost_model_ready = True
            base_model = getattr(self, "_base_model", None)
            input_shape = getattr(self, "_input_shape", (3, 32, 32))
            if base_model is not None:
                try:
                    self._cost_model = SchemeCostModel(base_model, input_shape)
                except Exception:
                    self._cost_model = None
        return self._cost_model

    def set_budget(self, budget: Optional[Budget]) -> None:
        """(Re)configure the static feasibility budget after construction.

        Updates ``config`` too, so engine workers rebuilt from it enforce the
        same ceilings.
        """
        if budget is not None and budget.is_null:
            budget = None
        self.budget = budget
        self.config = replace(self.config, budget=budget)

    def is_feasible(self, scheme: CompressionScheme) -> bool:
        """Statically decide whether ``scheme`` can meet the budget.

        Free for the search budget: no surgery, no simulated GPU-hours.
        Schemes are feasible by definition when no budget or no cost model is
        available.  Infeasible calls are counted (``budget_filtered``) so
        runs can report how much of the space the budget eliminated.
        """
        budget = self.budget
        if budget is None or scheme.is_empty:
            return True
        cost_model = self.cost_model
        if cost_model is None:
            return True
        if cost_model.feasible(scheme, budget):
            return True
        self.budget_filtered += 1
        if self.tracer.enabled:
            self.tracer.event("budget_filter", scheme=scheme.identifier)
            self.tracer.metrics.counter("budget_filtered").inc()
        return False

    # -- public API ----------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable digest of model/dataset/seed/config identity.

        Includes the measured base profile (params/FLOPs/accuracy), so two
        evaluators only share a fingerprint when their models really are the
        same — even if they were built from opaque factory callables.
        """
        if self._fingerprint is None:
            payload = dict(self.config.fingerprint_payload())
            payload["class"] = type(self).__name__
            payload["base_params"] = int(getattr(self, "base_params", 0))
            payload["base_flops"] = int(getattr(self, "base_flops", 0))
            payload["base_accuracy"] = repr(getattr(self, "base_accuracy", 0.0))
            blob = json.dumps(payload, sort_keys=True, default=repr)
            self._fingerprint = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        return self._fingerprint

    def lint(self, scheme: CompressionScheme) -> Report:
        """Lint ``scheme``; record and raise :class:`SchemeRejected` on errors.

        Rejection happens *before* any simulated GPU-hours are charged — a
        doomed scheme costs the search nothing but the lint itself.  With a
        budget configured, the ``S###`` feasibility rules run here too, so a
        statically-infeasible scheme is rejected exactly like a lint error.
        """
        report = lint_scheme(
            scheme,
            budget=self.budget,
            cost_model=self.cost_model if self.budget is not None else None,
        )
        if report.has_errors:
            rules = sorted({d.rule for d in report.errors})
            self.rejected_count += 1
            self.rejected[scheme.identifier] = report
            over_budget = any(rule.startswith("S") for rule in rules)
            if over_budget:
                self.budget_rejects += 1
            if self.tracer.enabled:
                self.tracer.event("lint_reject", scheme=scheme.identifier, rules=rules)
                self.tracer.metrics.counter("lint_rejects").inc()
                if over_budget:
                    self.tracer.event("budget_reject", scheme=scheme.identifier)
                    self.tracer.metrics.counter("budget_rejects").inc()
            raise SchemeRejected(scheme, report)
        return report

    def evaluate(self, scheme: CompressionScheme) -> EvaluationResult:
        """Evaluate (with caching) one compression scheme.

        Raises :class:`~repro.analysis.linter.SchemeRejected` when linting is
        enabled and the scheme has an error-severity finding.
        """
        if scheme.identifier in self.results:
            if self.tracer.enabled:
                self.tracer.event("cache_hit", scheme=scheme.identifier, source="memory")
                self.tracer.metrics.counter("cache_hits.memory").inc()
            return self.results[scheme.identifier]
        if self.lint_schemes and not scheme.is_empty:
            self.lint(scheme)
        return self._evaluate_recorded(scheme)

    def evaluate_many(
        self, schemes: Sequence[CompressionScheme]
    ) -> List[EvaluationResult]:
        """Lint then evaluate a batch of schemes.

        The contract (shared with the parallel engine): deduplicate by
        identifier, lint every *new* scheme up front — the first error aborts
        the batch before any simulated hours are charged — then evaluate in
        input order.  The returned list aligns with the input; duplicates map
        to the same result object.
        """
        schemes = list(schemes)
        unique: Dict[str, CompressionScheme] = {}
        for scheme in schemes:
            unique.setdefault(scheme.identifier, scheme)
        if self.tracer.enabled:
            for scheme in unique.values():
                if scheme.identifier in self.results:
                    self.tracer.event("cache_hit", scheme=scheme.identifier, source="memory")
                    self.tracer.metrics.counter("cache_hits.memory").inc()
        if self.lint_schemes:
            for scheme in unique.values():
                if not scheme.is_empty and scheme.identifier not in self.results:
                    self.lint(scheme)
        for scheme in unique.values():
            if scheme.identifier not in self.results:
                self._evaluate_recorded(scheme)
        return [self.results[scheme.identifier] for scheme in schemes]

    def _record_prediction(self, result: EvaluationResult, span=None) -> None:
        """Fold predicted-vs-measured drift into the running accounting."""
        cost_model = self.cost_model
        if cost_model is None or result.scheme.is_empty:
            return
        prediction = cost_model.predict(result.scheme)
        self.predicted_evals += 1
        params_pct = 100.0 * abs(prediction.params - result.params) / max(result.params, 1)
        flops_pct = 100.0 * abs(prediction.flops - result.flops) / max(result.flops, 1)
        self.drift_params_pct_sum += params_pct
        self.drift_flops_pct_sum += flops_pct
        # Quantization drift: predicted weight width must match the bits the
        # executed steps report (C7 HP17, C8 8/16) — by construction they
        # share one source of truth, so any mismatch is a real bug.
        executed_bits = 32.0
        for report in result.step_reports:
            bits = report.details.get("effective_bits")
            if bits is not None:
                executed_bits = float(bits)
        if float(prediction.weight_bits) != executed_bits:
            self.weight_bits_mismatches += 1
        # Act-mem drift: the latency probe measures the real scratch
        # footprint (workspace arena peak, batch latency_batch); the cost
        # model predicts per-sample peak activation bytes.  The gap exposes
        # what the static model cannot see — im2col scratch amplification.
        act_mem_pct = None
        if result.workspace_bytes_peak > 0 and self.config.latency_batch:
            predicted_act = prediction.act_mem * self.config.latency_batch
            act_mem_pct = (
                100.0
                * abs(predicted_act - result.workspace_bytes_peak)
                / max(result.workspace_bytes_peak, 1)
            )
            self.act_mem_evals += 1
            self.drift_act_mem_pct_sum += act_mem_pct
        if span is not None:
            span.set(
                predicted_params=prediction.params,
                predicted_flops=prediction.flops,
                drift_params_pct=round(params_pct, 3),
                drift_flops_pct=round(flops_pct, 3),
            )
            if act_mem_pct is not None:
                span.set(
                    predicted_act_mem=prediction.act_mem,
                    drift_act_mem_pct=round(act_mem_pct, 3),
                )

    def prediction_drift(self) -> Dict[str, float]:
        """Mean absolute predicted-vs-measured drift over fresh evaluations."""
        count = max(self.predicted_evals, 1)
        return {
            "predicted_evals": float(self.predicted_evals),
            "drift_params_pct": self.drift_params_pct_sum / count,
            "drift_flops_pct": self.drift_flops_pct_sum / count,
            "weight_bits_mismatches": float(self.weight_bits_mismatches),
            "act_mem_evals": float(self.act_mem_evals),
            "drift_act_mem_pct": (
                self.drift_act_mem_pct_sum / max(self.act_mem_evals, 1)
            ),
            "workspace_bytes_peak": float(self.workspace_bytes_peak),
        }

    def _evaluate_recorded(self, scheme: CompressionScheme) -> EvaluationResult:
        """Run ``_evaluate`` and fold the result into the bookkeeping."""
        from ..nn.workspace import plan_cache_stats

        tracer = self.tracer
        if tracer.enabled:
            plans_before = plan_cache_stats()
            with tracer.span("evaluate", scheme=scheme.identifier, steps=scheme.length) as span:
                result = self._evaluate(scheme)
                # one charged evaluation == one `evaluate` span carrying its
                # exact cost float (the journal-sum == total_cost invariant)
                span.add_cost(result.cost)
                span.set(params=result.params, pr=result.pr, accuracy=result.accuracy)
                self._record_prediction(result, span)
                plans_after = plan_cache_stats()
                plan_hits = plans_after["hits"] - plans_before["hits"]
                plan_misses = plans_after["misses"] - plans_before["misses"]
                span.set(plan_cache_hits=plan_hits, plan_cache_misses=plan_misses)
                if result.workspace_bytes_peak:
                    span.set(workspace_bytes_peak=result.workspace_bytes_peak)
            tracer.metrics.counter("evaluations.fresh").inc()
            tracer.metrics.counter("nn.plan_cache_hits").inc(plan_hits)
            tracer.metrics.counter("nn.plan_cache_misses").inc(plan_misses)
        else:
            result = self._evaluate(scheme)
            if self.budget is not None:
                self._record_prediction(result)
        if result.workspace_bytes_peak > self.workspace_bytes_peak:
            self.workspace_bytes_peak = result.workspace_bytes_peak
            if tracer.enabled:
                tracer.metrics.gauge("nn.workspace_bytes_peak").set(
                    float(result.workspace_bytes_peak)
                )
        budget = self.budget
        if (
            budget is not None
            and budget.max_latency_ms is not None
            and result.latency_ms > 0.0
            and result.latency_ms > budget.max_latency_ms
        ):
            # The measured (not proxy) side of the S004 constraint: the scheme
            # was already paid for, so it is counted and reported, not rejected.
            self.latency_violations += 1
            if tracer.enabled:
                tracer.event(
                    "latency_violation",
                    scheme=scheme.identifier,
                    latency_ms=round(result.latency_ms, 3),
                    max_latency_ms=budget.max_latency_ms,
                )
                tracer.metrics.counter("latency_violations").inc()
        self.results[scheme.identifier] = result
        self.total_cost += result.cost
        self.evaluation_count += 1
        return result

    def pareto_results(self, gamma: Optional[float] = None) -> List[EvaluationResult]:
        """Non-dominated evaluated schemes (optionally filtered to PR >= gamma)."""
        from .pareto import pareto_mask

        candidates = [
            r
            for r in self.results.values()
            if not r.scheme.is_empty and (gamma is None or r.meets_target(gamma))
        ]
        if not candidates:
            return []
        points = np.stack([r.objectives for r in candidates])
        mask = pareto_mask(points)
        return [r for r, keep in zip(candidates, mask) if keep]

    def _evaluate(self, scheme: CompressionScheme) -> EvaluationResult:  # pragma: no cover
        raise NotImplementedError


def _step_cost(report: StepReport, flops_g: float, data_fraction: float) -> float:
    epochs = report.fine_tune_epochs + report.train_epochs
    return epochs * flops_g * data_fraction * EPOCH_COST_HOURS + EVAL_OVERHEAD_HOURS


class TrainingEvaluator(SchemeEvaluator):
    """Fully real backend: tiny models, real gradients, measured accuracy."""

    _BACKEND = "training"

    def __init__(
        self,
        model_factory: Callable[[], Module],
        train_data,
        val_data,
        config: Optional[EvaluatorConfig] = None,
        trainer: Optional[Trainer] = None,
        task: Optional[CompressionTask] = None,
        **legacy,
    ):
        config = coerce_config(self._BACKEND, config, legacy)
        config = replace(config, backend="training", train_data=train_data, val_data=val_data)
        if isinstance(model_factory, str):
            from ..models import create_model

            name, classes = model_factory, train_data.num_classes
            config = replace(config, model_name=name)
            model_factory = lambda: create_model(name, num_classes=classes)
        self.model_factory = model_factory
        self.train_data = train_data
        self.val_data = val_data
        self.pretrain_epochs = config.pretrain_epochs
        self.trainer = trainer or Trainer(
            lr=config.trainer_lr, batch_size=config.trainer_batch_size, seed=config.seed
        )
        self._input_shape = (train_data.channels, train_data.image_size, train_data.image_size)

        base_model = model_factory()
        self.trainer.fit(base_model, train_data, config.pretrain_epochs)
        self._base_model = base_model
        base_profile = profile_model(base_model, self._input_shape)
        self.base_params = base_profile.params
        self.base_flops = base_profile.flops
        self.base_accuracy = evaluate_accuracy(base_model, val_data)

        if task is None:
            from ..data.tasks import task_from_dataset

            task = task_from_dataset(train_data, base_model, "custom", self.base_accuracy)
        super().__init__(task, config=replace(config, task=task))

    def _evaluate(self, scheme: CompressionScheme) -> EvaluationResult:
        prefix_len, snapshot = self._longest_cached_prefix(scheme)
        if snapshot is not None:
            model = copy.deepcopy(snapshot.model)
            reports = list(snapshot.step_reports)
            step_costs = list(snapshot.step_costs)
        else:
            model = copy.deepcopy(self._base_model)
            reports, step_costs = [], []

        snapshotting = self.snapshot_store is not None
        for position in range(prefix_len, scheme.length):
            strategy = scheme.strategies[position]
            ctx = ExecutionContext(
                original_params=self.base_params,
                pretrain_epochs=self.pretrain_epochs,
                dataset=self.train_data,
                val_dataset=self.val_data,
                trainer=self.trainer,
                train_enabled=True,
                seed=self.seed + stable_hash(scheme.prefix(position + 1).identifier) % 10_000,
            )
            report = strategy.method.apply(model, strategy.hp, ctx)
            self.steps_executed += 1
            reports.append(report)
            profile = profile_model(model, self._input_shape)
            step_costs.append(_step_cost(report, profile.flops / 1e9, 1.0))
            if snapshotting and position + 1 < scheme.length:
                # Snapshot the intermediate prefix so siblings (this process
                # or any worker sharing the store) resume instead of replay.
                # The training backend re-measures accuracy from the model on
                # every evaluation, so the carried value is unused (0.0).
                self._cache_model(
                    scheme.prefix(position + 1).identifier,
                    copy.deepcopy(model),
                    0.0,
                    reports,
                    step_costs,
                )

        profile = profile_model(model, self._input_shape)
        accuracy = evaluate_accuracy(model, self.val_data)
        if not scheme.is_empty:
            self._cache_model(scheme.identifier, model, accuracy, reports, step_costs)
        latency_ms, ws_peak = self._measure_latency(model)
        return EvaluationResult(
            scheme=scheme,
            params=profile.params,
            flops=profile.flops,
            accuracy=accuracy,
            base_params=self.base_params,
            base_flops=self.base_flops,
            base_accuracy=self.base_accuracy,
            cost=self._charge(scheme, step_costs),
            step_reports=reports,
            step_costs=step_costs,
            latency_ms=latency_ms,
            workspace_bytes_peak=ws_peak,
        )


class SurrogateEvaluator(SchemeEvaluator):
    """Paper-scale backend: real surgery + calibrated accuracy surrogate."""

    _BACKEND = "surrogate"

    def __init__(
        self,
        model_factory: Callable[[], Module],
        model_name: str,
        dataset_name: str,
        task: CompressionTask,
        config: Optional[EvaluatorConfig] = None,
        **legacy,
    ):
        config = coerce_config(self._BACKEND, config, legacy)
        config = replace(
            config,
            backend="surrogate",
            model_name=config.model_name or model_name,
            dataset_name=dataset_name,
            task=task,
        )
        super().__init__(task, config=config)
        self.model_factory = model_factory
        self.model_name = model_name
        self.dataset_name = dataset_name
        self.pretrain_epochs = config.pretrain_epochs
        self.data_fraction = config.data_fraction
        self.accuracy_model = AccuracyModel(model_name, dataset_name, seed=config.seed)

        self._base_model = model_factory()
        self._input_shape = (task.channels, task.image_size, task.image_size)
        base_profile = profile_model(self._base_model, self._input_shape)
        self.base_params = base_profile.params
        self.base_flops = base_profile.flops
        self.base_accuracy = self.accuracy_model.baseline / 100.0

    def _evaluate(self, scheme: CompressionScheme) -> EvaluationResult:
        prefix_len, snapshot = self._longest_cached_prefix(scheme)
        if snapshot is not None:
            model = copy.deepcopy(snapshot.model)
            accuracy_pct = snapshot.accuracy
            reports = list(snapshot.step_reports)
            step_costs = list(snapshot.step_costs)
        else:
            model = copy.deepcopy(self._base_model)
            accuracy_pct = self.accuracy_model.baseline
            reports, step_costs = [], []

        snapshotting = self.snapshot_store is not None
        for position in range(prefix_len, scheme.length):
            strategy = scheme.strategies[position]
            sub_scheme = scheme.prefix(position + 1)
            ctx = ExecutionContext(
                original_params=self.base_params,
                pretrain_epochs=self.pretrain_epochs,
                train_enabled=False,
                seed=self.seed + stable_hash(sub_scheme.identifier) % 100_000,
            )
            params_before = model.num_parameters()
            report = strategy.method.apply(model, strategy.hp, ctx)
            reports.append(report)
            params_after = model.num_parameters()

            pr_before = (self.base_params - params_before) / self.base_params
            pr_after = (self.base_params - params_after) / self.base_params
            ft_norm = float(strategy.hp.get("HP1", strategy.hp.get("HP9", 0.0)))
            step_rng = np.random.default_rng(
                (self.seed * 1_000_003 + stable_hash(sub_scheme.identifier)) % (2 ** 63)
            )
            accuracy_pct, _ = self.accuracy_model.step(
                accuracy_pct,
                pr_before,
                pr_after,
                strategy.method_label,
                strategy.hp,
                ft_norm,
                previous_methods=tuple(
                    s.method_label for s in scheme.strategies[:position]
                ),
                rng=step_rng,
            )
            # Cost proxy: training FLOPs scale roughly with the remaining
            # parameter fraction (avoids a full profiling forward per step).
            flops_g = (self.base_flops / 1e9) * (params_after / self.base_params)
            step_costs.append(_step_cost(report, flops_g, self.data_fraction))
            self.steps_executed += 1
            if snapshotting and position + 1 < scheme.length:
                self._cache_model(
                    sub_scheme.identifier,
                    copy.deepcopy(model),
                    accuracy_pct,
                    reports,
                    step_costs,
                )

        profile = profile_model(model, self._input_shape)
        if not scheme.is_empty:
            self._cache_model(scheme.identifier, model, accuracy_pct, reports, step_costs)
        latency_ms, ws_peak = self._measure_latency(model)
        return EvaluationResult(
            scheme=scheme,
            params=profile.params,
            flops=profile.flops,
            accuracy=accuracy_pct / 100.0,
            base_params=self.base_params,
            base_flops=self.base_flops,
            base_accuracy=self.base_accuracy,
            cost=self._charge(scheme, step_costs),
            step_reports=reports,
            step_costs=step_costs,
            latency_ms=latency_ms,
            workspace_bytes_peak=ws_peak,
        )
