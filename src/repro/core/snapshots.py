"""Disk-backed model-snapshot store — the second tier of prefix reuse.

AutoMC's progressive search grows schemes step by step, so nearly every
candidate shares a long prefix with an already-evaluated parent.  The
evaluators keep an in-memory LRU of compressed prefix models, but that LRU
is per-process: engine workers each rebuild their own, and all of them die
with the pool.  The :class:`ModelSnapshotStore` persists trained prefix
states to disk — keyed by evaluator fingerprint + prefix identifier — so a
prefix trained once is resumable by *any* worker, a recycled pool, or a
later run.

Design points:

* **Payloads** are full modules (structure + state, via
  :func:`repro.nn.serialization.save_module`) plus the resume metadata the
  evaluators need: the accuracy carried through the accuracy surrogate and
  the per-step reports/costs of the prefix.  A state dict alone would not
  do — rebuilding the structure requires replaying the surgery the snapshot
  exists to skip.
* **Atomic writes** — each snapshot is written to a temp file in the store
  directory and ``os.replace``d into place, so concurrent workers can share
  a store without locking and readers never observe partial files.
* **Byte-budgeted LRU eviction** — the store keeps total on-disk bytes
  under ``budget_bytes`` by deleting the least-recently-used snapshots
  (file mtimes, refreshed on every hit).  The newest snapshot is never
  evicted, so a store with a tiny budget still serves the current chain.
* **Corruption tolerance** — an unreadable or mismatched snapshot is
  treated as a miss (and deleted); the evaluator falls back to replaying
  the prefix, which is bit-identical by the determinism guarantee.

Resuming from a snapshot is bit-identical to replaying the prefix: per-step
RNG seeds derive from stable digests of sub-scheme identifiers, so the
stored model state equals the state a fresh replay would reach.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Set

from ..compression import StepReport
from ..nn import Module
from ..nn.serialization import load_module, save_module

#: default on-disk budget — roughly a few hundred resnet56-sized snapshots
DEFAULT_SNAPSHOT_BUDGET_MB = 256.0


@dataclass
class ModelSnapshot:
    """Everything needed to resume evaluation from a trained prefix model."""

    identifier: str
    model: Module
    accuracy: float                       # backend-native accuracy carry
    step_reports: List[StepReport] = field(default_factory=list)
    step_costs: List[float] = field(default_factory=list)


class ModelSnapshotStore:
    """Disk checkpoint tree for prefix models, shared across processes.

    Layout mirrors :class:`~repro.core.engine.ResultCache`::

        snapshot_dir/<fingerprint[:16]>/<sha256(identifier)[:24]>.snap

    ``hits`` / ``misses`` / ``bytes_written`` / ``bytes_evicted`` are plain
    counters the owning evaluator mirrors into its tracer metrics.
    ``foreign_hits`` counts the subset of hits whose snapshot this store
    *instance* never wrote — i.e. prefixes trained by another process, job
    or run sharing the directory.  In a multi-tenant server this is the
    direct measure of cross-job prefix dedup.
    """

    SUFFIX = ".snap"

    def __init__(
        self,
        snapshot_dir,
        fingerprint: str,
        budget_bytes: Optional[int] = None,
    ):
        self.root = Path(snapshot_dir) / fingerprint[:16]
        self.fingerprint = fingerprint
        self.budget_bytes = (
            int(DEFAULT_SNAPSHOT_BUDGET_MB * 1024 * 1024)
            if budget_bytes is None
            else int(budget_bytes)
        )
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.foreign_hits = 0
        self.bytes_written = 0
        self.bytes_evicted = 0
        self.evictions = 0
        #: identifiers this instance wrote; hits outside it are "foreign"
        self.written_ids: Set[str] = set()

    # ------------------------------------------------------------------ #
    def _path(self, identifier: str) -> Path:
        digest = hashlib.sha256(identifier.encode("utf-8")).hexdigest()[:24]
        return self.root / f"{digest}{self.SUFFIX}"

    def __contains__(self, identifier: str) -> bool:
        return self._path(identifier).exists()

    def get(self, identifier: str) -> Optional[ModelSnapshot]:
        """Load a snapshot, refreshing its LRU recency; ``None`` on miss.

        Corrupt files (truncated writes from killed workers, foreign data)
        are deleted and reported as misses — the caller replays instead.
        """
        path = self._path(identifier)
        try:
            model, extra = load_module(path)
            if extra.get("identifier") != identifier:  # digest collision
                self.misses += 1
                return None
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)  # mark as recently used for eviction ordering
        except OSError:
            pass
        self.hits += 1
        if identifier not in self.written_ids:
            self.foreign_hits += 1
        return ModelSnapshot(
            identifier=identifier,
            model=model,
            accuracy=extra["accuracy"],
            step_reports=list(extra.get("step_reports", [])),
            step_costs=list(extra.get("step_costs", [])),
        )

    def put(self, snapshot: ModelSnapshot) -> None:
        """Persist one prefix snapshot (atomic), then enforce the budget."""
        path = self._path(snapshot.identifier)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        os.close(fd)
        try:
            save_module(
                snapshot.model,
                tmp,
                extra={
                    "identifier": snapshot.identifier,
                    "accuracy": snapshot.accuracy,
                    "step_reports": list(snapshot.step_reports),
                    "step_costs": list(snapshot.step_costs),
                },
            )
            self.bytes_written += os.path.getsize(tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.written_ids.add(snapshot.identifier)
        self._evict(keep=path)

    # ------------------------------------------------------------------ #
    def _entries(self):
        """(mtime, size, path) for every snapshot file, oldest first."""
        entries = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        for name in names:
            if not name.endswith(self.SUFFIX):
                continue
            path = self.root / name
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(key=lambda e: (e[0], e[2].name))
        return entries

    def _evict(self, keep: Optional[Path] = None) -> None:
        """Delete least-recently-used snapshots until under the byte budget.

        ``keep`` (the snapshot just written) survives even when it alone
        exceeds the budget — evicting the hot chain would defeat the store.
        """
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        for _, size, path in entries:
            if total <= self.budget_bytes:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.bytes_evicted += size
            self.evictions += 1

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Point-in-time store accounting (entries + counters)."""
        entries = self._entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "budget_bytes": self.budget_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "foreign_hits": self.foreign_hits,
            "bytes_written": self.bytes_written,
            "bytes_evicted": self.bytes_evicted,
            "evictions": self.evictions,
        }
