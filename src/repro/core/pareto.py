"""Pareto-front utilities for the bi-objective (AR, PR) optimisation.

Conventions: points are (n, m) arrays where every objective is to be
*maximised* (callers negate minimisation objectives).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def pareto_mask(points: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows (all objectives maximised)."""
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        dominated_by_i = np.all(points <= points[i], axis=1) & np.any(
            points < points[i], axis=1
        )
        mask &= ~dominated_by_i
        mask[i] = True
    return mask


def pareto_indices(points: np.ndarray) -> np.ndarray:
    """Indices of non-dominated rows."""
    return np.flatnonzero(pareto_mask(points))


def nondominated_sort(points: np.ndarray) -> List[np.ndarray]:
    """NSGA-II fast non-dominated sorting into fronts (best first)."""
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    dominated_count = np.zeros(n, dtype=np.int64)
    dominates: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        better_eq = np.all(points >= points[i], axis=1)
        strictly = np.any(points > points[i], axis=1)
        dominators = np.flatnonzero(better_eq & strictly)
        dominated_count[i] = len(dominators)
        for j in dominators:
            dominates[j].append(i)
    fronts: List[np.ndarray] = []
    current = np.flatnonzero(dominated_count == 0)
    while len(current):
        fronts.append(current)
        next_front = []
        for i in current:
            for j in dominates[i]:
                dominated_count[j] -= 1
                if dominated_count[j] == 0:
                    next_front.append(j)
        current = np.asarray(sorted(set(next_front)), dtype=np.int64)
    return fronts


def crowding_distance(points: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance (inf at the extremes of each objective)."""
    points = np.asarray(points, dtype=np.float64)
    n, m = points.shape
    distance = np.zeros(n)
    if n <= 2:
        return np.full(n, np.inf)
    for k in range(m):
        order = np.argsort(points[:, k])
        span = points[order[-1], k] - points[order[0], k]
        distance[order[0]] = distance[order[-1]] = np.inf
        if span <= 0:
            continue
        gaps = (points[order[2:], k] - points[order[:-2], k]) / span
        distance[order[1:-1]] += gaps
    return distance


def hypervolume_2d(points: np.ndarray, reference: Sequence[float]) -> float:
    """Dominated hypervolume for two maximised objectives.

    ``reference`` is the worst corner; points not dominating it contribute
    nothing.
    """
    points = np.asarray(points, dtype=np.float64)
    ref = np.asarray(reference, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("hypervolume_2d expects (n, 2) points")
    useful = points[np.all(points > ref, axis=1)]
    if len(useful) == 0:
        return 0.0
    front = useful[pareto_mask(useful)]
    front = front[np.argsort(-front[:, 0])]  # descending first objective
    volume = 0.0
    prev_y = ref[1]
    for x, y in front:
        if y > prev_y:
            volume += (x - ref[0]) * (y - prev_y)
            prev_y = y
    return float(volume)


def select_diverse(points: np.ndarray, k: int) -> np.ndarray:
    """Pick up to ``k`` indices from the Pareto front, preferring spread."""
    front = pareto_indices(points)
    if len(front) <= k:
        return front
    distance = crowding_distance(points[front])
    order = np.argsort(-distance)
    return front[order[:k]]
