"""Evaluator configuration — the picklable spec both backends rebuild from.

:class:`EvaluatorConfig` consolidates the constructor knobs that used to be
scattered across ``TrainingEvaluator``/``SurrogateEvaluator`` kwargs (epochs,
seed, cache sizes, lint flag, data fraction).  It is a *frozen*, picklable
value object, which makes it

* the single source of truth an :class:`~repro.core.engine.EvaluationEngine`
  ships to worker processes so they can rebuild an identical evaluator, and
* the canonical input to the evaluator fingerprint that keys the persistent
  result cache.

Models are referenced by registry name (``"resnet20"``) rather than factory
callables, and datasets are the plain-numpy :class:`SyntheticImageDataset`
objects — both pickle cleanly.  The legacy per-kwarg constructor style keeps
working through :func:`coerce_config`, which folds loose kwargs into a config
and emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..analysis.costmodel import Budget
from ..data.tasks import CompressionTask

#: per-backend defaults for fields left as ``None`` in a user-built config
_BACKEND_DEFAULTS: Dict[str, Dict[str, object]] = {
    "surrogate": {"pretrain_epochs": 100.0, "model_cache_size": 32},
    "training": {"pretrain_epochs": 2.0, "model_cache_size": 16},
}

#: legacy kwargs each backend accepted before the config consolidation
LEGACY_KEYS: Dict[str, Tuple[str, ...]] = {
    "surrogate": (
        "pretrain_epochs", "data_fraction", "seed", "model_cache_size", "lint_schemes",
    ),
    "training": ("pretrain_epochs", "seed", "model_cache_size", "lint_schemes"),
    "base": ("seed", "model_cache_size", "lint_schemes"),
}


@dataclass(frozen=True)
class EvaluatorConfig:
    """Frozen, picklable spec from which an evaluator can be (re)built.

    ``backend`` selects the evaluator class; ``None`` fields fall back to
    that backend's defaults when the config is resolved.  Only fields that
    change *measured values* enter the fingerprint — presentation knobs
    (cache size, linting) do not.
    """

    backend: str = "surrogate"               # "surrogate" | "training"
    model_name: Optional[str] = None         # repro.models registry name
    dataset_name: str = "cifar10"
    task: Optional[CompressionTask] = None
    num_classes: Optional[int] = None        # default: task/dataset classes
    pretrain_epochs: Optional[float] = None  # backend default when None
    data_fraction: float = 0.1               # surrogate cost model only
    seed: int = 0
    model_cache_size: Optional[int] = None   # backend default when None
    lint_schemes: bool = True
    # Static budget-feasibility ceilings (repro.analysis.costmodel).  A budget
    # only *filters* which schemes are evaluated — it never changes a measured
    # result — so, like linting, it stays out of the fingerprint.
    budget: Optional[Budget] = field(default=None, compare=False)
    # Measured latency: batch size for the median wall-clock inference timing
    # attached to each result (None disables it).  Wall-clock is machine- and
    # load-dependent, so it is an *extra measured column*, never an input to
    # the deterministic quantities — it stays out of the fingerprint.
    latency_batch: Optional[int] = field(default=None, compare=False)
    # Prefix-model snapshot store (repro.core.snapshots).  Presentation-layer
    # knobs: resuming a snapshot is bit-identical to replaying the prefix, so
    # neither field enters the fingerprint.  Carried in the config so engine
    # workers rebuild evaluators that share the same on-disk store.
    snapshot_dir: Optional[str] = field(default=None, compare=False)
    snapshot_budget_mb: Optional[float] = field(default=None, compare=False)
    # training backend: live (picklable) datasets and trainer knobs
    train_data: Optional[object] = field(default=None, compare=False)
    val_data: Optional[object] = field(default=None, compare=False)
    trainer_lr: float = 0.05
    trainer_batch_size: int = 32

    # ------------------------------------------------------------------ #
    def resolved(self, backend: Optional[str] = None) -> "EvaluatorConfig":
        """A copy with ``backend`` set and ``None`` fields filled from defaults."""
        backend = backend or self.backend
        if backend not in _BACKEND_DEFAULTS:
            raise ValueError(f"unknown evaluator backend {backend!r}")
        updates: Dict[str, object] = {"backend": backend}
        for name, default in _BACKEND_DEFAULTS[backend].items():
            if getattr(self, name) is None:
                updates[name] = default
        return replace(self, **updates)

    @property
    def is_buildable(self) -> bool:
        """True when :meth:`build` can rebuild this evaluator in a fresh process."""
        from ..models import available_models

        if self.model_name not in available_models():
            return False
        if self.backend == "surrogate":
            return self.task is not None
        return self.train_data is not None and self.val_data is not None

    def build(self):
        """Construct the evaluator this config describes (used by workers)."""
        from ..models import create_model
        from .evaluator import SurrogateEvaluator, TrainingEvaluator

        config = self.resolved()
        if config.model_name is None:
            raise ValueError("EvaluatorConfig.build() needs a registry model_name")
        if config.backend == "surrogate":
            if config.task is None:
                raise ValueError("surrogate EvaluatorConfig needs a task")
            num_classes = config.num_classes or config.task.num_classes
            return SurrogateEvaluator(
                lambda: create_model(config.model_name, num_classes=num_classes),
                config.model_name,
                config.dataset_name,
                config.task,
                config=config,
            )
        if config.train_data is None or config.val_data is None:
            raise ValueError("training EvaluatorConfig needs train_data and val_data")
        num_classes = config.num_classes or config.train_data.num_classes
        return TrainingEvaluator(
            lambda: create_model(config.model_name, num_classes=num_classes),
            config.train_data,
            config.val_data,
            config=config,
        )

    # ------------------------------------------------------------------ #
    def to_payload(self) -> Dict[str, object]:
        """JSON-safe wire form (the ``repro serve`` job protocol).

        Inverse of :meth:`from_payload`.  Live training datasets are
        process-local objects and cannot cross the wire — a training config
        submitted to a server must reference data the server can build
        itself, so configs carrying ``train_data``/``val_data`` are
        rejected here.
        """
        if self.train_data is not None or self.val_data is not None:
            raise ValueError(
                "EvaluatorConfig with live train_data/val_data cannot be "
                "serialised for the serve protocol"
            )
        payload = asdict(self)
        payload.pop("train_data")
        payload.pop("val_data")
        payload["task"] = None if self.task is None else asdict(self.task)
        payload["budget"] = None if self.budget is None else self.budget.to_payload()
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "EvaluatorConfig":
        """Rebuild a config from :meth:`to_payload` output.

        Unknown keys are rejected (typo'd wire payloads fail loudly instead
        of silently falling back to defaults).
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown EvaluatorConfig fields: {', '.join(unknown)}")
        data = dict(payload)
        task = data.get("task")
        if task is not None:
            data["task"] = CompressionTask(**task)
        data["budget"] = Budget.from_payload(data.get("budget"))
        return cls(**data)  # type: ignore[arg-type]

    # ------------------------------------------------------------------ #
    def fingerprint_payload(self) -> Dict[str, object]:
        """The config fields that determine measured results (for fingerprints)."""
        payload: Dict[str, object] = {
            "backend": self.backend,
            "model_name": self.model_name,
            "dataset_name": self.dataset_name,
            "seed": self.seed,
            "pretrain_epochs": self.pretrain_epochs,
        }
        if self.task is not None:
            payload["task"] = str(self.task)
        if self.backend == "surrogate":
            payload["data_fraction"] = self.data_fraction
        else:
            payload["trainer"] = (self.trainer_lr, self.trainer_batch_size)
            for name, data in (("train", self.train_data), ("val", self.val_data)):
                if data is not None:
                    payload[f"{name}_data"] = dataset_digest(data)
        return payload


def dataset_digest(dataset) -> str:
    """Content digest of an in-memory dataset (images + labels)."""
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(dataset.images).tobytes())
    digest.update(np.ascontiguousarray(dataset.labels).tobytes())
    return digest.hexdigest()


def coerce_config(
    backend: str,
    config: Optional[EvaluatorConfig],
    legacy: Dict[str, object],
) -> EvaluatorConfig:
    """Resolve the (config, legacy kwargs) pair an evaluator was called with.

    Loose kwargs still work but are deprecated: they are folded into an
    :class:`EvaluatorConfig` with a :class:`DeprecationWarning`.  Mixing both
    styles is rejected so there is exactly one source of truth.
    """
    allowed = LEGACY_KEYS[backend]
    unknown = sorted(set(legacy) - set(allowed))
    if unknown:
        raise TypeError(f"unexpected evaluator arguments: {', '.join(unknown)}")
    if legacy:
        if config is not None:
            raise TypeError(
                "pass either config=EvaluatorConfig(...) or legacy kwargs, not both"
            )
        warnings.warn(
            f"passing {sorted(legacy)} as loose kwargs is deprecated; "
            "use config=EvaluatorConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        config = EvaluatorConfig(**legacy)  # type: ignore[arg-type]
    if config is None:
        config = EvaluatorConfig()
    # The bare base class shares the training backend's defaults (cache 16).
    return config.resolved("training" if backend == "base" else backend)
