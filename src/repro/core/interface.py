"""The evaluator contract search code programs against.

Search strategies, the human-baseline grids and the batched
:class:`~repro.core.engine.EvaluationEngine` all depend on this *interface*,
not on :class:`~repro.core.evaluator.SchemeEvaluator` — anything that can
evaluate schemes, report accumulated results/cost and identify its own
configuration by fingerprint is a valid evaluation backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..space.scheme import CompressionScheme
    from .evaluator import EvaluationResult


@runtime_checkable
class Evaluator(Protocol):
    """Structural contract of an evaluation backend.

    ``results`` maps scheme identifier to its evaluation outcome in insertion
    (evaluation) order; ``total_cost`` is the simulated GPU-hours charged so
    far.  ``evaluate_many`` must lint every new scheme *before* evaluating
    any of them and return results aligned with the input order (duplicates
    map to the same result).  ``fingerprint`` is a stable digest of
    everything that determines measured values (model, dataset, seed,
    config) — two evaluators with equal fingerprints are interchangeable,
    which is what keys the persistent result cache.
    """

    results: Dict[str, "EvaluationResult"]
    total_cost: float
    evaluation_count: int

    def evaluate(self, scheme: "CompressionScheme") -> "EvaluationResult":
        """Evaluate one scheme (cached by identifier)."""
        ...

    def evaluate_many(
        self, schemes: Sequence["CompressionScheme"]
    ) -> List["EvaluationResult"]:
        """Lint then evaluate a batch; results align with the input order."""
        ...

    def fingerprint(self) -> str:
        """Stable digest of model/dataset/seed/config identity."""
        ...
