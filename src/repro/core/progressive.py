"""Algorithm 2 — AutoMC's progressive search strategy (§3.3.2).

Each optimisation round:

1. sample a subset H_sub of the evaluated schemes (Pareto-preferred);
2. form the step search space S_step = {(seq, s) : seq in H_sub, s in
   Next_seq} where Next_seq are seq's *unexplored* next strategies;
3. score every option with F_mo and Eq. 4's (ACC, PAR) projections;
4. evaluate the Pareto-optimal options (capped, crowding-diverse);
5. train F_mo on the observed (AR_step, PR_step) targets (Eq. 5);
6. fold the new schemes into H_scheme and update the Next bookkeeping.

The search stops when the simulated GPU-hour budget is exhausted and returns
the Pareto-optimal schemes whose parameter reduction meets the target γ.

:class:`ProgressiveSolver` implements the algorithm on the shared
:class:`~repro.core.solver.Solver` round loop (registered as
``"progressive"``); :class:`ProgressiveSearch` is the original facade over
the same solver, kept for callers that construct searches directly.  The
per-round random draws happen in the exact same order as the pre-solver
implementation, so seeded results are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..knowledge.embedding import EmbeddingConfig, StrategyEmbeddings, learn_embeddings
from ..space.scheme import CompressionScheme
from ..space.strategy import StrategySpace
from .evaluator import EvaluationResult
from .fmo import Fmo
from .interface import Evaluator
from .pareto import pareto_indices, select_diverse
from .search import SearchResult, SearchStrategy
from .solver import Solver, register_solver


@dataclass
class ProgressiveConfig:
    """Tunables of Algorithm 2."""

    sample_size: int = 8          # |H_sub| per round
    evals_per_round: int = 6      # cap on |ParetoO|
    fmo_epochs: int = 25          # Eq. 5 epochs per round
    # Annealed noise on F_mo predictions; AR_step signals are O(0.005), so
    # the noise floor must sit well below that once a few rounds have run.
    exploration_noise: float = 0.004
    max_nominal_pr: float = 0.9   # skip candidates whose HP2 sum exceeds this
    candidate_subsample: int = 4230   # candidates scored per scheme per round
    # Design-choice toggles (exercised by benchmarks/test_design_ablations.py):
    stratified_sampling: bool = True   # PR-stratified H_sub sampling
    feasible_bias: bool = True         # half the evals target PR in [γ, 0.8]


@register_solver("progressive", label="AutoMC")
class ProgressiveSolver(Solver):
    """AutoMC: knowledge-guided, progressively expanding scheme search."""

    def __init__(
        self,
        strategy: SearchStrategy,
        embeddings: Optional[StrategyEmbeddings] = None,
        config: Optional[ProgressiveConfig] = None,
        experience=None,
    ):
        super().__init__(strategy)
        self.config = config or ProgressiveConfig()
        if embeddings is None:
            embeddings = learn_embeddings(
                strategy.space, config=EmbeddingConfig(seed=strategy.seed)
            )
        self.embeddings = embeddings
        self.fmo = Fmo(embeddings, max_length=strategy.max_length, seed=strategy.seed)
        if experience:
            self.fmo.pretrain_from_experience(experience)
        # Next_seq bookkeeping: scheme id -> boolean mask of unexplored ops.
        self._unexplored: Dict[str, np.ndarray] = {}
        self._results_by_id: Dict[str, EvaluationResult] = {}
        # the round's (parent, candidate_index) selection, set by propose()
        self._selected: List[Tuple[EvaluationResult, int]] = []
        self._round_index = 0

    # ------------------------------------------------------------------ #
    def _ensure_tracked(self, result: EvaluationResult) -> None:
        key = result.scheme.identifier
        if key not in self._unexplored and result.scheme.length < self.max_length:
            self._unexplored[key] = np.ones(len(self.space), dtype=bool)
        self._results_by_id[key] = result

    #: parent-sampling strata over cumulative PR — extensions of shallow
    #: schemes are what keep the feasible band [gamma, ~0.5] populated, so
    #: every stratum stays in play for the whole search.
    _PR_BINS = ((0.0, 0.15), (0.15, 0.30), (0.30, 0.50), (0.50, 1.01))

    def _sample_h_sub(self) -> List[EvaluationResult]:
        """PR-stratified, Pareto-preferred sample of expandable schemes."""
        expandable = [
            r
            for key, r in self._results_by_id.items()
            if key in self._unexplored and self._unexplored[key].any()
        ]
        if not expandable:
            return []
        chosen: List[int] = []
        if self.config.stratified_sampling:
            # One best-accuracy parent per PR stratum.
            for low, high in self._PR_BINS:
                members = [
                    i for i, r in enumerate(expandable) if low <= r.pr < high
                ]
                if members:
                    chosen.append(max(members, key=lambda i: expandable[i].accuracy))
        # Fill the rest with a crowding-diverse Pareto pick plus randoms.
        points = np.stack([r.objectives for r in expandable])
        for i in select_diverse(points, self.config.sample_size):
            if len(chosen) >= self.config.sample_size:
                break
            if int(i) not in chosen:
                chosen.append(int(i))
        remaining = [i for i in range(len(expandable)) if i not in set(chosen)]
        extra = self.config.sample_size - len(chosen)
        if extra > 0 and remaining:
            picks = self.rng.choice(
                remaining, size=min(extra, len(remaining)), replace=False
            )
            chosen.extend(int(i) for i in picks)
        return [expandable[i] for i in chosen[: self.config.sample_size]]

    def _state_of(self, result: EvaluationResult) -> np.ndarray:
        return Fmo.state_features(
            result.accuracy / max(result.base_accuracy, 1e-9),
            result.params / max(result.base_params, 1),
            result.scheme.length,
            result.scheme.total_param_step,
            self.max_length,
        )

    # ------------------------------------------------------------------ #
    def _score_round(
        self, h_sub: List[EvaluationResult], round_index: int
    ) -> List[Tuple[EvaluationResult, int, float, float]]:
        """All (seq, s) options with Eq. 4 projections (ACC, -PAR)."""
        options: List[Tuple[EvaluationResult, int, float, float]] = []
        noise_scale = self.config.exploration_noise / np.sqrt(1 + round_index)
        for result in h_sub:
            mask = self._unexplored[result.scheme.identifier]
            candidates = np.flatnonzero(mask)
            if len(candidates) == 0:
                continue
            if len(candidates) > self.config.candidate_subsample:
                candidates = self.rng.choice(
                    candidates, size=self.config.candidate_subsample, replace=False
                )
            # Budget filter: drop candidates whose nominal PR would explode.
            nominal = result.scheme.total_param_step
            steps = np.array([self.space[int(i)].param_step for i in candidates])
            keep = nominal + steps <= self.config.max_nominal_pr
            candidates = candidates[keep]
            if len(candidates) == 0:
                continue
            # Static feasibility filter: abstractly interpret each extension
            # against the evaluator's budget and drop the infeasible ones
            # before they are ever scored or evaluated.  Infeasibility is a
            # property of the (parent, strategy) pair, so the mask is
            # permanently retired for those ops — each pair is checked once.
            if getattr(self.evaluator, "budget", None) is not None:
                feasible = np.ones(len(candidates), dtype=bool)
                for j, i in enumerate(candidates):
                    child = result.scheme.extend(self.space[int(i)])
                    if not self.strategy.feasible(child):
                        feasible[j] = False
                        mask[int(i)] = False
                candidates = candidates[feasible]
                if len(candidates) == 0:
                    continue
            state = self._state_of(result)
            predictions = self.fmo.predict(result.scheme, state, candidates)
            predictions = predictions + self.rng.normal(
                0, noise_scale, size=predictions.shape
            )
            acc_proj = result.accuracy * (1.0 + predictions[:, 0])  # Eq. 4 ACC
            par_proj = result.params * (1.0 - predictions[:, 1])    # Eq. 4 PAR
            for cand, acc, par in zip(candidates, acc_proj, par_proj):
                options.append((result, int(cand), float(acc), float(par)))
        return options

    def _select_pareto_options(
        self, options: List[Tuple[EvaluationResult, int, float, float]]
    ) -> List[Tuple[EvaluationResult, int]]:
        """ParetoO = argmax [ACC, -PAR], capped and diversity-selected.

        With ``feasible_bias`` on, half of the evaluation slots go to the
        highest-projected-ACC Pareto options whose projected cumulative PR
        lands in [gamma, 0.8] — Definition 1 constrains the final answer to
        PR >= γ, so that region is where evaluations buy the most; the rest
        is spread over the whole front by crowding distance (exploration).
        """
        if not options:
            return []
        points = np.array([[acc, -par] for (_, _, acc, par) in options])
        front = pareto_indices(points)
        budget = self.config.evals_per_round

        base_params = max(
            next(iter(self._results_by_id.values())).base_params, 1
        )
        pr_projected = np.array([1.0 - par / base_params for (_, _, _, par) in options])
        chosen: List[int] = []
        if self.config.feasible_bias:
            feasible_front = [
                int(i) for i in front if self.gamma <= pr_projected[i] <= 0.8
            ]
            feasible_front.sort(key=lambda i: -points[i, 0])  # by projected ACC
            chosen = feasible_front[: max(budget // 2, 1)]

        remaining = budget - len(chosen)
        if remaining > 0:
            spread = select_diverse(points, budget)
            for i in spread:
                if int(i) not in chosen and remaining > 0:
                    chosen.append(int(i))
                    remaining -= 1
        return [(options[i][0], options[i][1]) for i in chosen]

    # ------------------------------------------------------------------ #
    def setup(self) -> None:
        start = self.evaluator.evaluate(CompressionScheme())
        self._ensure_tracked(start)

    def propose(self, state: SearchStrategy) -> List[CompressionScheme]:
        h_sub = self._sample_h_sub()
        if not h_sub:
            self._selected = []
            return []
        options = self._score_round(h_sub, self._round_index)
        selected = self._select_pareto_options(options)
        self._round_attrs = {
            "parents": len(h_sub), "options": len(options), "selected": len(selected)
        }
        self._selected = selected
        return [parent.scheme.extend(self.space[c]) for parent, c in selected]

    def observe(self, results: List[EvaluationResult]) -> None:
        # The driver may have pruned some proposals (only possible when the
        # evaluator exposes is_feasible without a budget attribute — the
        # in-round filter in _score_round otherwise pre-vets every child),
        # so match results back to the selection by identifier.  Distinct
        # (parent, candidate) pairs always produce distinct identifiers.
        by_id = {r.scheme.identifier: r for r in results}
        observed = False
        for parent, candidate_index in self._selected:
            child_scheme = parent.scheme.extend(self.space[candidate_index])
            child = by_id.get(child_scheme.identifier)
            if child is None:
                continue
            self._ensure_tracked(child)
            # Mark s as explored under seq (Algorithm 2, line 9).
            self._unexplored[parent.scheme.identifier][candidate_index] = False
            # Observed step targets for Eq. 5.
            ar_step = (child.accuracy - parent.accuracy) / max(parent.accuracy, 1e-9)
            pr_step = (parent.params - child.params) / max(parent.params, 1)
            self.fmo.observe(
                parent.scheme, self._state_of(parent), candidate_index,
                ar_step, pr_step,
            )
            observed = True
        if observed:
            self.fmo.train(epochs=self.config.fmo_epochs)
        self._round_index += 1


class ProgressiveSearch(SearchStrategy):
    """Original construct-and-run facade over :class:`ProgressiveSolver`.

    Kept as the primary paper-facing API; ``repro.core.solver`` is the
    pluggable route (``get_solver("progressive")``).  Attribute access not
    found on the strategy state falls through to the underlying solver, so
    ``searcher.fmo`` / ``searcher._unexplored`` keep working.
    """

    name = "AutoMC"

    def __init__(
        self,
        evaluator: Evaluator,
        space: StrategySpace,
        embeddings: StrategyEmbeddings,
        gamma: float = 0.3,
        budget_hours: float = 24.0,
        max_length: int = 5,
        config: Optional[ProgressiveConfig] = None,
        experience=None,
        seed: int = 0,
    ):
        super().__init__(evaluator, space, gamma, budget_hours, max_length, seed)
        self._solver = ProgressiveSolver(
            self, embeddings=embeddings, config=config, experience=experience
        )

    def run(self) -> SearchResult:
        return self._solver.run()

    def __getattr__(self, item):
        solver = self.__dict__.get("_solver")
        if solver is None:
            raise AttributeError(item)
        return getattr(solver, item)
