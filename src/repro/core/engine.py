"""Batched parallel evaluation engine with a persistent cross-run cache.

AutoMC spends essentially all of its wall-clock inside scheme evaluations
(the paper budgets 3 GPU-days of them), but the evaluators themselves are
strictly serial and their result cache dies with the process.  The
:class:`EvaluationEngine` wraps any :class:`~repro.core.interface.Evaluator`
and adds the two production-scale layers from the ROADMAP:

* **Prefix-affinity parallel dispatch** — ``evaluate_many(schemes)``
  deduplicates, lints every new scheme *before* any work is paid for, then
  groups fresh schemes by longest shared prefix and submits each group —
  ordered shortest-first so later members resume hot state — to a sticky
  worker lane (one single-process pool per worker, each rebuilt from the
  picklable :class:`~repro.core.config.EvaluatorConfig`).  Completions are
  streamed with ``as_completed`` and merged with deterministic cost
  accounting.  Routing prefers the lane that last evaluated a scheme's
  prefix, so worker-local model LRUs stay hot across rounds.
* **Persistent result cache** — JSON files under ``cache_dir``, keyed by
  scheme identifier + the evaluator :meth:`fingerprint`, so repeated runs
  skip already-paid simulated GPU-hours across processes.  Bounded by a
  max-entries cap with oldest-first pruning (see ``repro cache``).
* **Shared snapshot store** — with ``config.snapshot_dir`` set on the
  wrapped evaluator, every worker lane consults the same disk-backed
  :class:`~repro.core.snapshots.ModelSnapshotStore`, so a prefix trained by
  one worker is resumed (not replayed) by every other worker, by recycled
  pools, and by later runs.

Determinism guarantee: a parallel run is *bit-identical* to a serial one.
Per-step RNG seeds are derived from stable digests of sub-scheme
identifiers (see :func:`~repro.core.evaluator.stable_hash`) and both the
trainer and the accuracy surrogate are stateless per call, so a worker that
full-replays a scheme from scratch produces exactly the floats a serial
evaluator gets by resuming a cached prefix (and vice versa — resuming a
disk snapshot is bit-identical to replaying).  Charged costs depend only on
the ``results`` history, not on model-LRU or snapshot state: the engine
merges worker results in input order using the same longest-paid-prefix
formula the serial path uses, summing the same ``step_costs`` floats in the
same order — scheduling and snapshots change wall-clock, never results or
charged costs.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..compression import StepReport
from ..obs import NULL_TRACER
from ..space.scheme import CompressionScheme
from .evaluator import EVAL_OVERHEAD_HOURS, EvaluationResult

#: default ResultCache size cap (one JSON file per evaluated scheme)
DEFAULT_CACHE_ENTRIES = 10_000


class WorkerError(RuntimeError):
    """One or more pool workers failed to evaluate schemes in a batch.

    Raised in the parent instead of the workers' bare (often unpicklable)
    tracebacks surfacing through ``multiprocessing``.  ``failures`` carries
    *every* failure observed in the batch — not just the first — so searches
    and journals can attribute all of them; the first failure's fields are
    mirrored as top-level attributes for convenience.
    """

    def __init__(self, failures: Sequence["_WorkerFailure"]):
        self.failures = list(failures)
        if not self.failures:
            raise ValueError("WorkerError needs at least one failure")
        first = self.failures[0]
        self.scheme_id = first.scheme_id
        self.cause_type = first.cause_type
        self.cause_message = first.cause_message
        self.worker_traceback = first.worker_traceback
        lines = [
            f"worker evaluation failed for {len(self.failures)} scheme(s):"
        ]
        for failure in self.failures:
            lines.append(
                f"  {failure.scheme_id!r}: {failure.cause_type}: {failure.cause_message}"
            )
        for failure in self.failures:
            if failure.worker_traceback:
                lines.append(f"--- worker traceback ({failure.scheme_id!r}) ---")
                lines.append(failure.worker_traceback)
        super().__init__("\n".join(lines))


# ---------------------------------------------------------------------------
# worker process side
# ---------------------------------------------------------------------------

#: per-process evaluator cache, keyed by the parent engine's config token.
#: A lane shared by several tenants (see :class:`LanePool`) keeps one warm
#: evaluator per distinct configuration, so same-config jobs share the
#: worker's in-memory model LRU — the in-process tier of cross-job dedup.
_WORKER_EVALUATORS: Dict[str, object] = {}

#: distinct evaluator configurations a single worker process keeps warm.
#: Evaluators hold a base model + an LRU of compressed models, so this is
#: a memory bound, not a correctness knob (evicted configs just rebuild).
WORKER_EVALUATOR_CACHE = 4


def _worker_evaluator(token: str, config) -> object:
    """Fetch (or lazily build) this process's evaluator for ``token``."""
    evaluator = _WORKER_EVALUATORS.get(token)
    if evaluator is None:
        while len(_WORKER_EVALUATORS) >= WORKER_EVALUATOR_CACHE:
            _WORKER_EVALUATORS.pop(next(iter(_WORKER_EVALUATORS)))
        evaluator = config.build()
        _WORKER_EVALUATORS[token] = evaluator
    return evaluator


def _worker_pid() -> int:
    """Identify (and force-start) a lane's worker process."""
    return os.getpid()


@dataclass
class _WorkerFailure:
    """Picklable capture of a worker-side exception (→ WorkerError in parent)."""

    scheme_id: str
    cause_type: str
    cause_message: str
    worker_traceback: str


@dataclass
class _GroupOutcome:
    """Picklable result of one prefix group: per-scheme outcomes + stats.

    ``outcomes`` aligns with the submitted group; entries are either
    :class:`~repro.core.evaluator.EvaluationResult` or :class:`_WorkerFailure`
    (a failure does not abort the rest of the group — later members simply
    replay from the deepest snapshot that does exist).
    """

    outcomes: List[object] = field(default_factory=list)
    steps_executed: int = 0
    snapshot_hits: int = 0
    snapshot_steps_saved: int = 0
    snapshot_foreign_hits: int = 0


def _worker_evaluate_group(
    token: str, config, schemes: Sequence[CompressionScheme]
) -> _GroupOutcome:
    """Evaluate one prefix group, shortest-first, in a single worker.

    Running the whole group in one process is what makes routing *sticky*:
    every member after the first resumes from the worker's in-memory model
    LRU (or the shared disk snapshot store), populated by its predecessors.
    The worker keeps its caches across tasks (one evaluator per config
    ``token`` — see :data:`_WORKER_EVALUATORS`); determinism makes prefix
    resume equivalent to full replay, and the parent recomputes charged
    costs at merge time.  Exceptions are captured per scheme so the parent
    can aggregate them into one typed :class:`WorkerError`.
    """
    evaluator = _worker_evaluator(token, config)
    steps0 = evaluator.steps_executed
    hits0 = evaluator.snapshot_hits
    saved0 = evaluator.snapshot_steps_saved
    foreign0 = getattr(evaluator, "snapshot_foreign_hits", 0)
    group = _GroupOutcome()
    for scheme in schemes:
        try:
            group.outcomes.append(evaluator.evaluate(scheme))
        except Exception as exc:
            group.outcomes.append(
                _WorkerFailure(
                    scheme.identifier, type(exc).__name__, str(exc),
                    traceback.format_exc(),
                )
            )
    group.steps_executed = evaluator.steps_executed - steps0
    group.snapshot_hits = evaluator.snapshot_hits - hits0
    group.snapshot_steps_saved = evaluator.snapshot_steps_saved - saved0
    group.snapshot_foreign_hits = (
        getattr(evaluator, "snapshot_foreign_hits", 0) - foreign0
    )
    return group


# ---------------------------------------------------------------------------
# prefix-affinity scheduling
# ---------------------------------------------------------------------------


def _common_prefix_length(a: CompressionScheme, b: CompressionScheme) -> int:
    """Number of leading strategies shared by two schemes."""
    shared = 0
    for sa, sb in zip(a.strategies, b.strategies):
        if sa.identifier != sb.identifier:
            break
        shared += 1
    return shared


def plan_prefix_groups(
    schemes: Sequence[CompressionScheme], max_group: Optional[int] = None
) -> List[List[CompressionScheme]]:
    """Partition a batch into prefix-sharing groups, shortest-first.

    Schemes connected by a non-empty shared prefix (directly or through a
    chain of siblings) land in the same group, ordered shortest-first so a
    group's later members resume the hot state its earlier members leave in
    the worker's model LRU / snapshot store.  Unrelated schemes become
    singleton groups to maximise parallelism.  ``max_group`` splits
    oversized components into contiguous chunks so one giant family cannot
    serialise the whole batch onto a single lane.  Deterministic: a pure
    function of the input order.
    """
    schemes = list(schemes)
    parent = list(range(len(schemes)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(len(schemes)):
        for j in range(i + 1, len(schemes)):
            if _common_prefix_length(schemes[i], schemes[j]) >= 1:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[max(ri, rj)] = min(ri, rj)

    components: Dict[int, List[int]] = {}
    for i in range(len(schemes)):
        components.setdefault(find(i), []).append(i)

    groups: List[List[CompressionScheme]] = []
    for root in sorted(components):
        members = sorted(components[root], key=lambda i: (schemes[i].length, i))
        ordered = [schemes[i] for i in members]
        if max_group is None or max_group <= 0:
            groups.append(ordered)
        else:
            for start in range(0, len(ordered), max_group):
                groups.append(ordered[start:start + max_group])
    return groups


# ---------------------------------------------------------------------------
# shared worker-lane pool
# ---------------------------------------------------------------------------


class LanePool:
    """A thread-safe pool of sticky worker lanes, shareable across engines.

    Each *lane* is a single-process :class:`ProcessPoolExecutor` whose worker
    keeps warm evaluators (one per config token) and model LRUs across
    tasks.  Historically every :class:`EvaluationEngine` owned its lanes
    privately and tore them down with the run; extracting the pool lets a
    long-lived server (``repro serve``) hand the *same* warm lanes to many
    concurrent engines — one per search job — so tenants share worker model
    LRUs and the disk snapshot tier instead of cold-starting per job.

    Thread safety: routing state (per-lane backlog, prefix→lane affinity)
    is guarded by one lock; executors themselves are thread-safe.  Two jobs
    racing for the same least-loaded lane is benign — routing affects only
    wall-clock, never results (see the module docstring's determinism
    guarantee).

    Lane death (a worker process killed mid-task) is survivable:
    :meth:`revive` replaces the broken executor with a fresh one and drops
    its affinity entries, so the lane rejoins the pool cold while other
    lanes — and other jobs — continue unaffected.  ``lane_restarts`` counts
    revivals.
    """

    def __init__(self, workers: int):
        if workers <= 0:
            raise ValueError("LanePool needs workers >= 1")
        self.workers = workers
        self.lane_restarts = 0
        self._lock = threading.Lock()
        self._executors: List[Optional[ProcessPoolExecutor]] = [None] * workers
        self._pending = [0] * workers
        self._affinity: Dict[str, int] = {}  # scheme identifier → lane index
        self._closed = False

    # -- routing -----------------------------------------------------------
    def route(self, group: Sequence[CompressionScheme], affinity: bool = True) -> int:
        """Pick a lane: deepest-known-prefix affinity, least-loaded fallback.

        The lane that most recently evaluated the group head's longest known
        prefix already holds (or recently held) that model in its LRU.  A
        lane more than one group behind the least-loaded lane forfeits its
        affinity — the snapshot store makes a cold lane only moderately
        slower, while an idle lane is free parallelism.
        """
        with self._lock:
            least = min(range(self.workers), key=lambda i: (self._pending[i], i))
            if not affinity:
                return least
            head = group[0]
            for length in range(head.length - 1, 0, -1):
                preferred = self._affinity.get(head.prefix(length).identifier)
                if preferred is not None:
                    if self._pending[preferred] > self._pending[least] + 1:
                        return least
                    return preferred
            return least

    def submit(self, lane: int, token: str, config, group: Sequence[CompressionScheme]):
        """Submit one prefix group to ``lane``; returns the future."""
        with self._lock:
            if self._closed:
                raise RuntimeError("LanePool is closed")
            executor = self._executors[lane]
            if executor is None:
                executor = ProcessPoolExecutor(max_workers=1)
                self._executors[lane] = executor
            self._pending[lane] += len(group)
        try:
            return executor.submit(_worker_evaluate_group, token, config, list(group))
        except BrokenProcessPool as exc:
            # The lane died while idle and the executor already flagged
            # itself broken, so submit fails synchronously.  Surface it as
            # a failed future so the caller's one lane-death path (revive +
            # typed WorkerError) handles both timings identically.
            future: Future = Future()
            future.set_exception(exc)
            return future

    def complete(
        self, lane: int, group: Sequence[CompressionScheme],
        evaluated: Sequence[str] = (),
    ) -> None:
        """Account a finished (or failed) group and record lane affinity."""
        with self._lock:
            self._pending[lane] -= len(group)
            for identifier in evaluated:
                self._affinity[identifier] = lane

    # -- lifecycle ---------------------------------------------------------
    def revive(self, lane: int) -> None:
        """Replace a broken lane executor; the lane rejoins the pool cold."""
        with self._lock:
            executor = self._executors[lane]
            self._executors[lane] = None
            self.lane_restarts += 1
            self._affinity = {
                key: value for key, value in self._affinity.items() if value != lane
            }
        if executor is not None:
            executor.shutdown(wait=False)

    def lane_pids(self) -> List[int]:
        """Worker PID per lane (starting any lane not yet spawned).

        Blocks behind in-flight groups on busy lanes; intended for startup
        warm-up, stats endpoints and fault-injection tests.
        """
        futures = []
        for lane in range(self.workers):
            with self._lock:
                if self._closed:
                    raise RuntimeError("LanePool is closed")
                executor = self._executors[lane]
                if executor is None:
                    executor = ProcessPoolExecutor(max_workers=1)
                    self._executors[lane] = executor
            futures.append(executor.submit(_worker_pid))
        return [future.result() for future in futures]

    def prestart(self) -> List[int]:
        """Spawn every lane's worker process up front (returns their PIDs).

        A long-lived server calls this once at boot, before job threads
        exist, so lane processes are forked from a quiet parent.
        """
        return self.lane_pids()

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.workers,
                "pending": list(self._pending),
                "affinity_entries": len(self._affinity),
                "lane_restarts": self.lane_restarts,
                "live_lanes": sum(1 for e in self._executors if e is not None),
            }

    def close(self) -> None:
        """Shut all lanes down (idempotent).  Affinity is forgotten."""
        with self._lock:
            executors = [e for e in self._executors if e is not None]
            self._executors = [None] * self.workers
            self._pending = [0] * self.workers
            self._affinity = {}
            self._closed = True
        for executor in executors:
            executor.shutdown(wait=True)

    def __enter__(self) -> "LanePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# persistent cache
# ---------------------------------------------------------------------------


class ResultCache:
    """On-disk evaluation results, keyed by evaluator fingerprint + scheme.

    Layout: ``cache_dir/<fingerprint[:16]>/<sha256(identifier)[:24]>.json``.
    One JSON file per result keeps writes atomic (tmp file + ``os.replace``)
    and lets concurrent runs share a directory without locking.  JSON floats
    round-trip exactly (``repr`` based), so a cache hit reproduces the
    original result bit-for-bit.

    ``max_entries`` caps the number of result files in this fingerprint's
    directory; when a put pushes past it, the oldest entries (file mtime,
    refreshed on every hit) are pruned first.  ``None`` disables the cap.

    One instance can be shared by several engines (the serve scheduler hands
    one cache to every job): ``written_ids`` tracks the identifiers *this*
    instance wrote, so a hit on an entry written elsewhere — another job,
    another process, a previous run — is detectable as a *foreign* hit, the
    result-level analogue of snapshot ``written_ids`` foreign-hit tracking.
    """

    def __init__(
        self,
        cache_dir,
        fingerprint: str,
        max_entries: Optional[int] = DEFAULT_CACHE_ENTRIES,
    ):
        self.root = Path(cache_dir) / fingerprint[:16]
        self.fingerprint = fingerprint
        self.max_entries = max_entries
        self.root.mkdir(parents=True, exist_ok=True)
        self._entry_count: Optional[int] = None  # lazy; maintained on put
        #: identifiers written through this instance (foreign-hit detection)
        self.written_ids: set = set()

    def _path(self, identifier: str) -> Path:
        digest = hashlib.sha256(identifier.encode("utf-8")).hexdigest()[:24]
        return self.root / f"{digest}.json"

    def get(self, scheme: CompressionScheme) -> Optional[EvaluationResult]:
        path = self._path(scheme.identifier)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("identifier") != scheme.identifier:  # digest collision
            return None
        try:
            os.utime(path)  # mark as recently used for oldest-first pruning
        except OSError:
            pass
        return EvaluationResult(
            scheme=scheme,
            params=payload["params"],
            flops=payload["flops"],
            accuracy=payload["accuracy"],
            base_params=payload["base_params"],
            base_flops=payload["base_flops"],
            base_accuracy=payload["base_accuracy"],
            cost=payload["cost"],
            step_reports=[StepReport(**r) for r in payload["step_reports"]],
            step_costs=list(payload["step_costs"]),
            latency_ms=payload.get("latency_ms", 0.0),
            workspace_bytes_peak=payload.get("workspace_bytes_peak", 0),
        )

    def put(self, result: EvaluationResult) -> None:
        payload = {
            "identifier": result.scheme.identifier,
            "params": result.params,
            "flops": result.flops,
            "accuracy": result.accuracy,
            "base_params": result.base_params,
            "base_flops": result.base_flops,
            "base_accuracy": result.base_accuracy,
            "cost": result.cost,  # informational; hits are re-charged at zero
            "step_costs": result.step_costs,
            "step_reports": [asdict(r) for r in result.step_reports],
            "latency_ms": result.latency_ms,
            "workspace_bytes_peak": result.workspace_bytes_peak,
        }
        self.written_ids.add(result.scheme.identifier)
        path = self._path(result.scheme.identifier)
        existed = path.exists()
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if not existed:
            if self._entry_count is None:
                self._entry_count = _count_results(self.root)
            else:
                self._entry_count += 1
            if self.max_entries is not None and self._entry_count > self.max_entries:
                removed = _prune_dir(self.root, self.max_entries, keep=path)
                self._entry_count -= removed

    def stats(self) -> dict:
        """Point-in-time accounting for this fingerprint's cache directory."""
        return _dir_stats(self.root)


# -- cache maintenance (shared by ResultCache and the `repro cache` CLI) ----


def _result_entries(root: Path):
    """(mtime, size, path) for every result JSON under ``root``, oldest first."""
    entries = []
    try:
        names = os.listdir(root)
    except OSError:
        return []
    for name in names:
        if not name.endswith(".json"):
            continue
        path = Path(root) / name
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, stat.st_size, path))
    entries.sort(key=lambda e: (e[0], e[2].name))
    return entries


def _count_results(root: Path) -> int:
    try:
        return sum(1 for name in os.listdir(root) if name.endswith(".json"))
    except OSError:
        return 0


def _dir_stats(root: Path) -> dict:
    entries = _result_entries(root)
    return {
        "root": str(root),
        "entries": len(entries),
        "bytes": sum(size for _, size, _ in entries),
    }


def _prune_dir(root: Path, max_entries: int, keep: Optional[Path] = None) -> int:
    """Delete oldest result files until at most ``max_entries`` remain.

    ``keep`` (the entry just written) is never deleted.  Returns the number
    of files actually removed.
    """
    entries = _result_entries(root)
    removed = 0
    excess = len(entries) - max(0, max_entries)
    for _, _, path in entries:
        if excess <= 0:
            break
        if keep is not None and path == keep:
            continue
        try:
            path.unlink()
        except OSError:
            continue
        removed += 1
        excess -= 1
    return removed


def cache_stats(cache_dir) -> dict:
    """Aggregate accounting for every fingerprint directory under ``cache_dir``."""
    cache_dir = Path(cache_dir)
    fingerprints = []
    if cache_dir.is_dir():
        for child in sorted(cache_dir.iterdir()):
            if child.is_dir():
                fingerprints.append(_dir_stats(child))
    return {
        "cache_dir": str(cache_dir),
        "fingerprints": fingerprints,
        "entries": sum(f["entries"] for f in fingerprints),
        "bytes": sum(f["bytes"] for f in fingerprints),
    }


def prune_cache(cache_dir, max_entries: int) -> dict:
    """Prune every fingerprint directory to ``max_entries`` results, oldest first.

    The cap applies *per fingerprint* (matching ``ResultCache``'s own cap, so
    one busy configuration cannot starve another's cache).  Returns the
    post-prune :func:`cache_stats` with a ``removed`` total added.
    """
    cache_dir = Path(cache_dir)
    removed = 0
    if cache_dir.is_dir():
        for child in sorted(cache_dir.iterdir()):
            if child.is_dir():
                removed += _prune_dir(child, max_entries)
    stats = cache_stats(cache_dir)
    stats["removed"] = removed
    return stats


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


class EvaluationEngine:
    """Drop-in :class:`~repro.core.interface.Evaluator` that batches,
    parallelises and persistently caches an underlying evaluator.

    ``workers=0`` evaluates serially in-process (still gaining dedup, batch
    linting and the disk cache); ``workers=N`` fans fresh evaluations out to
    ``N`` single-process worker *lanes*.  Parallel dispatch needs
    ``evaluator.config`` to be rebuildable in a fresh process (registry
    ``model_name`` + picklable task/datasets) and raises ``ValueError`` at
    construction otherwise.

    ``prefix_affinity=True`` (default) groups fresh schemes by shared prefix
    and routes each group to the lane that last evaluated its prefix, so
    worker model LRUs stay hot; ``False`` restores the flat round-robin
    dispatch (one scheme per task, least-loaded lane) — same results, more
    replayed steps.  ``cache_entries`` caps the persistent result cache
    (``None`` → :data:`DEFAULT_CACHE_ENTRIES`).

    ``lane_pool`` accepts a shared :class:`LanePool` instead of private
    lanes: the engine borrows the pool's lanes (``workers`` is taken from
    the pool) and :meth:`close` leaves the pool running — this is how a
    multi-tenant server runs one engine per job on one warm lane set.
    Without it, the engine creates a private pool on first parallel batch
    and tears it down on :meth:`close`, exactly as before.

    All other attribute access falls through to the wrapped evaluator, so
    search strategies can treat an engine exactly like the evaluator it
    wraps (``task``, ``pareto_results``, ``base_accuracy``, ...).
    """

    def __init__(
        self,
        evaluator,
        workers: int = 0,
        cache_dir=None,
        cache_entries: Optional[int] = None,
        prefix_affinity: bool = True,
        lane_pool: Optional[LanePool] = None,
    ):
        if lane_pool is not None:
            workers = lane_pool.workers
        elif workers < 0:
            raise ValueError("workers must be >= 0")
        self.evaluator = evaluator
        self.workers = workers
        self.prefix_affinity = prefix_affinity
        if workers > 0:
            config = getattr(evaluator, "config", None)
            if config is None or not config.is_buildable:
                raise ValueError(
                    "workers > 0 needs an evaluator whose EvaluatorConfig can be "
                    "rebuilt in a fresh process: a registry model_name plus a "
                    "picklable task (surrogate) or datasets (training)"
                )
        self.cache = (
            ResultCache(
                cache_dir,
                evaluator.fingerprint(),
                max_entries=DEFAULT_CACHE_ENTRIES if cache_entries is None else cache_entries,
            )
            if cache_dir
            else None
        )
        self.cache_hits = 0
        #: disk hits on entries this engine's cache instance did not write —
        #: cross-job/cross-run result dedup (mirrors snapshot_foreign_hits)
        self.cache_foreign_hits = 0
        self.fresh_evaluations = 0
        self.worker_failures = 0
        # worker-side accumulators (the wrapped evaluator counts its own)
        self._worker_steps = 0
        self._worker_snapshot_hits = 0
        self._worker_snapshot_steps_saved = 0
        self._worker_snapshot_foreign_hits = 0
        #: shared with the wrapped evaluator via obs.attach_tracer
        self.tracer = getattr(evaluator, "tracer", NULL_TRACER)
        self._pool = lane_pool
        self._owns_pool = lane_pool is None
        self._worker_token: Optional[str] = None

    # -- engine-wide prefix-reuse stats ------------------------------------
    @property
    def steps_replayed(self) -> int:
        """Training/surgery steps actually executed (serial + all lanes)."""
        return getattr(self.evaluator, "steps_executed", 0) + self._worker_steps

    @property
    def snapshot_hits(self) -> int:
        """Disk-snapshot resumes observed across the serial path and lanes."""
        return getattr(self.evaluator, "snapshot_hits", 0) + self._worker_snapshot_hits

    @property
    def snapshot_steps_saved(self) -> int:
        """Prefix steps skipped thanks to disk snapshots (serial + lanes)."""
        return (
            getattr(self.evaluator, "snapshot_steps_saved", 0)
            + self._worker_snapshot_steps_saved
        )

    @property
    def snapshot_foreign_hits(self) -> int:
        """Disk-snapshot resumes of prefixes *another* store instance wrote.

        In a multi-tenant server this counts cross-job (and cross-run)
        prefix dedup: job B resuming a prefix that job A trained and
        snapshotted.  Same-instance resumes count in ``snapshot_hits`` only.
        """
        return (
            getattr(self.evaluator, "snapshot_foreign_hits", 0)
            + self._worker_snapshot_foreign_hits
        )

    # -- Evaluator protocol ------------------------------------------------
    @property
    def results(self) -> Dict[str, EvaluationResult]:
        return self.evaluator.results

    @property
    def total_cost(self) -> float:
        return self.evaluator.total_cost

    @property
    def evaluation_count(self) -> int:
        return self.evaluator.evaluation_count

    def fingerprint(self) -> str:
        return self.evaluator.fingerprint()

    def evaluate(self, scheme: CompressionScheme) -> EvaluationResult:
        return self.evaluate_many([scheme])[0]

    def evaluate_many(
        self, schemes: Sequence[CompressionScheme]
    ) -> List[EvaluationResult]:
        """Dedup → disk-cache lookup → lint → dispatch → ordered merge.

        Disk hits are adopted into the evaluator's ``results`` at *zero*
        charged cost (like in-memory hits, they pay no simulated GPU-hours
        and do not bump ``evaluation_count``).  Fresh schemes are linted
        up front — the first error aborts the batch before any evaluation —
        then evaluated and merged in input order, so charged costs are
        identical to a serial run.
        """
        schemes = list(schemes)
        unique: Dict[str, CompressionScheme] = {}
        for scheme in schemes:
            unique.setdefault(scheme.identifier, scheme)

        tracer = self.tracer
        batch_span = (
            tracer.start("engine.batch", submitted=len(schemes), unique=len(unique))
            if tracer.enabled
            else None
        )
        try:
            evaluator = self.evaluator
            fresh: List[CompressionScheme] = []
            memory_hits = disk_hits = 0
            for scheme in unique.values():
                if scheme.identifier in evaluator.results:
                    memory_hits += 1
                    if tracer.enabled:
                        tracer.event("cache_hit", scheme=scheme.identifier, source="memory")
                        tracer.metrics.counter("cache_hits.memory").inc()
                    continue
                cached = self.cache.get(scheme) if self.cache else None
                if cached is not None:
                    evaluator.results[scheme.identifier] = cached
                    self.cache_hits += 1
                    disk_hits += 1
                    foreign = scheme.identifier not in self.cache.written_ids
                    if foreign:
                        self.cache_foreign_hits += 1
                    if tracer.enabled:
                        tracer.event(
                            "cache_hit", scheme=scheme.identifier, source="disk",
                            foreign=foreign,
                        )
                        tracer.metrics.counter("cache_hits.disk").inc()
                        if foreign:
                            tracer.metrics.counter("cache_hits.foreign").inc()
                else:
                    fresh.append(scheme)

            if batch_span is not None:
                batch_span.set(
                    memory_hits=memory_hits, disk_hits=disk_hits, fresh=len(fresh)
                )

            if evaluator.lint_schemes:
                for scheme in fresh:
                    if not scheme.is_empty:
                        evaluator.lint(scheme)

            if fresh:
                self._run_fresh(fresh)
            return [evaluator.results[scheme.identifier] for scheme in schemes]
        finally:
            if batch_span is not None:
                tracer.finish(batch_span)

    # -- dispatch ----------------------------------------------------------
    def _run_fresh(self, fresh: List[CompressionScheme]) -> None:
        evaluator = self.evaluator
        if self.workers == 0 or len(fresh) == 1:
            # Serial path: the wrapped evaluator does its own recording and
            # canonical charging (linting already happened above).
            for scheme in fresh:
                evaluator._evaluate_recorded(scheme)
                self.fresh_evaluations += 1
                if self.cache:
                    self.cache.put(evaluator.results[scheme.identifier])
            return

        outcomes = self._dispatch(fresh)

        # Merge in input order with the serial charging formula: overhead +
        # the step costs beyond the longest prefix already in `results`.
        # Identical float-addition order to SchemeEvaluator._charge.  The
        # scheduler only reorders *execution*; merging strictly in input
        # order keeps charged costs bit-identical to a serial run.
        tracer = self.tracer
        failures = [
            outcomes[s.identifier]
            for s in fresh
            if isinstance(outcomes[s.identifier], _WorkerFailure)
        ]
        if failures:
            self.worker_failures += len(failures)
            if tracer.enabled:
                for failure in failures:
                    tracer.event(
                        "worker_failed",
                        scheme=failure.scheme_id,
                        error=f"{failure.cause_type}: {failure.cause_message}",
                    )
                    tracer.metrics.counter("worker_failures").inc()
            raise WorkerError(failures)

        for scheme in fresh:
            result = outcomes[scheme.identifier]
            paid = evaluator._longest_paid_prefix(scheme)
            cost = EVAL_OVERHEAD_HOURS
            for step_cost in result.step_costs[paid:]:
                cost += step_cost
            result.cost = cost
            if tracer.enabled:
                # The wall-time of the work lives in the enclosing
                # engine.batch span; this span exists to attribute the
                # charged cost float exactly once, mirroring the serial path.
                span = tracer.start(
                    "evaluate", scheme=scheme.identifier, steps=scheme.length, parallel=True
                )
                span.add_cost(cost)
                span.set(params=result.params, pr=result.pr, accuracy=result.accuracy)
                if result.workspace_bytes_peak:
                    span.set(workspace_bytes_peak=result.workspace_bytes_peak)
                tracer.finish(span)
                tracer.metrics.counter("evaluations.fresh").inc()
            if result.workspace_bytes_peak > evaluator.workspace_bytes_peak:
                # Workers measured the scratch footprint in their own
                # process; fold the max back so prediction_drift() and the
                # report see engine runs too.
                evaluator.workspace_bytes_peak = result.workspace_bytes_peak
                if tracer.enabled:
                    tracer.metrics.gauge("nn.workspace_bytes_peak").set(
                        float(result.workspace_bytes_peak)
                    )
            evaluator.results[scheme.identifier] = result
            evaluator.total_cost += cost
            evaluator.evaluation_count += 1
            self.fresh_evaluations += 1
            if self.cache:
                self.cache.put(result)

    def _dispatch(self, fresh: List[CompressionScheme]) -> Dict[str, object]:
        """Submit fresh schemes to worker lanes; stream completions back.

        With prefix affinity on, the batch is partitioned by
        :func:`plan_prefix_groups` (chunked so the largest family cannot
        monopolise a lane) and each group runs as *one* task on its routed
        lane — same process end to end, so later members resume earlier
        members' models.  With affinity off, every scheme is its own
        singleton group on the least-loaded lane (flat dispatch).  Returns
        ``{identifier: EvaluationResult | _WorkerFailure}``; completion
        *order* is timing-dependent but the caller merges in input order.

        A lane dying mid-group (worker killed, OOM, unpicklable payload)
        does **not** propagate the raw executor error: the dead group's
        schemes become typed :class:`_WorkerFailure` outcomes — surfaced to
        the caller as one :class:`WorkerError` — and the lane is revived so
        concurrent engines sharing the pool continue unaffected.
        """
        tracer = self.tracer
        if self.prefix_affinity:
            max_group = -(-len(fresh) // self.workers)  # ceil; balance lanes
            groups = plan_prefix_groups(fresh, max_group=max_group)
        else:
            groups = [[scheme] for scheme in fresh]
        if tracer.enabled:
            span = tracer.start(
                "engine.schedule",
                fresh=len(fresh),
                groups=len(groups),
                affinity=self.prefix_affinity,
            )
            tracer.finish(span)

        pool = self._pool_handle()
        token = self._token()
        config = self.evaluator.config
        pending: Dict[object, tuple] = {}  # future → (group, lane index)
        for group in groups:
            lane = pool.route(group, affinity=self.prefix_affinity)
            pending[pool.submit(lane, token, config, group)] = (group, lane)

        outcomes: Dict[str, object] = {}
        try:
            while pending:
                done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    group, lane = pending.pop(future)
                    try:
                        result = future.result()
                    except Exception as exc:
                        # Lane death or an infra failure outside the worker's
                        # per-scheme capture.  Convert to typed failures; a
                        # broken executor is replaced so other jobs sharing
                        # the pool keep their lanes.
                        if isinstance(exc, BrokenProcessPool):
                            pool.revive(lane)
                            cause = "WorkerLaneDied"
                        else:
                            cause = type(exc).__name__
                        pool.complete(lane, group)
                        for scheme in group:
                            outcomes[scheme.identifier] = _WorkerFailure(
                                scheme.identifier, cause, str(exc), ""
                            )
                        continue
                    evaluated = [
                        scheme.identifier
                        for scheme, outcome in zip(group, result.outcomes)
                        if not isinstance(outcome, _WorkerFailure)
                    ]
                    pool.complete(lane, group, evaluated)
                    for scheme, outcome in zip(group, result.outcomes):
                        outcomes[scheme.identifier] = outcome
                    self._worker_steps += result.steps_executed
                    self._worker_snapshot_hits += result.snapshot_hits
                    self._worker_snapshot_steps_saved += result.snapshot_steps_saved
                    self._worker_snapshot_foreign_hits += result.snapshot_foreign_hits
                    if tracer.enabled and result.snapshot_hits:
                        tracer.metrics.counter("engine.snapshot_hits").inc(
                            result.snapshot_hits
                        )
        except BaseException:
            for future in pending:
                future.cancel()
            for group, lane in pending.values():
                pool.complete(lane, group)
            raise
        return outcomes

    def _pool_handle(self) -> LanePool:
        if self._pool is None:
            self._pool = LanePool(self.workers)
        return self._pool

    def _token(self) -> str:
        """Stable key for this engine's worker-side evaluator cache.

        Covers the evaluator fingerprint *plus* the config knobs that are
        excluded from it but change worker-side behaviour (snapshot store
        location/budget, lint toggle, static budget caps) — two engines get
        the same token iff a warm worker evaluator is interchangeable
        between them.
        """
        if self._worker_token is None:
            config = self.evaluator.config
            budget = getattr(config, "budget", None)
            extras = {
                "snapshot_dir": str(config.snapshot_dir) if config.snapshot_dir else None,
                "snapshot_budget_mb": config.snapshot_budget_mb,
                "lint": config.lint_schemes,
                "budget": budget.to_payload() if budget is not None else None,
            }
            blob = self.evaluator.fingerprint() + json.dumps(
                extras, sort_keys=True, default=repr
            )
            self._worker_token = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
        return self._worker_token

    # -- lifecycle ---------------------------------------------------------
    @property
    def lane_pool(self) -> Optional[LanePool]:
        """The pool lanes run on (``None`` until the first parallel batch)."""
        return self._pool

    def close(self) -> None:
        """Release worker lanes (idempotent; a later batch re-creates them).

        A private pool is shut down and its affinity forgotten — fresh lanes
        have cold LRUs, and only the disk snapshot store survives.  A
        *borrowed* pool (``lane_pool=`` at construction) is left running for
        its other tenants; closing it is its owner's job.
        """
        if self._pool is not None and self._owns_pool:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- transparency ------------------------------------------------------
    def __getattr__(self, name: str):
        # Fallback for evaluator surface beyond the protocol (task,
        # pareto_results, base_accuracy, ...).  Only called for attributes
        # not found on the engine itself.
        return getattr(self.evaluator, name)
