"""Batched parallel evaluation engine with a persistent cross-run cache.

AutoMC spends essentially all of its wall-clock inside scheme evaluations
(the paper budgets 3 GPU-days of them), but the evaluators themselves are
strictly serial and their result cache dies with the process.  The
:class:`EvaluationEngine` wraps any :class:`~repro.core.interface.Evaluator`
and adds the two production-scale layers from the ROADMAP:

* **Batched parallel dispatch** — ``evaluate_many(schemes)`` deduplicates,
  lints every new scheme *before* any work is paid for, fans fresh
  evaluations out across a ``multiprocessing`` pool (each worker rebuilds an
  identical evaluator from the picklable
  :class:`~repro.core.config.EvaluatorConfig`), and merges results back with
  deterministic cost accounting.
* **Persistent result cache** — JSON files under ``cache_dir``, keyed by
  scheme identifier + the evaluator :meth:`fingerprint`, so repeated runs
  skip already-paid simulated GPU-hours across processes.

Determinism guarantee: a parallel run is *bit-identical* to a serial one.
Per-step RNG seeds are derived from stable digests of sub-scheme
identifiers (see :func:`~repro.core.evaluator.stable_hash`) and both the
trainer and the accuracy surrogate are stateless per call, so a worker that
full-replays a scheme from scratch produces exactly the floats a serial
evaluator gets by resuming a cached prefix.  Charged costs depend only on
the ``results`` history, not on model-LRU state: the engine merges worker
results in input order using the same longest-paid-prefix formula the
serial path uses, summing the same ``step_costs`` floats in the same order.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..compression import StepReport
from ..obs import NULL_TRACER
from ..space.scheme import CompressionScheme
from .evaluator import EVAL_OVERHEAD_HOURS, EvaluationResult


class WorkerError(RuntimeError):
    """A pool worker failed to evaluate a scheme.

    Raised in the parent instead of the worker's bare (often unpicklable)
    traceback surfacing through ``multiprocessing``.  Carries the scheme
    identifier so searches and journals can attribute the failure, plus the
    original exception type/message and the worker-side traceback text.
    """

    def __init__(
        self,
        scheme_id: str,
        cause_type: str,
        cause_message: str,
        worker_traceback: str = "",
    ):
        self.scheme_id = scheme_id
        self.cause_type = cause_type
        self.cause_message = cause_message
        self.worker_traceback = worker_traceback
        message = f"worker evaluation of scheme {scheme_id!r} failed: {cause_type}: {cause_message}"
        if worker_traceback:
            message += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(message)


# ---------------------------------------------------------------------------
# worker process side
# ---------------------------------------------------------------------------

_WORKER_EVALUATOR = None


def _init_worker(config) -> None:
    """Pool initializer: rebuild the evaluator once per worker process."""
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = config.build()


@dataclass
class _WorkerFailure:
    """Picklable capture of a worker-side exception (→ WorkerError in parent)."""

    scheme_id: str
    cause_type: str
    cause_message: str
    worker_traceback: str


def _worker_evaluate(scheme: CompressionScheme):
    """Evaluate one scheme in a worker.  The worker keeps its own result /
    model caches across tasks; determinism makes prefix-resume equivalent to
    full replay, and the parent recomputes charged costs at merge time.
    Exceptions are captured as :class:`_WorkerFailure` so the parent can
    raise a typed :class:`WorkerError` instead of a bare pool traceback."""
    try:
        return _WORKER_EVALUATOR.evaluate(scheme)
    except Exception as exc:
        return _WorkerFailure(
            scheme.identifier, type(exc).__name__, str(exc), traceback.format_exc()
        )


# ---------------------------------------------------------------------------
# persistent cache
# ---------------------------------------------------------------------------


class ResultCache:
    """On-disk evaluation results, keyed by evaluator fingerprint + scheme.

    Layout: ``cache_dir/<fingerprint[:16]>/<sha256(identifier)[:24]>.json``.
    One JSON file per result keeps writes atomic (tmp file + ``os.replace``)
    and lets concurrent runs share a directory without locking.  JSON floats
    round-trip exactly (``repr`` based), so a cache hit reproduces the
    original result bit-for-bit.
    """

    def __init__(self, cache_dir, fingerprint: str):
        self.root = Path(cache_dir) / fingerprint[:16]
        self.fingerprint = fingerprint
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, identifier: str) -> Path:
        digest = hashlib.sha256(identifier.encode("utf-8")).hexdigest()[:24]
        return self.root / f"{digest}.json"

    def get(self, scheme: CompressionScheme) -> Optional[EvaluationResult]:
        path = self._path(scheme.identifier)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("identifier") != scheme.identifier:  # digest collision
            return None
        return EvaluationResult(
            scheme=scheme,
            params=payload["params"],
            flops=payload["flops"],
            accuracy=payload["accuracy"],
            base_params=payload["base_params"],
            base_flops=payload["base_flops"],
            base_accuracy=payload["base_accuracy"],
            cost=payload["cost"],
            step_reports=[StepReport(**r) for r in payload["step_reports"]],
            step_costs=list(payload["step_costs"]),
        )

    def put(self, result: EvaluationResult) -> None:
        payload = {
            "identifier": result.scheme.identifier,
            "params": result.params,
            "flops": result.flops,
            "accuracy": result.accuracy,
            "base_params": result.base_params,
            "base_flops": result.base_flops,
            "base_accuracy": result.base_accuracy,
            "cost": result.cost,  # informational; hits are re-charged at zero
            "step_costs": result.step_costs,
            "step_reports": [asdict(r) for r in result.step_reports],
        }
        path = self._path(result.scheme.identifier)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


class EvaluationEngine:
    """Drop-in :class:`~repro.core.interface.Evaluator` that batches,
    parallelises and persistently caches an underlying evaluator.

    ``workers=0`` evaluates serially in-process (still gaining dedup, batch
    linting and the disk cache); ``workers=N`` fans fresh evaluations out to
    ``N`` processes.  Parallel dispatch needs ``evaluator.config`` to be
    rebuildable in a fresh process (registry ``model_name`` + picklable
    task/datasets) and raises ``ValueError`` at construction otherwise.

    All other attribute access falls through to the wrapped evaluator, so
    search strategies can treat an engine exactly like the evaluator it
    wraps (``task``, ``pareto_results``, ``base_accuracy``, ...).
    """

    def __init__(self, evaluator, workers: int = 0, cache_dir=None):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.evaluator = evaluator
        self.workers = workers
        if workers > 0:
            config = getattr(evaluator, "config", None)
            if config is None or not config.is_buildable:
                raise ValueError(
                    "workers > 0 needs an evaluator whose EvaluatorConfig can be "
                    "rebuilt in a fresh process: a registry model_name plus a "
                    "picklable task (surrogate) or datasets (training)"
                )
        self.cache = ResultCache(cache_dir, evaluator.fingerprint()) if cache_dir else None
        self.cache_hits = 0
        self.fresh_evaluations = 0
        self.worker_failures = 0
        #: shared with the wrapped evaluator via obs.attach_tracer
        self.tracer = getattr(evaluator, "tracer", NULL_TRACER)
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- Evaluator protocol ------------------------------------------------
    @property
    def results(self) -> Dict[str, EvaluationResult]:
        return self.evaluator.results

    @property
    def total_cost(self) -> float:
        return self.evaluator.total_cost

    @property
    def evaluation_count(self) -> int:
        return self.evaluator.evaluation_count

    def fingerprint(self) -> str:
        return self.evaluator.fingerprint()

    def evaluate(self, scheme: CompressionScheme) -> EvaluationResult:
        return self.evaluate_many([scheme])[0]

    def evaluate_many(
        self, schemes: Sequence[CompressionScheme]
    ) -> List[EvaluationResult]:
        """Dedup → disk-cache lookup → lint → dispatch → ordered merge.

        Disk hits are adopted into the evaluator's ``results`` at *zero*
        charged cost (like in-memory hits, they pay no simulated GPU-hours
        and do not bump ``evaluation_count``).  Fresh schemes are linted
        up front — the first error aborts the batch before any evaluation —
        then evaluated and merged in input order, so charged costs are
        identical to a serial run.
        """
        schemes = list(schemes)
        unique: Dict[str, CompressionScheme] = {}
        for scheme in schemes:
            unique.setdefault(scheme.identifier, scheme)

        tracer = self.tracer
        batch_span = (
            tracer.start("engine.batch", submitted=len(schemes), unique=len(unique))
            if tracer.enabled
            else None
        )
        try:
            evaluator = self.evaluator
            fresh: List[CompressionScheme] = []
            memory_hits = disk_hits = 0
            for scheme in unique.values():
                if scheme.identifier in evaluator.results:
                    memory_hits += 1
                    if tracer.enabled:
                        tracer.event("cache_hit", scheme=scheme.identifier, source="memory")
                        tracer.metrics.counter("cache_hits.memory").inc()
                    continue
                cached = self.cache.get(scheme) if self.cache else None
                if cached is not None:
                    evaluator.results[scheme.identifier] = cached
                    self.cache_hits += 1
                    disk_hits += 1
                    if tracer.enabled:
                        tracer.event("cache_hit", scheme=scheme.identifier, source="disk")
                        tracer.metrics.counter("cache_hits.disk").inc()
                else:
                    fresh.append(scheme)

            if batch_span is not None:
                batch_span.set(
                    memory_hits=memory_hits, disk_hits=disk_hits, fresh=len(fresh)
                )

            if evaluator.lint_schemes:
                for scheme in fresh:
                    if not scheme.is_empty:
                        evaluator.lint(scheme)

            if fresh:
                self._run_fresh(fresh)
            return [evaluator.results[scheme.identifier] for scheme in schemes]
        finally:
            if batch_span is not None:
                tracer.finish(batch_span)

    # -- dispatch ----------------------------------------------------------
    def _run_fresh(self, fresh: List[CompressionScheme]) -> None:
        evaluator = self.evaluator
        if self.workers == 0 or len(fresh) == 1:
            # Serial path: the wrapped evaluator does its own recording and
            # canonical charging (linting already happened above).
            for scheme in fresh:
                evaluator._evaluate_recorded(scheme)
                self.fresh_evaluations += 1
                if self.cache:
                    self.cache.put(evaluator.results[scheme.identifier])
            return

        raw = list(self._pool_handle().map(_worker_evaluate, fresh, chunksize=1))
        # Merge in input order with the serial charging formula: overhead +
        # the step costs beyond the longest prefix already in `results`.
        # Identical float-addition order to SchemeEvaluator._charge.
        tracer = self.tracer
        for scheme, result in zip(fresh, raw):
            if isinstance(result, _WorkerFailure):
                self.worker_failures += 1
                if tracer.enabled:
                    tracer.event(
                        "worker_failed",
                        scheme=result.scheme_id,
                        error=f"{result.cause_type}: {result.cause_message}",
                    )
                    tracer.metrics.counter("worker_failures").inc()
                raise WorkerError(
                    result.scheme_id,
                    result.cause_type,
                    result.cause_message,
                    result.worker_traceback,
                )
            paid = evaluator._longest_paid_prefix(scheme)
            cost = EVAL_OVERHEAD_HOURS
            for step_cost in result.step_costs[paid:]:
                cost += step_cost
            result.cost = cost
            if tracer.enabled:
                # The wall-time of the work lives in the enclosing
                # engine.batch span; this span exists to attribute the
                # charged cost float exactly once, mirroring the serial path.
                span = tracer.start(
                    "evaluate", scheme=scheme.identifier, steps=scheme.length, parallel=True
                )
                span.add_cost(cost)
                span.set(params=result.params, pr=result.pr, accuracy=result.accuracy)
                tracer.finish(span)
                tracer.metrics.counter("evaluations.fresh").inc()
            evaluator.results[scheme.identifier] = result
            evaluator.total_cost += cost
            evaluator.evaluation_count += 1
            self.fresh_evaluations += 1
            if self.cache:
                self.cache.put(result)

    def _pool_handle(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self.evaluator.config,),
            )
        return self._pool

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent; a later batch re-creates it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- transparency ------------------------------------------------------
    def __getattr__(self, name: str):
        # Fallback for evaluator surface beyond the protocol (task,
        # pareto_results, base_accuracy, ...).  Only called for attributes
        # not found on the engine itself.
        return getattr(self.evaluator, name)
