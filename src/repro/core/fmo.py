"""F_mo — the multi-objective step evaluator of §3.3.2 (Figure 3).

Given an evaluated scheme ``seq`` and a candidate next strategy ``s``, F_mo
predicts the *step effects* (AR_step, PR_step): the relative accuracy and
parameter changes that appending ``s`` would cause.  The scheme is encoded
from the high-level strategy embeddings of Algorithm 1 (mean over the
sequence plus the most recent strategy) together with a small state vector;
the candidate contributes its own embedding.

Observed transitions are kept in a replay buffer; after every search round
the network is re-fit for a few epochs on the whole buffer (Eq. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..knowledge.embedding import StrategyEmbeddings
from ..nn import Adam, Linear, Module, Tensor
from ..space.scheme import CompressionScheme

STATE_FEATURES = 4  # accuracy ratio, params ratio, length/L, nominal PR

#: AR_step targets are O(0.01) while PR_step targets are O(0.1-0.4); without
#: rescaling, the shared MSE objective lets the AR head under-train and the
#: accuracy projections that drive Eq. 4 stay noise.  Targets are stored
#: scaled and predictions are unscaled on the way out.
AR_TARGET_SCALE = 10.0


class FmoNetwork(Module):
    """MLP over [seq-mean ; seq-last ; candidate ; state] -> (AR_step, PR_step)."""

    def __init__(self, embedding_dim: int, hidden: int = 64, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        input_dim = 3 * embedding_dim + STATE_FEATURES
        self.fc1 = Linear(input_dim, hidden, rng=rng)
        self.fc2 = Linear(hidden, hidden // 2, rng=rng)
        self.out = Linear(hidden // 2, 2, rng=rng)

    def forward(self, features: Tensor) -> Tensor:
        x = self.fc1(features).relu()
        x = self.fc2(x).relu()
        return self.out(x)


@dataclass
class FmoObservation:
    """One training example for Eq. 5."""

    features: np.ndarray
    ar_step: float
    pr_step: float


class Fmo:
    """Predictor + replay buffer + online trainer."""

    def __init__(
        self,
        embeddings: StrategyEmbeddings,
        max_length: int = 5,
        learning_rate: float = 1e-3,
        seed: int = 0,
    ):
        self.embeddings = embeddings
        self.max_length = max_length
        self.network = FmoNetwork(embeddings.dim, seed=seed)
        self.optimizer = Adam(self.network.parameters(), lr=learning_rate)
        self.buffer: List[FmoObservation] = []
        self.loss_history: List[float] = []
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def encode_sequence(self, scheme: CompressionScheme) -> np.ndarray:
        """[mean embedding ; last embedding] of the scheme's strategies."""
        dim = self.embeddings.dim
        if scheme.is_empty:
            return np.zeros(2 * dim)
        vectors = np.stack([self.embeddings.of(s) for s in scheme])
        return np.concatenate([vectors.mean(axis=0), vectors[-1]])

    @staticmethod
    def state_features(
        accuracy_ratio: float, params_ratio: float, length: int, nominal_pr: float,
        max_length: int = 5,
    ) -> np.ndarray:
        return np.array([accuracy_ratio, params_ratio, length / max_length, nominal_pr])

    def build_features(
        self,
        scheme: CompressionScheme,
        state: np.ndarray,
        candidate_indices: np.ndarray,
    ) -> np.ndarray:
        """Feature matrix for many candidates appended to one scheme."""
        seq_part = self.encode_sequence(scheme)
        candidates = self.embeddings.table[candidate_indices]
        n = len(candidate_indices)
        left = np.tile(np.concatenate([seq_part, state]), (n, 1))
        # layout: [seq-mean ; seq-last ; state ; candidate] — reorder so the
        # candidate block is contiguous for the network input.
        return np.concatenate([left[:, : seq_part.size], candidates, left[:, seq_part.size :]], axis=1)

    # ------------------------------------------------------------------ #
    def predict(
        self,
        scheme: CompressionScheme,
        state: np.ndarray,
        candidate_indices: np.ndarray,
    ) -> np.ndarray:
        """(n, 2) array of predicted (AR_step, PR_step) for each candidate."""
        features = self.build_features(scheme, state, candidate_indices)
        out = self.network(Tensor(features)).data.copy()
        out[:, 0] /= AR_TARGET_SCALE
        return out

    def observe(
        self,
        scheme: CompressionScheme,
        state: np.ndarray,
        candidate_index: int,
        ar_step: float,
        pr_step: float,
    ) -> None:
        features = self.build_features(scheme, state, np.array([candidate_index]))[0]
        scaled_ar = float(np.clip(ar_step, -0.5, 0.1)) * AR_TARGET_SCALE
        self.buffer.append(FmoObservation(features, scaled_ar, pr_step))

    def pretrain_from_experience(self, records, epochs: int = 40) -> int:
        """Warm-start F_mo from the papers' experience records (§1's
        "learned prior knowledge combined with historical evaluation
        information").

        Each record becomes a pseudo-transition from the START scheme: the
        candidate is the record's nearest strategy in the space and the
        targets are the reported (AR, PR).  Returns how many records matched.
        """
        from ..knowledge.experience import nearest_strategy

        state = self.state_features(1.0, 1.0, 0, 0.0, self.max_length)
        matched = 0
        for record in records:
            strategy = nearest_strategy(self.embeddings.space, record)
            if strategy is None:
                continue
            self.observe(
                CompressionScheme(), state, strategy.index, record.ar, record.pr
            )
            matched += 1
        if matched:
            self.train(epochs=epochs)
        return matched

    def train(self, epochs: int = 20, batch_size: int = 64) -> float:
        """Re-fit on the replay buffer (Eq. 5); returns the final loss."""
        if not self.buffer:
            return float("nan")
        features = np.stack([o.features for o in self.buffer])
        targets = np.array([[o.ar_step, o.pr_step] for o in self.buffer])
        last = float("nan")
        for _ in range(epochs):
            order = self._rng.permutation(len(features))
            for start in range(0, len(order), batch_size):
                idx = order[start : start + batch_size]
                pred = self.network(Tensor(features[idx]))
                diff = pred - Tensor(targets[idx])
                loss = (diff * diff).mean()
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                last = loss.item()
        self.loss_history.append(last)
        return last
