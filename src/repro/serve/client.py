"""Thin client for the ``repro serve`` daemon (used by ``repro job ...``).

Every method opens one connection, sends one request and reads the
response; :meth:`ServeClient.watch` keeps its connection open and yields
the server's event stream.  The daemon is discovered through the endpoint
file its state directory holds (see :mod:`repro.serve.protocol`).
"""

from __future__ import annotations

import socket
from typing import Dict, Iterator, List, Optional

from .jobs import JobSpec
from .protocol import connect, read_endpoint, recv_message, recv_stream, send_message


class ServeUnavailable(RuntimeError):
    """No daemon reachable for the given state directory."""


class ServerError(RuntimeError):
    """The daemon answered a request with ``ok: false``."""

    def __init__(self, error: str, error_type: str = "RuntimeError"):
        super().__init__(error)
        self.error_type = error_type


class ServeClient:
    def __init__(
        self,
        state_dir=None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 60.0,
    ):
        if host is None or port is None:
            if state_dir is None:
                raise ValueError("ServeClient needs state_dir or host+port")
            try:
                endpoint = read_endpoint(state_dir)
            except FileNotFoundError:
                raise ServeUnavailable(
                    f"no serve daemon endpoint under {state_dir} "
                    "(is `repro serve` running?)"
                ) from None
            host = endpoint["host"]
            port = int(endpoint["port"])
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    def _request(self, op: str, **fields) -> dict:
        try:
            sock = connect(self.host, self.port, timeout=self.timeout)
        except OSError as exc:
            raise ServeUnavailable(
                f"cannot reach serve daemon at {self.host}:{self.port}: {exc}"
            ) from exc
        with sock:
            wire = sock.makefile("rwb")
            send_message(wire, {"op": op, **fields})
            response = recv_message(wire)
        if response is None:
            raise ServeUnavailable("daemon closed the connection mid-request")
        if not response.get("ok"):
            raise ServerError(
                response.get("error", "unknown server error"),
                response.get("error_type", "RuntimeError"),
            )
        return response

    # ------------------------------------------------------------------ #
    def ping(self) -> dict:
        return self._request("ping")

    def submit(self, spec: JobSpec) -> dict:
        """Submit a job; returns its summary (``job_id``, state, ...)."""
        return self._request("submit", spec=spec.to_payload())["job"]

    def status(self, job_id: str) -> dict:
        return self._request("status", job_id=job_id)["job"]

    def list_jobs(self) -> List[dict]:
        return self._request("list")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("cancel", job_id=job_id)["job"]

    def stats(self) -> dict:
        return self._request("stats")["stats"]

    def lane_pids(self) -> List[int]:
        return self._request("lane_pids")["pids"]

    def shutdown(self) -> dict:
        return self._request("shutdown")

    # ------------------------------------------------------------------ #
    def watch(self, job_id: str, since: int = 0) -> Iterator[dict]:
        """Yield job events (round progress, state changes) until terminal.

        The first yielded item is the job's current summary (``kind:
        "snapshot"``); the final one is ``kind: "done"`` with the terminal
        summary.
        """
        try:
            sock = connect(self.host, self.port, timeout=self.timeout)
        except OSError as exc:
            raise ServeUnavailable(
                f"cannot reach serve daemon at {self.host}:{self.port}: {exc}"
            ) from exc
        with sock:
            sock.settimeout(None)  # rounds can be slow; block on the stream
            wire = sock.makefile("rwb")
            send_message(wire, {"op": "watch", "job_id": job_id, "since": since})
            first = recv_message(wire)
            if first is None:
                raise ServeUnavailable("daemon closed the watch stream")
            if not first.get("ok"):
                raise ServerError(
                    first.get("error", "unknown server error"),
                    first.get("error_type", "RuntimeError"),
                )
            yield {"kind": "snapshot", "job_id": job_id, "job": first["job"]}
            try:
                yield from recv_stream(wire)
            except (OSError, socket.timeout) as exc:
                raise ServeUnavailable(f"watch stream dropped: {exc}") from exc

    def wait(self, job_id: str) -> Dict[str, object]:
        """Block until the job is terminal; returns its final summary."""
        final: Optional[dict] = None
        for event in self.watch(job_id):
            if event.get("kind") == "done":
                final = event["job"]
        if final is None:
            raise ServeUnavailable("watch stream ended before the job finished")
        return final
