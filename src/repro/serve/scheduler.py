"""Multi-job scheduler: many live solver drivers, one shared lane pool.

This is the server half of the engine-lifecycle refactor: where a single
``AutoMC.search()`` owns its :class:`~repro.core.engine.EvaluationEngine`
cradle-to-grave, the :class:`JobScheduler` keeps one warm
:class:`~repro.core.engine.LanePool` and one shared snapshot directory
alive across jobs and gives every submitted job its *own* engine +
evaluator + budget + tracer on a borrowed pool.  Isolation and sharing are
split exactly along the determinism boundary:

* **isolated per job** — evaluator (results map, charged costs, RNG
  streams), ``Budget``, solver state, run journal.  A job's results and
  charged costs are therefore bit-identical to the same search run alone
  in its own process (see ``tests/test_serve.py``).
* **shared across jobs** — worker lanes (warm model LRUs, keyed per config
  token), the disk snapshot store, and the persistent result cache.  All
  three only change *wall-clock*: resuming a snapshot is bit-identical to
  replaying and a cached result is the exact JSON round-trip of the
  original, so tenants dedup each other's work for free.  Cross-job reuse
  is observable as ``snapshot_foreign_hits`` and ``cache_foreign_hits`` in
  each job's result.

Jobs run on daemon threads, capped by a semaphore (``max_jobs``); each
round's progress is journalled through the crash-safe
:class:`~repro.serve.jobs.JobTable` and streamed to ``watch`` clients.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional

from ..core.engine import EvaluationEngine, LanePool, WorkerError
from ..core.progressive import ProgressiveConfig
from ..core.search import SearchResult
from ..core.solver import make_solver
from ..obs import RunJournal, Tracer, attach_tracer
from .jobs import JobRecord, JobSpec, JobTable

#: subdirectories of the scheduler state dir
SNAPSHOT_SUBDIR = "snapshots"
JOURNAL_SUBDIR = "journals"
CACHE_SUBDIR = "cache"


class JobScheduler:
    """Run search jobs concurrently on shared lanes and snapshots.

    ``workers=0`` evaluates every job serially on its own thread (jobs
    still share the snapshot tier — the dedup that matters); ``workers>0``
    creates a :class:`LanePool` that all jobs borrow.  Pass ``lane_pool``
    to share an externally owned pool instead.  ``recover=True`` replays a
    previous daemon's job journal (crashed jobs surface as
    ``interrupted``/resumable).
    """

    def __init__(
        self,
        state_dir,
        workers: int = 0,
        lane_pool: Optional[LanePool] = None,
        max_jobs: int = 4,
        snapshot_budget_mb: Optional[float] = None,
        job_journals: bool = True,
        recover: bool = True,
    ):
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.table = (
            JobTable.recover(self.state_dir) if recover else JobTable(self.state_dir)
        )
        if lane_pool is not None:
            self.lane_pool: Optional[LanePool] = lane_pool
            self._owns_pool = False
        elif workers > 0:
            self.lane_pool = LanePool(workers)
            self._owns_pool = True
        else:
            self.lane_pool = None
            self._owns_pool = False
        self.snapshot_dir = self.state_dir / SNAPSHOT_SUBDIR
        self.snapshot_budget_mb = snapshot_budget_mb
        # one result-cache tree for every job: same-config jobs (and later
        # daemon runs) adopt each other's paid evaluations at zero cost
        self.cache_dir = self.state_dir / CACHE_SUBDIR
        self.job_journals = job_journals
        self._slots = threading.Semaphore(max(1, max_jobs))
        self._threads: Dict[str, threading.Thread] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    def prestart(self) -> None:
        """Fork lane worker processes now, while no job threads exist."""
        if self.lane_pool is not None:
            self.lane_pool.prestart()

    def submit(self, spec: JobSpec) -> JobRecord:
        """Register a job and start its driver thread; returns the record."""
        if self._closed:
            raise RuntimeError("scheduler is closed")
        record = self.table.create(spec)
        thread = threading.Thread(
            target=self._drive, args=(record,),
            name=f"job-{record.job_id}", daemon=True,
        )
        self._threads[record.job_id] = thread
        thread.start()
        return record

    def cancel(self, job_id: str) -> JobRecord:
        return self.table.request_cancel(job_id)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        thread = self._threads.get(job_id)
        if thread is not None:
            thread.join(timeout)
        return self.table.get(job_id)

    def stats(self) -> dict:
        states: Dict[str, int] = {}
        for record in self.table.list():
            states[record.state] = states.get(record.state, 0) + 1
        from ..core.engine import cache_stats

        return {
            "jobs": states,
            "lane_pool": self.lane_pool.stats() if self.lane_pool else None,
            "result_cache": cache_stats(self.cache_dir),
        }

    def close(self, wait_jobs: bool = False) -> None:
        """Stop accepting jobs; optionally wait for running ones, then
        release the (owned) lane pool and the job journal."""
        self._closed = True
        if wait_jobs:
            for thread in list(self._threads.values()):
                thread.join()
        if self._owns_pool and self.lane_pool is not None:
            self.lane_pool.close()
        self.table.close()

    # ------------------------------------------------------------------ #
    def _drive(self, record: JobRecord) -> None:
        """One job's whole lifecycle, on its own thread."""
        with self._slots:
            if record.cancel_requested or record.state != "queued":
                return  # cancelled while queued
            try:
                self._run(record)
            except WorkerError as exc:
                self.table.transition(
                    record.job_id, "failed",
                    error={
                        "type": "WorkerError",
                        "message": exc.cause_message,
                        "cause_type": exc.cause_type,
                        "scheme_id": exc.scheme_id,
                        "failures": len(exc.failures),
                    },
                )
            except Exception as exc:
                self.table.transition(
                    record.job_id, "failed",
                    error={"type": type(exc).__name__, "message": str(exc)},
                )

    def _run(self, record: JobRecord) -> None:
        spec = record.spec
        config = spec.build_config()
        # every job shares the daemon's snapshot tree (the cross-job tier)
        config = replace(
            config,
            snapshot_dir=str(self.snapshot_dir),
            snapshot_budget_mb=self.snapshot_budget_mb,
        )
        evaluator = config.build()
        engine = EvaluationEngine(
            evaluator, lane_pool=self.lane_pool, cache_dir=str(self.cache_dir)
        )

        tracer = None
        if self.job_journals:
            journal_dir = self.state_dir / JOURNAL_SUBDIR
            journal_dir.mkdir(parents=True, exist_ok=True)
            tracer = Tracer(
                journal=RunJournal(
                    journal_dir / f"{record.job_id}.jsonl",
                    run={
                        "api": "repro.serve",
                        "job_id": record.job_id,
                        "tenant": spec.tenant,
                        "solver": spec.solver,
                        "seed": spec.seed,
                    },
                )
            )
            attach_tracer(engine, tracer)

        self.table.transition(record.job_id, "running")
        try:
            solver = make_solver(
                spec.solver,
                engine,
                spec.build_space(),
                gamma=spec.gamma,
                budget_hours=spec.budget_hours,
                max_length=spec.max_length,
                seed=spec.seed,
                tracer=tracer,
                **self._solver_kwargs(spec),
            )
            result = solver.run(
                stop=lambda: record.cancel_requested,
                on_round=lambda st: self.table.progress(
                    record.job_id,
                    rounds=st.rounds_completed,
                    evaluations=st.evaluator.evaluation_count,
                    total_cost=st.evaluator.total_cost,
                    pareto=_front_payload(st.evaluator.pareto_results(spec.gamma)),
                ),
            )
            state = "cancelled" if record.cancel_requested else "completed"
            self.table.transition(
                record.job_id, state, result=_result_payload(result, engine)
            )
        finally:
            engine.close()
            if tracer is not None:
                tracer.close()

    def _solver_kwargs(self, spec: JobSpec) -> dict:
        """Per-solver options, mirroring ``AutoMC.search()``'s wiring.

        The progressive solver needs embeddings and an experience base that
        cannot cross the wire; they are built server-side exactly as
        ``AutoMC`` builds them (same seed), so a served progressive job
        matches the in-process run.  A ``config`` dict in ``solver_kwargs``
        becomes a :class:`ProgressiveConfig`.
        """
        kwargs = dict(spec.solver_kwargs)
        if spec.solver == "progressive":
            from ..knowledge.embedding import EmbeddingConfig, learn_embeddings
            from ..knowledge.experience import default_experience

            progressive = kwargs.get("config")
            if isinstance(progressive, dict):
                kwargs["config"] = ProgressiveConfig(**progressive)
            kwargs.setdefault(
                "embeddings",
                learn_embeddings(
                    spec.build_space(), config=EmbeddingConfig(seed=spec.seed)
                ),
            )
            kwargs.setdefault("config", None)
            kwargs.setdefault("experience", default_experience())
        return kwargs


# ---------------------------------------------------------------------------
# result payloads (JSON-safe mirrors of SearchResult for the wire)
# ---------------------------------------------------------------------------


def _front_payload(results) -> List[Dict[str, object]]:
    return [
        {
            "identifier": r.scheme.identifier,
            "params": r.params,
            "flops": r.flops,
            "accuracy": r.accuracy,
            "cost": r.cost,
            "latency_ms": r.latency_ms,
        }
        for r in results
    ]


def _result_payload(result: SearchResult, engine: EvaluationEngine) -> Dict[str, object]:
    return {
        "algorithm": result.algorithm,
        "solver": result.solver,
        "gamma": result.gamma,
        "total_cost": result.total_cost,
        "evaluations": result.evaluations,
        "rounds": result.rounds,
        "pareto": _front_payload(result.pareto),
        "front": _front_payload(result.front),
        "trajectory": [
            {
                "cost": p.cost,
                "evaluations": p.evaluations,
                "hypervolume": p.hypervolume,
                "front_size": p.front_size,
            }
            for p in result.trajectory
        ],
        "solver_stats": result.solver_stats,
        "snapshot_hits": engine.snapshot_hits,
        "snapshot_foreign_hits": engine.snapshot_foreign_hits,
        "steps_replayed": engine.steps_replayed,
        "snapshot_steps_saved": engine.snapshot_steps_saved,
        "cache_hits": engine.cache_hits,
        "cache_foreign_hits": engine.cache_foreign_hits,
    }
