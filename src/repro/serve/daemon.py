"""The ``repro serve`` daemon: a threaded TCP server over the job scheduler.

One connection = one request (see :mod:`repro.serve.protocol`); handlers
are thin translations from protocol ops to :class:`JobScheduler` calls:

========  ==================================================================
op        behaviour
========  ==================================================================
ping      liveness + pid
submit    validate a :class:`~repro.serve.jobs.JobSpec`, start the job
status    one job's summary
list      every job's summary (restart-recovered jobs included)
watch     *streams* job events (round progress, state changes) until the
          job is terminal — the one multi-response op
cancel    cooperative cancellation (takes effect at the next round boundary)
stats     scheduler + lane-pool counters
lane_pids worker PID per lane (fault-injection and ops tooling)
shutdown  graceful stop: the serve loop exits after responding
========  ==================================================================

Crash semantics: the daemon journals every job transition through the
:class:`~repro.serve.jobs.JobTable`; on SIGTERM/crash nothing is flushed
beyond the last completed transition, and the next daemon started on the
same state dir recovers the table — in-flight jobs surface as
``interrupted`` + resumable.  This mirrors Distiller's crash-safe scan-dir
fine-tuning journal, generalised to a live protocol.
"""

from __future__ import annotations

import socketserver
import threading
import time
from typing import Optional

from .jobs import TERMINAL_STATES, JobSpec
from .protocol import (
    ProtocolError,
    recv_message,
    remove_endpoint,
    send_message,
    write_endpoint,
)
from .scheduler import JobScheduler

#: how often `watch` re-checks a job with no new events
WATCH_POLL_SECONDS = 0.05


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True  # in-flight handlers never block process exit


class ServeDaemon:
    """Own a scheduler, a TCP server, and the endpoint discovery file."""

    def __init__(
        self,
        state_dir,
        workers: int = 0,
        max_jobs: int = 4,
        host: str = "127.0.0.1",
        port: int = 0,
        snapshot_budget_mb: Optional[float] = None,
        recover: bool = True,
    ):
        self.scheduler = JobScheduler(
            state_dir,
            workers=workers,
            max_jobs=max_jobs,
            snapshot_budget_mb=snapshot_budget_mb,
            recover=recover,
        )
        self.state_dir = self.scheduler.state_dir
        daemon = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                daemon._handle(self)

        self._server = _Server((host, port), Handler)
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self.shutdown_requested = threading.Event()
        # lanes fork before any job/handler thread exists
        self.scheduler.prestart()
        write_endpoint(self.state_dir, self.host, self.port)

    # ------------------------------------------------------------------ #
    def start(self) -> "ServeDaemon":
        """Serve in a background thread (foreground loops on the caller)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="serve-loop", daemon=True
        )
        self._thread.start()
        return self

    def wait(self, poll_seconds: float = 0.2) -> None:
        """Block until :attr:`shutdown_requested` (the foreground loop)."""
        while not self.shutdown_requested.wait(poll_seconds):
            pass

    def stop(self, wait_jobs: bool = False) -> None:
        """Graceful teardown: endpoint file, server socket, scheduler."""
        remove_endpoint(self.state_dir)
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.scheduler.close(wait_jobs=wait_jobs)

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    def _handle(self, handler) -> None:
        try:
            request = recv_message(handler.rfile)
        except ProtocolError as exc:
            send_message(handler.wfile, {"ok": False, "error": str(exc),
                                         "error_type": "ProtocolError"})
            return
        if request is None:
            return
        op = request.get("op")
        try:
            if op == "watch":
                self._watch(handler, request)
                return
            response = self._respond(op, request)
        except (KeyError, ValueError, RuntimeError) as exc:
            response = {
                "ok": False,
                "error": str(exc) or repr(exc),
                "error_type": type(exc).__name__,
            }
        try:
            send_message(handler.wfile, response)
        except OSError:
            pass  # client went away; nothing to do

    def _respond(self, op, request: dict) -> dict:
        scheduler = self.scheduler
        if op == "ping":
            import os

            return {"ok": True, "pid": os.getpid(), "state_dir": str(self.state_dir)}
        if op == "submit":
            spec = JobSpec.from_payload(request.get("spec") or {})
            record = scheduler.submit(spec)
            return {"ok": True, "job": record.summary()}
        if op == "status":
            record = scheduler.table.get(self._job_id(request))
            return {"ok": True, "job": record.summary()}
        if op == "list":
            return {
                "ok": True,
                "jobs": [r.summary() for r in scheduler.table.list()],
            }
        if op == "cancel":
            record = scheduler.cancel(self._job_id(request))
            return {"ok": True, "job": record.summary()}
        if op == "stats":
            return {"ok": True, "stats": scheduler.stats()}
        if op == "lane_pids":
            pool = scheduler.lane_pool
            return {"ok": True, "pids": pool.lane_pids() if pool else []}
        if op == "shutdown":
            self.shutdown_requested.set()
            return {"ok": True, "stopping": True}
        raise ValueError(f"unknown op {op!r}")

    def _job_id(self, request: dict) -> str:
        job_id = request.get("job_id")
        if not job_id:
            raise ValueError("missing job_id")
        if job_id not in {r.job_id for r in self.scheduler.table.list()}:
            raise KeyError(f"unknown job {job_id!r}")
        return job_id

    def _watch(self, handler, request: dict) -> None:
        """Stream a job's events until it is terminal, then close."""
        job_id = self._job_id(request)
        table = self.scheduler.table
        seq = int(request.get("since", 0))
        send_message(handler.wfile, {"ok": True, "job": table.get(job_id).summary()})
        while True:
            events = table.events_since(job_id, seq)
            for event in events:
                send_message(handler.wfile, event)
            seq += len(events)
            record = table.get(job_id)
            if record.state in TERMINAL_STATES and not table.events_since(job_id, seq):
                send_message(
                    handler.wfile, {"kind": "done", "job_id": job_id,
                                    "job": record.summary()}
                )
                return
            if not events:
                time.sleep(WATCH_POLL_SECONDS)
