"""Job model for the serve daemon: specs, records, and the crash-safe table.

A *job* is one complete search — a solver, a budget and an evaluator config
submitted by a tenant.  :class:`JobSpec` is the JSON-serialisable request;
:class:`JobRecord` is the server-side lifecycle state; :class:`JobTable`
owns the records plus the append-only JSONL journal that makes the table
recoverable after a crash or SIGTERM.

Journal semantics (``<state_dir>/jobs.jsonl``): every state transition is
one appended line — ``submitted`` (carrying the full spec), ``started``,
``round`` (progress), ``completed``/``failed``/``cancelled`` (terminal).
Lines are flushed as written, so after a crash the journal ends at the last
completed transition; a possibly-truncated final line is skipped on read.
:meth:`JobTable.recover` replays the journal and marks every job whose last
event is non-terminal as ``interrupted`` — its spec survives in the
journal, so it is *resumable*: a client can resubmit the identical spec and
(thanks to the shared snapshot store) pay only for un-snapshotted work.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Optional

from ..core.config import EvaluatorConfig
from ..space.strategy import StrategySpace

#: journal / table file inside the daemon state directory
JOBS_JOURNAL = "jobs.jsonl"

#: states a job can be in; the last four are terminal
JOB_STATES = ("queued", "running", "completed", "failed", "cancelled", "interrupted")
TERMINAL_STATES = frozenset({"completed", "failed", "cancelled", "interrupted"})


@dataclass
class JobSpec:
    """Everything a tenant sends to start a search (JSON-round-trippable).

    ``evaluator`` is an :meth:`EvaluatorConfig.to_payload` dict;
    ``method_labels`` restricts the strategy space (``None`` = full space);
    ``solver_kwargs`` passes per-solver options exactly like
    ``AutoMC(solver_kwargs=...)`` — plain JSON values only.
    """

    evaluator: Dict[str, object]
    solver: str = "random"
    tenant: str = "default"
    gamma: float = 0.3
    budget_hours: float = 1.0
    max_length: int = 5
    seed: int = 0
    method_labels: Optional[List[str]] = None
    solver_kwargs: Dict[str, object] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "JobSpec":
        if not isinstance(payload, dict):
            raise ValueError("job spec must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown job spec fields: {', '.join(unknown)}")
        if "evaluator" not in payload:
            raise ValueError("job spec needs an 'evaluator' config payload")
        spec = cls(**payload)  # type: ignore[arg-type]
        spec.validate()
        return spec

    def validate(self) -> None:
        """Reject a bad spec before any state is created for it."""
        from ..core.solver import list_solvers

        if self.solver not in list_solvers():
            raise ValueError(
                f"unknown solver {self.solver!r}; registered: "
                f"{', '.join(list_solvers())}"
            )
        if self.budget_hours <= 0:
            raise ValueError("budget_hours must be > 0")
        if self.max_length < 1:
            raise ValueError("max_length must be >= 1")
        config = self.build_config()
        if not config.is_buildable:
            raise ValueError(
                "evaluator config is not buildable server-side (needs a "
                "registry model_name and, for the surrogate backend, a task)"
            )

    def build_config(self) -> EvaluatorConfig:
        return EvaluatorConfig.from_payload(self.evaluator)

    def build_space(self) -> StrategySpace:
        if self.method_labels is None:
            return StrategySpace()
        return StrategySpace(method_labels=list(self.method_labels))


@dataclass
class JobRecord:
    """Server-side lifecycle state of one job."""

    job_id: str
    spec: JobSpec
    state: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    rounds: int = 0
    evaluations: int = 0
    total_cost: float = 0.0
    #: terminal result summary (set on completion) — see scheduler._result_payload
    result: Optional[Dict[str, object]] = None
    #: typed failure info ({"type", "message", ...}) for failed jobs
    error: Optional[Dict[str, object]] = None
    #: cooperative cancellation flag polled by the solver driver
    cancel_requested: bool = False
    #: streamed events for `watch` (round / terminal), each with a "seq"
    events: List[Dict[str, object]] = field(default_factory=list)

    @property
    def resumable(self) -> bool:
        """Interrupted and worker-failed jobs can be resubmitted; the shared
        snapshot store turns the replay into a resume."""
        return self.state == "interrupted" or (
            self.state == "failed"
            and bool(self.error)
            and self.error.get("type") == "WorkerError"
        )

    def summary(self) -> Dict[str, object]:
        """The status payload clients see."""
        return {
            "job_id": self.job_id,
            "tenant": self.spec.tenant,
            "solver": self.spec.solver,
            "seed": self.spec.seed,
            "state": self.state,
            "resumable": self.resumable,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "rounds": self.rounds,
            "evaluations": self.evaluations,
            "total_cost": self.total_cost,
            "result": self.result,
            "error": self.error,
        }


class JobTable:
    """Thread-safe job registry backed by the crash-safe JSONL journal.

    All mutations go through :meth:`transition` / :meth:`progress`, which
    append to the journal *before* releasing the lock, so the on-disk order
    matches the in-memory order and a crash loses at most the line being
    written (skipped on recovery).
    """

    def __init__(self, state_dir, journal: bool = True):
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._records: Dict[str, JobRecord] = {}
        self._next_id = 1
        self._journal = None
        if journal:
            # append mode: restarts extend the same history
            self._journal = open(  # noqa: SIM115 - lifetime == table lifetime
                self.state_dir / JOBS_JOURNAL, "a", buffering=1, encoding="utf-8"
            )

    # -- journal ----------------------------------------------------------
    def _append(self, event: str, job_id: str, **extra) -> None:
        if self._journal is None:
            return
        record = {"event": event, "job_id": job_id, "at": time.time(), **extra}
        try:
            self._journal.write(json.dumps(record, separators=(",", ":")) + "\n")
        except ValueError:
            pass  # journal closed during shutdown; the transition is lost
            # exactly like a crash — recovery marks the job interrupted

    # -- mutations --------------------------------------------------------
    def create(self, spec: JobSpec) -> JobRecord:
        with self._lock:
            job_id = f"job-{self._next_id:04d}"
            self._next_id += 1
            record = JobRecord(job_id=job_id, spec=spec, submitted_at=time.time())
            self._records[job_id] = record
            self._append("submitted", job_id, spec=spec.to_payload())
            return record

    def transition(self, job_id: str, state: str, **extra) -> JobRecord:
        """Move a job to ``state``, journal it, and emit a watch event."""
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        with self._lock:
            record = self._records[job_id]
            record.state = state
            if state == "running":
                record.started_at = time.time()
            if state in TERMINAL_STATES:
                record.finished_at = time.time()
            if "result" in extra:
                record.result = extra["result"]
            if "error" in extra:
                record.error = extra["error"]
            self._append(state, job_id, **extra)
            self._emit(record, {"kind": "state", "state": state, **extra})
            return record

    def progress(
        self, job_id: str, rounds: int, evaluations: int, total_cost: float,
        pareto: List[Dict[str, object]],
    ) -> None:
        """Record one completed round (journal line + watch event)."""
        with self._lock:
            record = self._records[job_id]
            record.rounds = rounds
            record.evaluations = evaluations
            record.total_cost = total_cost
            payload = {
                "rounds": rounds,
                "evaluations": evaluations,
                "total_cost": total_cost,
                "pareto": pareto,
            }
            self._append("round", job_id, **payload)
            self._emit(record, {"kind": "round", **payload})

    def request_cancel(self, job_id: str) -> JobRecord:
        """Flag a job for cooperative cancellation (queued → cancelled now)."""
        with self._lock:
            record = self._records[job_id]
            if record.state in TERMINAL_STATES:
                return record
            record.cancel_requested = True
            if record.state == "queued":
                return self.transition(job_id, "cancelled")
            return record

    def _emit(self, record: JobRecord, event: Dict[str, object]) -> None:
        event["seq"] = len(record.events)
        event["job_id"] = record.job_id
        record.events.append(event)

    # -- queries ----------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._records[job_id]

    def list(self) -> List[JobRecord]:
        with self._lock:
            return list(self._records.values())

    def events_since(self, job_id: str, seq: int) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._records[job_id].events[seq:])

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    # -- recovery ---------------------------------------------------------
    @classmethod
    def recover(cls, state_dir, journal: bool = True) -> "JobTable":
        """Rebuild the table from a previous daemon's journal.

        Jobs whose last journalled event is non-terminal were in flight when
        the previous daemon died; they come back as ``interrupted`` (their
        spec preserved, ``resumable=True``) and the transition is journalled
        so a second restart sees a terminal state.  Corrupt or truncated
        journal lines are skipped.
        """
        state_dir = Path(state_dir)
        events: List[dict] = []
        path = state_dir / JOBS_JOURNAL
        if path.exists():
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    if not line.endswith("\n"):
                        break  # truncated crash write
                    try:
                        event = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(event, dict) and "job_id" in event:
                        events.append(event)

        table = cls(state_dir, journal=journal)
        interrupted: List[str] = []
        for event in events:
            job_id = event["job_id"]
            kind = event.get("event")
            if kind == "submitted":
                try:
                    spec = JobSpec.from_payload(event.get("spec") or {})
                except ValueError:
                    continue  # spec from a newer/older schema; drop the job
                record = JobRecord(
                    job_id=job_id, spec=spec,
                    submitted_at=event.get("at", 0.0),
                )
                table._records[job_id] = record
                # keep ids monotonic across restarts
                try:
                    table._next_id = max(table._next_id, int(job_id.split("-")[-1]) + 1)
                except ValueError:
                    pass
            elif job_id in table._records:
                record = table._records[job_id]
                if kind == "round":
                    record.rounds = event.get("rounds", record.rounds)
                    record.evaluations = event.get("evaluations", record.evaluations)
                    record.total_cost = event.get("total_cost", record.total_cost)
                elif kind in JOB_STATES:
                    record.state = kind
                    if kind == "running":
                        record.started_at = event.get("at")
                    if kind in TERMINAL_STATES:
                        record.finished_at = event.get("at")
                    if "result" in event:
                        record.result = event["result"]
                    if "error" in event:
                        record.error = event["error"]

        for record in table._records.values():
            if record.state not in TERMINAL_STATES:
                interrupted.append(record.job_id)
        for job_id in interrupted:
            table.transition(job_id, "interrupted")
        return table
