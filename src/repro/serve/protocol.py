"""Wire protocol for the ``repro serve`` daemon: JSON lines over TCP.

One request per connection: the client sends a single JSON object on one
line (``{"op": "submit", ...}``) and reads one response line
(``{"ok": true, ...}`` or ``{"ok": false, "error": ..., "error_type": ...}``).
The ``watch`` op is the one streaming exception — the server keeps the
connection open and pushes one JSON line per job event until the job
reaches a terminal state.

Newline-delimited JSON was chosen over HTTP deliberately: it needs nothing
beyond the stdlib socket layer, is trivially inspectable with ``nc``, and
framing by line means a crashed peer can never leave a half-parsed message
ambiguity — a partial line is simply dropped, mirroring the crash-safe
JSONL conventions of :mod:`repro.obs`.

Endpoint discovery: the daemon binds ``127.0.0.1`` on an ephemeral port and
records ``{"host", "port", "pid"}`` in ``<state_dir>/serve.json`` (atomic
write), so clients only need the state directory.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
from pathlib import Path
from typing import Iterator, Optional

#: endpoint discovery file inside the daemon's state directory
ENDPOINT_FILE = "serve.json"

#: hard cap on one protocol line; anything bigger is a malformed client
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(RuntimeError):
    """Malformed frame on the wire (oversized, truncated or non-JSON)."""


def send_message(wire, message: dict) -> None:
    """Write one JSON object as a single line and flush it."""
    wire.write(json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n")
    wire.flush()


def recv_message(wire) -> Optional[dict]:
    """Read one JSON line; ``None`` on clean EOF.

    A truncated final line (peer died mid-write) is treated as EOF — by
    construction a complete message always ends in ``\\n``.
    """
    line = wire.readline(MAX_LINE_BYTES)
    if not line:
        return None
    if not line.endswith(b"\n"):
        if len(line) >= MAX_LINE_BYTES:
            raise ProtocolError(f"protocol line exceeds {MAX_LINE_BYTES} bytes")
        return None  # truncated write from a dying peer
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"malformed protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("protocol messages must be JSON objects")
    return message


def recv_stream(wire) -> Iterator[dict]:
    """Yield JSON lines until EOF (the ``watch`` stream)."""
    while True:
        message = recv_message(wire)
        if message is None:
            return
        yield message


# ---------------------------------------------------------------------------
# endpoint discovery
# ---------------------------------------------------------------------------


def endpoint_path(state_dir) -> Path:
    return Path(state_dir) / ENDPOINT_FILE


def write_endpoint(state_dir, host: str, port: int) -> Path:
    """Atomically record the daemon's address in the state directory."""
    path = endpoint_path(state_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"host": host, "port": port, "pid": os.getpid()}
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_endpoint(state_dir) -> dict:
    """The daemon address recorded by :func:`write_endpoint`.

    Raises ``FileNotFoundError`` when no daemon has written one.
    """
    path = endpoint_path(state_dir)
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict) or "port" not in payload:
        raise ProtocolError(f"malformed endpoint file: {path}")
    return payload


def remove_endpoint(state_dir) -> None:
    try:
        endpoint_path(state_dir).unlink()
    except OSError:
        pass


def connect(host: str, port: int, timeout: Optional[float] = None) -> socket.socket:
    """Open a client connection to a daemon."""
    return socket.create_connection((host, port), timeout=timeout)
