"""repro.serve — search-as-a-service: a multi-tenant local search daemon.

The package turns the one-shot ``AutoMC.search()`` pipeline into a
long-lived server: a :class:`~repro.serve.daemon.ServeDaemon` owns a warm
:class:`~repro.core.engine.LanePool` and a shared snapshot directory, a
:class:`~repro.serve.scheduler.JobScheduler` multiplexes concurrent search
jobs onto them with per-job budget/solver/journal isolation, and a
:class:`~repro.serve.client.ServeClient` talks the JSON-lines protocol
(``repro serve`` / ``repro job ...`` on the CLI).  See ``docs/serving.md``.
"""

from .client import ServeClient, ServerError, ServeUnavailable
from .daemon import ServeDaemon
from .jobs import JOB_STATES, TERMINAL_STATES, JobRecord, JobSpec, JobTable
from .scheduler import JobScheduler

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "JobScheduler",
    "JobSpec",
    "JobTable",
    "ServeClient",
    "ServeDaemon",
    "ServeUnavailable",
    "ServerError",
]
