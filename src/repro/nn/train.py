"""Training and evaluation loops for the numpy substrate.

:class:`Trainer` is the single place where gradient training happens; the
compression methods (fine-tuning, distillation, SFP's prune-while-training
loop) all drive it through small callbacks.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..obs import NULL_TRACER
from .layers import Module
from .losses import cross_entropy
from .optim import SGD, CosineSchedule, Optimizer
from .tensor import Tensor, detect_anomaly, no_grad


@dataclass
class TrainReport:
    """Summary of one training run."""

    epochs: int
    steps: int
    losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def evaluate_accuracy(model: Module, dataset, batch_size: int = 64) -> float:
    """Top-1 accuracy of ``model`` on ``dataset`` (fraction in [0, 1]).

    Runs under :func:`repro.nn.no_grad` — accuracy measurement never needs
    the tape, so inference skips all autodiff bookkeeping.
    """
    was_training = model.training
    model.eval()
    correct = 0
    total = 0
    with no_grad():
        for xb, yb in dataset.iter_batches(batch_size, shuffle=False):
            logits = model(Tensor(xb)).data
            correct += int((logits.argmax(axis=-1) == yb).sum())
            total += len(yb)
    model.train(was_training)
    return correct / max(total, 1)


class Trainer:
    """Mini-batch gradient trainer with pluggable loss and per-step hooks."""

    def __init__(
        self,
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 5e-4,
        batch_size: int = 32,
        seed: int = 0,
        cosine: bool = True,
        detect_anomaly: bool = False,
    ):
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.batch_size = batch_size
        self.seed = seed
        self.cosine = cosine
        #: when True, every forward/backward runs under
        #: :func:`repro.nn.tensor.detect_anomaly` so the first NaN/Inf raises
        #: an AnomalyError naming the op that produced it.
        self.detect_anomaly = detect_anomaly
        #: observability hook (see repro.obs); with the default NULL_TRACER
        #: the per-step overhead is a single attribute check
        self.tracer = NULL_TRACER

    def evaluate(self, model: Module, dataset, batch_size: Optional[int] = None) -> float:
        """Grad-free top-1 accuracy of ``model`` on ``dataset``."""
        return evaluate_accuracy(model, dataset, batch_size or self.batch_size)

    def fit(
        self,
        model: Module,
        dataset,
        epochs: float,
        loss_fn: Optional[Callable[[Tensor, np.ndarray, np.ndarray], Tensor]] = None,
        step_hook: Optional[Callable[[Module, int], None]] = None,
        optimizer: Optional[Optimizer] = None,
    ) -> TrainReport:
        """Train ``model`` on ``dataset`` for ``epochs`` (may be fractional).

        ``loss_fn(logits, targets, batch_indices)`` defaults to cross-entropy;
        ``step_hook(model, step)`` runs after every optimizer step (used by
        SFP to re-zero pruned filters).
        """
        if loss_fn is None:
            loss_fn = lambda logits, targets, idx: cross_entropy(logits, targets)
        model.train()
        opt = optimizer or SGD(
            model.parameters(),
            lr=self.lr,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )
        steps_per_epoch = max(1, int(np.ceil(len(dataset) / self.batch_size)))
        total_steps = max(1, int(round(epochs * steps_per_epoch)))
        schedule = CosineSchedule(opt, total_steps) if self.cosine else None
        report = TrainReport(epochs=int(np.ceil(epochs)), steps=total_steps)
        rng = np.random.default_rng(self.seed)
        guard = detect_anomaly() if self.detect_anomaly else contextlib.nullcontext()
        step = 0
        tracer = self.tracer
        traced = tracer.enabled
        fit_span = (
            tracer.start("train.fit", epochs=float(epochs), steps=total_steps)
            if traced
            else None
        )
        epoch_span = tracer.start("train.epoch", epoch=0) if traced else None
        try:
            with guard:
                while step < total_steps:
                    for xb, yb, idx in dataset.iter_batches(
                        self.batch_size, shuffle=True, rng=rng, with_indices=True
                    ):
                        logits = model(Tensor(xb))
                        loss = loss_fn(logits, yb, idx)
                        opt.zero_grad()
                        loss.backward()
                        opt.step()
                        if schedule is not None:
                            schedule.step()
                        if step_hook is not None:
                            step_hook(model, step)
                        report.losses.append(loss.item())
                        step += 1
                        if traced and (step % steps_per_epoch == 0 or step >= total_steps):
                            epoch_index = (step - 1) // steps_per_epoch
                            epoch_losses = report.losses[epoch_index * steps_per_epoch:]
                            epoch_span.set(
                                epoch=epoch_index,
                                steps=len(epoch_losses),
                                mean_loss=float(np.mean(epoch_losses)),
                            )
                            tracer.finish(epoch_span)
                            epoch_span = None
                            if step < total_steps:
                                epoch_span = tracer.start("train.epoch", epoch=epoch_index + 1)
                        if step >= total_steps:
                            break
        finally:
            if epoch_span is not None:
                tracer.finish(epoch_span)
            if fit_span is not None:
                fit_span.set(final_loss=report.final_loss)
                tracer.finish(fit_span)
        return report
