"""Evaluation metrics beyond top-1 accuracy.

Used by the examples and available to library users profiling compressed
models: top-k accuracy, per-class accuracy, and confusion matrices.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .layers import Module
from .tensor import Tensor, no_grad


def top_k_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Fraction of rows whose true label is among the k largest logits."""
    k = min(k, logits.shape[-1])
    top = np.argpartition(-logits, k - 1, axis=-1)[:, :k]
    hits = (top == np.asarray(targets)[:, None]).any(axis=1)
    return float(hits.mean())


def confusion_matrix(
    predictions: np.ndarray, targets: np.ndarray, num_classes: int
) -> np.ndarray:
    """(num_classes, num_classes) counts; rows = true class, cols = predicted."""
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (np.asarray(targets), np.asarray(predictions)), 1)
    return matrix


def per_class_accuracy(matrix: np.ndarray) -> np.ndarray:
    """Diagonal recall per class from a confusion matrix (NaN if unseen)."""
    totals = matrix.sum(axis=1).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(matrix) / totals, np.nan)


def evaluate_metrics(
    model: Module,
    dataset,
    batch_size: int = 64,
    top_k: int = 5,
) -> Dict[str, object]:
    """Full evaluation pass (grad-free): top-1/top-k accuracy + confusion matrix."""
    was_training = model.training
    model.eval()
    num_classes = dataset.num_classes
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    topk_hits = 0
    total = 0
    with no_grad():
        for xb, yb in dataset.iter_batches(batch_size, shuffle=False):
            logits = model(Tensor(xb)).data
            predictions = logits.argmax(axis=-1)
            matrix += confusion_matrix(predictions, yb, num_classes)
            topk_hits += int(round(top_k_accuracy(logits, yb, top_k) * len(yb)))
            total += len(yb)
    model.train(was_training)
    accuracy = float(np.trace(matrix)) / max(total, 1)
    return {
        "accuracy": accuracy,
        f"top{top_k}_accuracy": topk_hits / max(total, 1),
        "confusion_matrix": matrix,
        "per_class_accuracy": per_class_accuracy(matrix),
    }
