"""Shape-specialized kernel plans and the thread-local workspace arena.

Every compression scheme the search evaluates reruns the same handful of
tensor shapes thousands of times — train steps, fine-tune epochs, latency
probes all hit identical conv geometries.  After the fused kernels (PR 4)
and the quantized path (PR 9), the remaining tax on that loop is the
allocator: every ``conv2d`` call re-derived im2col geometry and allocated a
fresh pad / cols / dcols / dxp buffer.  This module amortises both costs:

* **Plans** (:class:`ConvPlan`, :class:`AvgPoolPlan`, :class:`QuantConvPlan`)
  precompute, once per shape, everything that depends only on geometry:
  output sizes, the per-tap im2col/col2im copy slices (the patch matrix is
  kept *transposed*, ``(N, C*kh*kw, Ho*Wo)``, so each kernel tap is one
  whole-array strided copy and the forward GEMM writes straight into the
  NCHW output — no 6-D gather and no final transpose copy), and the col2im
  scatter strategy.  Plans are immutable after construction and shared
  across threads behind a lock-protected cache keyed by
  ``(op, input shape, weight shape, stride, padding, dtype)``.

* The **workspace arena** (:class:`Workspace`) hands out reusable buffers
  sized to each plan's high-water mark.  It is *thread-local* for the same
  reason PR 8 made the profiling sink and grad mode thread-local: the serve
  daemon runs concurrent search jobs, and two jobs sharing a scratch buffer
  would corrupt each other's activations.  Buffers grow monotonically and
  are only released by :func:`clear_workspace` / :func:`clear_plans`
  (eviction is explicit — the arena is bounded by the largest shapes the
  thread has executed, which for a search job is the base model).

**The reuse contract** (what keeps buffer recycling sound): a workspace
buffer may back an array only while that array cannot outlive the current
kernel call.  Arrays that *escape* — op outputs, anything captured by a
backward closure, anything handed to ``Tensor._accumulate`` with no base —
must be freshly allocated, which kernels do through :func:`owned_zeros` /
:func:`owned_empty` so every hot-path allocation is auditable (repolint
R006 forbids direct ``np.pad``/``np.zeros``/``np.empty`` inside the
``nn/functional.py`` hot kernels).  Note ``_accumulate`` *copies* gradients
that are views (``base is not None``), so handing it a workspace slice is
safe; handing it a whole workspace-backed array is not.

Planned execution is bit-identical to the un-planned reference — asserted
by ``tests/test_workspace.py`` (hypothesis property) and the benchmark
suite.  ``no_plans()`` switches the calling thread back to the reference
kernels (used by the A/B benchmark and the identity tests themselves).
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

__all__ = [
    "Workspace",
    "ConvPlan",
    "AvgPoolPlan",
    "QuantConvPlan",
    "get_workspace",
    "workspace_stats",
    "clear_workspace",
    "reset_workspace_peak",
    "plan_cache_stats",
    "clear_plans",
    "plans_enabled",
    "no_plans",
    "owned_zeros",
    "owned_empty",
    "pad2d",
    "conv_plan",
    "avg_pool_plan",
    "quant_conv_plan",
]

# Thread-local state: the arena, the plans-enabled flag and this thread's
# hit/miss counters.  Counters are per-thread so concurrent serve jobs see
# their own numbers instead of an interleaved global total.
_TLS = threading.local()

# The plan cache itself is global — plans are immutable geometry, safe to
# share; only the dict needs the lock.
_PLANS: Dict[tuple, object] = {}
_PLANS_LOCK = threading.Lock()


# --------------------------------------------------------------------------- #
# Escape allocations
# --------------------------------------------------------------------------- #
def owned_zeros(shape: Tuple[int, ...], dtype) -> np.ndarray:
    """A fresh zeroed array the caller may let escape the kernel.

    The one sanctioned way for a hot-path kernel to allocate memory that
    outlives the call (op outputs, gradients adopted by ``_accumulate``).
    """
    return np.zeros(shape, dtype=dtype)


def owned_empty(shape: Tuple[int, ...], dtype) -> np.ndarray:
    """A fresh uninitialised array the caller may let escape the kernel."""
    return np.empty(shape, dtype=dtype)


def pad2d(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two trailing spatial dims of NCHW — or pass through.

    Returns ``x`` itself (no copy) when ``padding == 0``; the old hot path
    called ``np.pad`` unconditionally, paying a full-tensor copy on every
    1x1 convolution.
    """
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


# --------------------------------------------------------------------------- #
# Workspace arena
# --------------------------------------------------------------------------- #
class Workspace:
    """A grow-only arena of named scratch buffers for one thread.

    Buffers are keyed by ``(plan key, role)`` and returned as dtype/shape
    views over flat byte buffers, so one slot can serve float32 and float64
    plans of the same geometry.  ``bytes_peak`` is the high-water mark of
    total bytes held; :func:`reset_workspace_peak` rebases it so callers
    (the evaluator's latency probe) can measure a window.
    """

    def __init__(self) -> None:
        self._buffers: Dict[tuple, np.ndarray] = {}
        self._ready: set = set()
        self._bytes_in_use = 0
        self.bytes_peak = 0

    @property
    def bytes_in_use(self) -> int:
        return self._bytes_in_use

    def request(self, key: tuple, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A reusable buffer viewed as ``shape``/``dtype``; contents stale."""
        dtype = np.dtype(dtype)
        nbytes = math.prod(shape) * dtype.itemsize
        buf = self._buffers.get(key)
        if buf is None or buf.nbytes < nbytes:
            if buf is not None:
                self._bytes_in_use -= buf.nbytes
            buf = np.empty(nbytes, dtype=np.uint8)
            self._buffers[key] = buf
            self._ready.discard(key)
            self._bytes_in_use += nbytes
            if self._bytes_in_use > self.bytes_peak:
                self.bytes_peak = self._bytes_in_use
        return buf[:nbytes].view(dtype).reshape(shape)

    def zeros(self, key: tuple, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """:meth:`request`, zero-filled."""
        out = self.request(key, shape, dtype)
        out[...] = 0
        return out

    def is_ready(self, key: tuple) -> bool:
        """Whether ``key``'s one-time contents survive from a previous call.

        Cleared whenever the slot is (re)allocated, so pad borders that were
        zeroed once stay trustworthy across calls but not across growth.
        """
        return key in self._ready

    def mark_ready(self, key: tuple) -> None:
        self._ready.add(key)

    def clear(self) -> None:
        """Release every buffer (the peak statistic is retained)."""
        self._buffers.clear()
        self._ready.clear()
        self._bytes_in_use = 0

    def stats(self) -> Dict[str, int]:
        return {
            "buffers": len(self._buffers),
            "bytes_in_use": self._bytes_in_use,
            "bytes_peak": self.bytes_peak,
        }


def get_workspace() -> Workspace:
    """The calling thread's arena (created on first use)."""
    ws = getattr(_TLS, "workspace", None)
    if ws is None:
        ws = Workspace()
        _TLS.workspace = ws
    return ws


def workspace_stats() -> Dict[str, int]:
    """``{"buffers", "bytes_in_use", "bytes_peak"}`` for this thread."""
    return get_workspace().stats()


def clear_workspace() -> None:
    """Drop every buffer held by the calling thread's arena."""
    get_workspace().clear()


def reset_workspace_peak() -> int:
    """Rebase this thread's peak to current usage; returns the old peak.

    Call before a measurement window, then read
    ``workspace_stats()["bytes_peak"]`` after it.
    """
    ws = get_workspace()
    prev = ws.bytes_peak
    ws.bytes_peak = ws.bytes_in_use
    return prev


# --------------------------------------------------------------------------- #
# Plan cache
# --------------------------------------------------------------------------- #
def plans_enabled() -> bool:
    """Whether this thread executes through plans (default) or the reference."""
    return getattr(_TLS, "enabled", True)


@contextmanager
def no_plans() -> Iterator[None]:
    """Run the un-planned reference kernels on this thread.

    Used by the A/B benchmark (the baseline column *is* the PR 9 path) and
    by the bit-identity tests that compare the two.
    """
    prev = plans_enabled()
    _TLS.enabled = False
    try:
        yield
    finally:
        _TLS.enabled = prev


def _get_plan(key: tuple, builder):
    with _PLANS_LOCK:
        plan = _PLANS.get(key)
    if plan is not None:
        _TLS.hits = getattr(_TLS, "hits", 0) + 1
        return plan
    plan = builder()
    with _PLANS_LOCK:
        # Another thread may have built the same plan concurrently; both
        # are equivalent (pure geometry), keep whichever landed first.
        plan = _PLANS.setdefault(key, plan)
    _TLS.misses = getattr(_TLS, "misses", 0) + 1
    return plan


def plan_cache_stats() -> Dict[str, int]:
    """``{"size", "hits", "misses"}`` — size global, counters per-thread."""
    with _PLANS_LOCK:
        size = len(_PLANS)
    return {
        "size": size,
        "hits": getattr(_TLS, "hits", 0),
        "misses": getattr(_TLS, "misses", 0),
    }


def clear_plans() -> None:
    """Empty the global plan cache and this thread's counters and arena."""
    with _PLANS_LOCK:
        _PLANS.clear()
    _TLS.hits = 0
    _TLS.misses = 0
    ws = getattr(_TLS, "workspace", None)
    if ws is not None:
        ws.clear()


# --------------------------------------------------------------------------- #
# Plans
# --------------------------------------------------------------------------- #
class ConvPlan:
    """Geometry and per-tap copy slices for one float conv2d shape.

    The patch matrix lives in *transposed* layout ``(N, C*kh*kw, Ho*Wo)``:
    its contiguous reshape ``(N, C, kh, kw, Ho, Wo)`` makes each kernel tap
    ``(i, j)`` a whole-array strided copy from the padded input (inner runs
    of ``Wo`` contiguous elements instead of ``kw``), and the forward GEMM
    ``wmat @ cols`` writes straight into the ``(N, F, Ho, Wo)`` output with
    no final transpose copy.  ``taps`` holds the source slices, computed
    once per shape.  The contraction stays in ``(c, i, j)`` order, so the
    GEMM sums the same terms in the same order as the reference
    ``cols @ wmat.T`` — bit-identical outputs (asserted by the tests).
    """

    def __init__(
        self,
        key: tuple,
        n: int, c: int, h: int, w: int,
        f: int, kh: int, kw: int,
        stride: int, padding: int,
        dtype: np.dtype,
    ) -> None:
        self.key = key
        self.n, self.c, self.h, self.w = n, c, h, w
        self.f, self.kh, self.kw = f, kh, kw
        self.stride, self.padding = stride, padding
        self.dtype = np.dtype(dtype)
        self.hp, self.wp = h + 2 * padding, w + 2 * padding
        self.ho = (self.hp - kh) // stride + 1
        self.wo = (self.wp - kw) // stride + 1
        self.rows = self.ho * self.wo
        self.ckk = c * kh * kw
        self.padded_shape = (n, c, self.hp, self.wp)
        # A pointwise conv needs no patch matrix at all: the (unpadded)
        # input reshaped to (N, C, H*W) *is* the transposed patch matrix.
        self.pointwise = kh == 1 and kw == 1 and stride == 1 and padding == 0
        # Non-overlapping windows scatter the backward with one reshape
        # assignment (same predicate as the reference _col2im fast path).
        self.scatter_fast = (
            stride >= kh and stride >= kw
            and self.hp == stride * self.ho and self.wp == stride * self.wo
        )
        self.taps = [
            (
                i,
                j,
                slice(i, i + stride * self.ho, stride),
                slice(j, j + stride * self.wo, stride),
            )
            for i in range(kh)
            for j in range(kw)
        ]

    def pad_input(self, x: np.ndarray, ws: Workspace) -> np.ndarray:
        """The padded input, reusing the arena's pad buffer.

        The border is zeroed once per (re)allocation and never written
        again — only the interior is refreshed — so steady-state padding
        costs one interior copy, not a full np.pad allocation.
        ``padding == 0`` returns ``x`` itself.
        """
        if self.padding == 0:
            return x
        key = (self.key, "pad")
        xp = ws.request(key, self.padded_shape, self.dtype)
        if not ws.is_ready(key):
            xp[...] = 0
            ws.mark_ready(key)
        p = self.padding
        np.copyto(xp[:, :, p : p + self.h, p : p + self.w], x)
        return xp

    def im2col(self, xp: np.ndarray, ws: Workspace, persist: bool) -> np.ndarray:
        """The ``(N, C*kh*kw, Ho*Wo)`` patch matrix: one strided copy.

        A 6-D window view over the padded input is copied into the
        destination buffer in a single ``np.copyto`` — the same element
        order as the reference ``_im2col`` reshape, minus its allocation.
        ``persist=True`` allocates a fresh owned array — required when the
        result is captured by a backward closure (the weight gradient reads
        it long after the workspace slot has been recycled).  Pointwise
        convs skip the copy entirely: the reshaped input is returned as a
        view (safe to persist, since the input tensor outlives the tape).
        """
        if self.pointwise:
            return xp.reshape(self.n, self.c, self.rows)
        if persist:
            dst = owned_empty((self.n, self.ckk, self.rows), self.dtype)
        else:
            dst = ws.request((self.key, "cols"), (self.n, self.ckk, self.rows), self.dtype)
        dst6 = dst.reshape(self.n, self.c, self.kh, self.kw, self.ho, self.wo)
        sn, sc, sh, sw = xp.strides
        windows = as_strided(
            xp,
            dst6.shape,
            (sn, sc, sh, sw, sh * self.stride, sw * self.stride),
        )
        np.copyto(dst6, windows)
        return dst.reshape(self.n, self.ckk, self.rows)

    def col2im(self, dcols: np.ndarray, ws: Workspace) -> np.ndarray:
        """Scatter-add patch gradients back to the padded input gradient.

        With padding the result is a workspace buffer — callers slice the
        interior out, and ``_accumulate`` copies views, so the buffer never
        escapes.  Without padding the whole array *is* the input gradient
        and may be adopted by ``_accumulate``, so it must be owned.
        """
        blocks = dcols.reshape(self.n, self.c, self.kh, self.kw, self.ho, self.wo)
        if self.pointwise:
            # dcols is workspace scratch; the input gradient escapes, so copy.
            dx = owned_empty(self.padded_shape, dcols.dtype)
            np.copyto(dx, dcols.reshape(self.padded_shape))
            return dx
        if self.padding == 0:
            dx = owned_zeros(self.padded_shape, dcols.dtype)
        else:
            dx = ws.zeros((self.key, "dxp"), self.padded_shape, dcols.dtype)
        if self.scatter_fast:
            view = dx.reshape(self.n, self.c, self.ho, self.stride, self.wo, self.stride)
            view[:, :, :, : self.kh, :, : self.kw] = blocks.transpose(0, 1, 4, 2, 5, 3)
            return dx
        for i, j, si, sj in self.taps:
            dx[:, :, si, sj] += blocks[:, :, i, j]
        return dx


class AvgPoolPlan:
    """Geometry for one avg_pool2d shape (fast-path predicate included)."""

    def __init__(
        self, key: tuple, n: int, c: int, h: int, w: int,
        kernel: int, stride: int, dtype: np.dtype,
    ) -> None:
        self.key = key
        self.n, self.c, self.h, self.w = n, c, h, w
        self.kernel, self.stride = kernel, stride
        self.dtype = np.dtype(dtype)
        self.inv = 1.0 / (kernel * kernel)
        self.nonoverlap = stride == kernel and h % kernel == 0 and w % kernel == 0
        if self.nonoverlap:
            self.ho, self.wo = h // kernel, w // kernel
        else:
            self.ho = (h - kernel) // stride + 1
            self.wo = (w - kernel) // stride + 1


class QuantConvPlan:
    """Geometry for one int8 quant_conv2d shape (NHWC tap accumulation)."""

    def __init__(
        self,
        key: tuple,
        n: int, c: int, h: int, w: int,
        f: int, kh: int, kw: int,
        stride: int, padding: int,
        dtype: np.dtype,
    ) -> None:
        self.key = key
        self.n, self.c, self.h, self.w = n, c, h, w
        self.f, self.kh, self.kw = f, kh, kw
        self.stride, self.padding = stride, padding
        self.dtype = np.dtype(dtype)  # the float input dtype
        self.hp, self.wp = h + 2 * padding, w + 2 * padding
        self.ho = (self.hp - kh) // stride + 1
        self.wo = (self.wp - kw) // stride + 1
        self.rows = n * self.ho * self.wo
        self.nhwc_shape = (n, self.hp, self.wp, c)

    def quantize_nhwc(
        self, x: np.ndarray, inv_scale: float, ws: Workspace
    ) -> np.ndarray:
        """Quantize ``x`` (NCHW float) straight into the padded NHWC int8
        buffer: scale/round/clip in a float scratch, then one strided
        cast-copy into the interior.  Borders are zeroed once per slot."""
        scratch = ws.request((self.key, "qf"), x.shape, x.dtype)
        np.multiply(x, inv_scale, out=scratch)
        np.rint(scratch, out=scratch)
        np.clip(scratch, -127, 127, out=scratch)
        key = (self.key, "nhwc")
        nhwc = ws.request(key, self.nhwc_shape, np.int8)
        if not ws.is_ready(key):
            nhwc[...] = 0
            ws.mark_ready(key)
        p = self.padding
        np.copyto(
            nhwc[:, p : p + self.h, p : p + self.w, :],
            scratch.transpose(0, 2, 3, 1),
            casting="unsafe",
        )
        return nhwc


def conv_plan(
    n: int, c: int, h: int, w: int,
    f: int, kh: int, kw: int,
    stride: int, padding: int, dtype,
) -> ConvPlan:
    key = ("conv2d", n, c, h, w, f, kh, kw, stride, padding, np.dtype(dtype))
    return _get_plan(
        key, lambda: ConvPlan(key, n, c, h, w, f, kh, kw, stride, padding, dtype)
    )


def avg_pool_plan(
    n: int, c: int, h: int, w: int, kernel: int, stride: int, dtype
) -> AvgPoolPlan:
    key = ("avg_pool2d", n, c, h, w, kernel, stride, np.dtype(dtype))
    return _get_plan(key, lambda: AvgPoolPlan(key, n, c, h, w, kernel, stride, dtype))


def quant_conv_plan(
    n: int, c: int, h: int, w: int,
    f: int, kh: int, kw: int,
    stride: int, padding: int, dtype,
) -> QuantConvPlan:
    key = ("quant_conv2d", n, c, h, w, f, kh, kw, stride, padding, np.dtype(dtype))
    return _get_plan(
        key,
        lambda: QuantConvPlan(key, n, c, h, w, f, kh, kw, stride, padding, dtype),
    )
