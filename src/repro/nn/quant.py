"""Int8/fp16 quantized inference for the ``repro.nn`` substrate.

Real reduced-precision execution behind the C7/C8 quantization story: the
search can *measure* a quantized scheme's latency instead of modelling it.

Two modes, selected by :func:`quantize_module`:

* ``"int8"`` — per-channel symmetric weight quantization (scale per output
  channel, zero-point 0) plus per-tensor activation quantization (dynamic
  per-batch absmax, or static scales frozen from calibration batches).
  Inference runs on the int8 kernels below.
* ``"fp16"`` — storage-only half precision: weights live in float16 buffers
  (half the bytes) and are cast back to float32 for the existing fused
  kernels.  No accuracy surprises, no speedup claim.

The int8 conv kernel is an **NHWC tap-accumulation implicit GEMM**: the
quantized activation is laid out channels-last, and for each of the
``kh*kw`` kernel taps one strided slice is cast to float32 (a single fused
copy+cast) and multiplied against that tap's ``(C, F)`` weight matrix with
BLAS, accumulating in float32.  No im2col buffer is materialised — the cast
slices are the only copies, which is what makes the kernel faster than the
float path instead of merely smaller.

Accumulating integer products in float32 BLAS is *exact* int32 arithmetic
while every partial sum stays within float32's 2**24 integer window: each
product is at most 127 * 127 = 16129, so sums are exact up to a fan-in of
~1040 (int8 pairs), which covers every conv in the ResNet zoo
(C*kh*kw <= 64*9 = 576).  Larger fan-ins (VGG's 512*9) can round the last
couple of ulps per accumulation — orders of magnitude below the
quantization error itself; the kernel tests bound it against an exact
int32 reference.

BatchNorm folding happens at quantize time (:func:`fold_batchnorm`): each
``Conv2d -> BatchNorm2d`` pair adjacent in registration order is collapsed
into the conv's weights/bias and the BN becomes :class:`Identity`, so the
quantized graph runs one kernel where the float graph ran two.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

import numpy as np

from . import functional as F
from .functional import _profile_sink
from .layers import BatchNorm2d, Conv2d, Identity, Linear, Module, Parameter
from .tensor import Tensor, _register_op, no_grad
from .workspace import get_workspace, owned_empty, plans_enabled, quant_conv_plan

#: modes accepted by quantize_module
QUANT_MODES = ("int8", "fp16")

#: symmetric int8 range: [-127, 127] keeps the scale sign-symmetric
QMAX = 127

#: floor for scales so all-zero tensors quantize without dividing by zero
_EPS = 1e-12


# --------------------------------------------------------------------------- #
# Weight quantization / dequantization
# --------------------------------------------------------------------------- #
def quantize_weight(
    weight: np.ndarray, axis: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-channel symmetric int8 quantization of a weight array.

    ``axis`` is the output-channel axis (0 for both ``(F, C, kh, kw)`` conv
    weights and ``(out, in)`` linear weights).  Returns ``(qweight, scale)``
    with ``qweight`` int8 and ``scale`` float32 of shape ``(F,)`` such that
    ``qweight * scale[..., None] ~= weight``.  Zero-points are always 0.
    """
    w = np.asarray(weight, dtype=np.float32)
    reduce_axes = tuple(i for i in range(w.ndim) if i != axis)
    absmax = np.abs(w).max(axis=reduce_axes) if w.size else np.zeros(w.shape[axis])
    scale = (np.maximum(absmax, _EPS) / QMAX).astype(np.float32)
    shape = [1] * w.ndim
    shape[axis] = -1
    q = np.clip(np.rint(w / scale.reshape(shape)), -QMAX, QMAX).astype(np.int8)
    return q, scale


def dequantize_weight(
    qweight: np.ndarray, scale: np.ndarray, axis: int = 0
) -> np.ndarray:
    """Inverse of :func:`quantize_weight` (up to rounding error)."""
    shape = [1] * qweight.ndim
    shape[axis] = -1
    return qweight.astype(np.float32) * np.asarray(scale, dtype=np.float32).reshape(
        shape
    )


def quantize_activation(
    x: np.ndarray, scale: Optional[float] = None
) -> Tuple[np.ndarray, float]:
    """Per-tensor symmetric int8 quantization of an activation array.

    With ``scale=None`` the scale is dynamic — computed from this batch's
    absmax — which is the calibration-free default.
    """
    if scale is None:
        absmax = float(np.max(np.abs(x))) if x.size else 0.0
        scale = max(absmax, _EPS) / QMAX
    q = np.clip(np.rint(x * (1.0 / scale)), -QMAX, QMAX).astype(np.int8)
    return q, scale


# --------------------------------------------------------------------------- #
# Quantized kernels
# --------------------------------------------------------------------------- #
def _inference_only_backward(_grad: np.ndarray) -> None:
    raise RuntimeError(
        "quantized kernels are inference-only and have no backward pass; "
        "quantize after training (post-training quantization)"
    )


def quant_conv2d(
    x: Tensor,
    qweight: np.ndarray,
    weight_scale: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
    activation: Optional[str] = None,
    x_scale: Optional[float] = None,
    wtaps: Optional[np.ndarray] = None,
) -> Tensor:
    """Int8 2D convolution for NCHW input and int8 ``(F, C, kh, kw)`` weights.

    The input is quantized per-tensor (``x_scale``, dynamic when ``None``),
    laid out NHWC, and convolved by tap accumulation: per kernel tap one
    strided slice -> float32 cast -> BLAS GEMM against the tap's ``(C, F)``
    weight matrix, accumulated in float32 (exact int32 semantics — see the
    module docstring).  The accumulator is then requantized with the fused
    per-channel ``x_scale * weight_scale`` multiply, the bias added, and an
    optional ReLU clamped in place.  ``wtaps`` accepts the precomputed
    ``(kh, kw, C, F)`` float32 weight layout so persistent layers pay the
    transpose once.
    """
    if activation not in (None, "relu"):
        raise ValueError(
            f"quant_conv2d activation must be None or 'relu', got {activation!r}"
        )
    f, c_w, kh, kw = qweight.shape
    n, c, h, w = x.shape
    if c != c_w:
        raise ValueError(f"quant_conv2d channel mismatch: input {c} vs weight {c_w}")
    ho = (h + 2 * padding - kh) // stride + 1
    wo = (w + 2 * padding - kw) // stride + 1
    sink = _profile_sink()
    if sink is not None:
        macs = n * ho * wo * f * c * kh * kw
        sink("quant_conv2d", 2 * macs + (n * ho * wo * f if bias is not None else 0))

    if wtaps is None:
        wtaps = np.ascontiguousarray(
            qweight.transpose(2, 3, 1, 0).astype(np.float32)
        )  # (kh, kw, C, F)

    rows = n * ho * wo
    plan = (
        quant_conv_plan(n, c, h, w, f, kh, kw, stride, padding, x.data.dtype)
        if plans_enabled()
        else None
    )
    if plan is not None:
        # Planned path: quantize straight into the reusable padded NHWC
        # buffer, then tap-accumulate through workspace scratch.  Same
        # arithmetic, same op order — bit-identical to the reference below.
        if x_scale is None:
            absmax = float(np.max(np.abs(x.data))) if x.data.size else 0.0
            x_scale = max(absmax, _EPS) / QMAX
        ws = get_workspace()
        xq = plan.quantize_nhwc(x.data, 1.0 / x_scale, ws)
        acc = ws.zeros((plan.key, "acc"), (rows, f), np.float32)
        cast = ws.request((plan.key, "cast"), (n, ho, wo, c), np.float32)
        tap = ws.request((plan.key, "tap"), (rows, f), np.float32)
        for i in range(kh):
            for j in range(kw):
                patch = xq[
                    :, i : i + ho * stride : stride, j : j + wo * stride : stride, :
                ]
                np.copyto(cast, patch)  # one fused contiguous cast per tap
                np.matmul(cast.reshape(rows, c), wtaps[i, j], out=tap)
                acc += tap
    else:
        xq, x_scale = quantize_activation(x.data, x_scale)
        if padding:
            xq = np.pad(xq, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        xq = np.ascontiguousarray(xq.transpose(0, 2, 3, 1))  # NHWC int8
        acc = np.zeros((rows, f), dtype=np.float32)
        for i in range(kh):
            for j in range(kw):
                patch = xq[
                    :, i : i + ho * stride : stride, j : j + wo * stride : stride, :
                ]
                # astype is the only copy: one fused contiguous cast per tap.
                acc += patch.astype(np.float32).reshape(rows, c) @ wtaps[i, j]

    acc *= (np.float32(x_scale) * np.asarray(weight_scale, dtype=np.float32))[None, :]
    if bias is not None:
        acc += np.asarray(bias, dtype=np.float32)[None, :]
    if activation == "relu":
        np.maximum(acc, 0.0, out=acc)
    if plan is not None:
        out = owned_empty((n, f, ho, wo), np.float32)
        np.copyto(out, acc.reshape(n, ho, wo, f).transpose(0, 3, 1, 2))
    else:
        out = np.ascontiguousarray(acc.reshape(n, ho, wo, f).transpose(0, 3, 1, 2))
    result = x._make(out, (x,), _inference_only_backward)
    return _register_op(result, "quant_conv2d")


def quant_linear(
    x: Tensor,
    qweight: np.ndarray,
    weight_scale: np.ndarray,
    bias: Optional[np.ndarray] = None,
    x_scale: Optional[float] = None,
    wmat: Optional[np.ndarray] = None,
) -> Tensor:
    """Int8 affine map for ``(N, in)`` input and int8 ``(out, in)`` weight.

    Same arithmetic scheme as :func:`quant_conv2d`: per-tensor input scale,
    per-output-channel weight scales, float32-BLAS accumulation over integer
    values, fused requantization.  ``wmat`` accepts the precomputed
    ``(in, out)`` float32 weight transpose.
    """
    out_features, in_features = qweight.shape
    sink = _profile_sink()
    if sink is not None:
        rows = int(np.prod(x.shape[:-1]))
        macs = rows * out_features * in_features
        sink("quant_linear", 2 * macs + (rows * out_features if bias is not None else 0))

    xq, x_scale = quantize_activation(x.data, x_scale)
    if wmat is None:
        wmat = np.ascontiguousarray(qweight.T.astype(np.float32))  # (in, out)
    acc = xq.astype(np.float32) @ wmat
    acc *= (np.float32(x_scale) * np.asarray(weight_scale, dtype=np.float32))[None, :]
    if bias is not None:
        acc += np.asarray(bias, dtype=np.float32)[None, :]
    result = x._make(acc, (x,), _inference_only_backward)
    return _register_op(result, "quant_linear")


# --------------------------------------------------------------------------- #
# Quantized layers
# --------------------------------------------------------------------------- #
class QuantizedConv2d(Module):
    """Inference-only Conv2d with int8 (or float16) weight storage.

    All quantized state lives in *buffers* (never :class:`Parameter`, which
    would force-cast back to the float default dtype): ``qweight`` int8 or
    float16, ``weight_scale`` float32 per output channel (int8 mode),
    ``qbias`` float32, and — once calibrated — a one-element ``x_scale``.
    ``num_parameters()`` reports the *logical* element count (weight + bias)
    so P(M) tracks model structure, not storage precision; the precision is
    exposed as :attr:`effective_bits` and budgeted via ``weight_bits`` in
    the static cost model.
    """

    def __init__(
        self,
        qweight: np.ndarray,
        weight_scale: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
        stride: int = 1,
        padding: int = 0,
        mode: str = "int8",
        x_scale: Optional[float] = None,
    ):
        super().__init__()
        if mode not in QUANT_MODES:
            raise ValueError(f"mode must be one of {QUANT_MODES}, got {mode!r}")
        if mode == "int8" and weight_scale is None:
            raise ValueError("int8 mode needs per-channel weight scales")
        self.mode = mode
        self.stride = stride
        self.padding = padding
        self.kernel_size = int(qweight.shape[2])
        self.register_buffer("qweight", np.asarray(qweight))
        if mode == "int8":
            self.register_buffer(
                "weight_scale", np.asarray(weight_scale, dtype=np.float32)
            )
        if bias is not None:
            self.register_buffer("qbias", np.asarray(bias, dtype=np.float32))
        else:
            self.qbias = None
        if x_scale is not None:
            self.register_buffer("x_scale", np.asarray([x_scale], dtype=np.float32))
        else:
            self.x_scale = None
        self._wtaps: Optional[np.ndarray] = None
        self._observing = False
        self.observed_absmax = 0.0
        self.training = False

    @classmethod
    def from_float(cls, conv: Conv2d, mode: str = "int8") -> "QuantizedConv2d":
        """Quantize a (BN-folded) float Conv2d into a frozen inference layer."""
        bias = conv.bias.data if conv.bias is not None else None
        if mode == "fp16":
            return cls(
                conv.weight.data.astype(np.float16),
                bias=bias,
                stride=conv.stride,
                padding=conv.padding,
                mode="fp16",
            )
        qweight, scale = quantize_weight(conv.weight.data)
        return cls(
            qweight, scale, bias=bias, stride=conv.stride, padding=conv.padding
        )

    @property
    def in_channels(self) -> int:
        return int(self.qweight.shape[1])

    @property
    def out_channels(self) -> int:
        return int(self.qweight.shape[0])

    @property
    def effective_bits(self) -> int:
        return 8 if self.mode == "int8" else 16

    def num_parameters(self) -> int:
        total = int(self.qweight.size)
        if self.qbias is not None:
            total += int(self.qbias.size)
        return total

    def forward(self, x: Tensor) -> Tensor:
        if self._observing:
            absmax = float(np.max(np.abs(x.data))) if x.size else 0.0
            self.observed_absmax = max(self.observed_absmax, absmax)
        if self.mode == "fp16":
            weight = Tensor(self.qweight.astype(np.float32))
            bias = Tensor(self.qbias) if self.qbias is not None else None
            return F.conv2d(x, weight, bias, self.stride, self.padding)
        if self._wtaps is None:
            self._wtaps = np.ascontiguousarray(
                self.qweight.transpose(2, 3, 1, 0).astype(np.float32)
            )
        scale = float(self.x_scale[0]) if self.x_scale is not None else None
        if self._observing:
            scale = None  # calibration forwards stay dynamic
        return quant_conv2d(
            x,
            self.qweight,
            self.weight_scale,
            self.qbias,
            self.stride,
            self.padding,
            x_scale=scale,
            wtaps=self._wtaps,
        )

    def __repr__(self) -> str:
        return (
            f"QuantizedConv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"mode={self.mode!r})"
        )


class QuantizedLinear(Module):
    """Inference-only Linear with int8 (or float16) weight storage."""

    def __init__(
        self,
        qweight: np.ndarray,
        weight_scale: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
        mode: str = "int8",
        x_scale: Optional[float] = None,
    ):
        super().__init__()
        if mode not in QUANT_MODES:
            raise ValueError(f"mode must be one of {QUANT_MODES}, got {mode!r}")
        if mode == "int8" and weight_scale is None:
            raise ValueError("int8 mode needs per-channel weight scales")
        self.mode = mode
        self.register_buffer("qweight", np.asarray(qweight))
        if mode == "int8":
            self.register_buffer(
                "weight_scale", np.asarray(weight_scale, dtype=np.float32)
            )
        if bias is not None:
            self.register_buffer("qbias", np.asarray(bias, dtype=np.float32))
        else:
            self.qbias = None
        if x_scale is not None:
            self.register_buffer("x_scale", np.asarray([x_scale], dtype=np.float32))
        else:
            self.x_scale = None
        self._wmat: Optional[np.ndarray] = None
        self._observing = False
        self.observed_absmax = 0.0
        self.training = False

    @classmethod
    def from_float(cls, layer: Linear, mode: str = "int8") -> "QuantizedLinear":
        bias = layer.bias.data if layer.bias is not None else None
        if mode == "fp16":
            return cls(layer.weight.data.astype(np.float16), bias=bias, mode="fp16")
        qweight, scale = quantize_weight(layer.weight.data)
        return cls(qweight, scale, bias=bias)

    @property
    def in_features(self) -> int:
        return int(self.qweight.shape[1])

    @property
    def out_features(self) -> int:
        return int(self.qweight.shape[0])

    @property
    def effective_bits(self) -> int:
        return 8 if self.mode == "int8" else 16

    def num_parameters(self) -> int:
        total = int(self.qweight.size)
        if self.qbias is not None:
            total += int(self.qbias.size)
        return total

    def forward(self, x: Tensor) -> Tensor:
        if self._observing:
            absmax = float(np.max(np.abs(x.data))) if x.size else 0.0
            self.observed_absmax = max(self.observed_absmax, absmax)
        if self.mode == "fp16":
            weight = Tensor(self.qweight.astype(np.float32))
            bias = Tensor(self.qbias) if self.qbias is not None else None
            return F.linear(x, weight, bias)
        if self._wmat is None:
            self._wmat = np.ascontiguousarray(self.qweight.T.astype(np.float32))
        scale = float(self.x_scale[0]) if self.x_scale is not None else None
        if self._observing:
            scale = None
        return quant_linear(
            x, self.qweight, self.weight_scale, self.qbias,
            x_scale=scale, wmat=self._wmat,
        )

    def __repr__(self) -> str:
        return (
            f"QuantizedLinear({self.in_features}, {self.out_features}, "
            f"mode={self.mode!r})"
        )


# --------------------------------------------------------------------------- #
# Module-level transforms
# --------------------------------------------------------------------------- #
def _fold_bn_into_conv(conv: Conv2d, bn: BatchNorm2d) -> None:
    """Collapse an eval-mode BatchNorm into the conv that feeds it."""
    inv_std = 1.0 / np.sqrt(bn.running_var + bn.eps)
    scale = (bn.gamma.data * inv_std).astype(np.float32)
    conv.weight.data = conv.weight.data * scale[:, None, None, None]
    base = conv.bias.data if conv.bias is not None else 0.0
    folded = (base - bn.running_mean) * scale + bn.beta.data
    if conv.bias is None:
        conv.bias = Parameter(folded)
    else:
        conv.bias.data = np.asarray(folded, dtype=conv.weight.data.dtype)


def fold_batchnorm(model: Module) -> int:
    """Fold every ``Conv2d -> BatchNorm2d`` pair adjacent in registration
    order into the conv; each folded BN is replaced by :class:`Identity`.

    Forward-safe because models apply BN as ``self.bn(self.conv(x))`` — the
    Identity passes the (now already-normalised) conv output through.
    Returns the number of BNs folded.
    """
    folded = 0
    for module in list(model.modules()):
        prev: Optional[Module] = None
        for name, child in list(module._modules.items()):
            if type(child) is BatchNorm2d and type(prev) is Conv2d:
                _fold_bn_into_conv(prev, child)
                module.add_module(name, Identity())
                folded += 1
                prev = None
            else:
                prev = child
    return folded


def calibrate_module(
    model: Module, batches: Iterable[Union[np.ndarray, Tensor]]
) -> int:
    """Freeze static activation scales from observed calibration ranges.

    Runs each batch through the model (grad-free, dynamic quantization) with
    every int8 layer recording its input absmax, then installs per-layer
    static ``x_scale`` buffers.  Returns the number of layers calibrated.
    """
    layers = [
        m
        for m in model.modules()
        if isinstance(m, (QuantizedConv2d, QuantizedLinear)) and m.mode == "int8"
    ]
    for layer in layers:
        layer._observing = True
        layer.observed_absmax = 0.0
    try:
        with no_grad():
            for batch in batches:
                x = batch if isinstance(batch, Tensor) else Tensor(
                    np.asarray(batch, dtype=np.float32)
                )
                model(x)
    finally:
        for layer in layers:
            layer._observing = False
            absmax = max(layer.observed_absmax, _EPS)
            layer.register_buffer(
                "x_scale", np.asarray([absmax / QMAX], dtype=np.float32)
            )
    return len(layers)


def quantize_module(
    model: Module,
    mode: str = "int8",
    calibration: Optional[Iterable[Union[np.ndarray, Tensor]]] = None,
    fold_bn: bool = True,
) -> Module:
    """Post-training-quantize a model in place for reduced-precision inference.

    ``mode="int8"`` folds BatchNorms, swaps every exact ``Conv2d``/``Linear``
    for its quantized twin (per-channel symmetric weights), and — when
    ``calibration`` batches are given — freezes static activation scales via
    :func:`calibrate_module`; without calibration, activation scales stay
    dynamic per batch.  ``mode="fp16"`` performs the same folding/swap but
    stores weights as float16 and computes in float32 (storage-only).

    The model is switched to eval mode and returned for chaining.  Layers
    that are *subclasses* of Conv2d/Linear (factorized layers etc.) are left
    untouched; their inner exact convs are still caught by the walk.
    """
    if mode not in QUANT_MODES:
        raise ValueError(f"mode must be one of {QUANT_MODES}, got {mode!r}")
    model.eval()
    if fold_bn:
        fold_batchnorm(model)
    replaced = 0
    for module in list(model.modules()):
        for name, child in list(module._modules.items()):
            if type(child) is Conv2d:
                module.add_module(name, QuantizedConv2d.from_float(child, mode=mode))
                replaced += 1
            elif type(child) is Linear:
                module.add_module(name, QuantizedLinear.from_float(child, mode=mode))
                replaced += 1
    if replaced == 0:
        raise ValueError("quantize_module found no exact Conv2d/Linear to quantize")
    if calibration is not None and mode == "int8":
        calibrate_module(model, calibration)
    return model


def quantized_bits(model: Module) -> Optional[int]:
    """The weight precision a quantized model executes at, or ``None``.

    Returns 8/16 when the model contains quantized layers (the max across
    layers if mixed), ``None`` for a pure float model — the executed-bits
    figure the evaluator checks against the cost model's ``weight_bits``.
    """
    bits = [
        m.effective_bits
        for m in model.modules()
        if isinstance(m, (QuantizedConv2d, QuantizedLinear))
    ]
    return max(bits) if bits else None
