"""Neural-network operations built on :mod:`repro.nn.tensor`.

Convolution uses an im2col formulation with a hand-written backward pass (the
scatter-add of col2im is much faster written explicitly than composed from
primitive ops).  Everything else — batch norm, softmax, pooling — is composed
from differentiable :class:`~repro.nn.tensor.Tensor` primitives so autodiff
derives the gradients.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .tensor import Tensor, _register_op

# Optional sink used by repro.nn.profile to count FLOPs during a forward
# pass.  When set, conv2d/linear call ``_PROFILE_SINK(name, flops)``.
_PROFILE_SINK = None


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """(N, C, H, W) -> (N, Ho*Wo, C*kh*kw) patch matrix."""
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (N, C, Ho, Wo, kh, kw)
    n, c, ho, wo = windows.shape[:4]
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, ho * wo, c * kh * kw)
    return np.ascontiguousarray(cols)


def _col2im(
    dcols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    out_hw: Tuple[int, int],
) -> np.ndarray:
    """Scatter-add patch gradients back to the (padded) input gradient."""
    n, c, hp, wp = x_shape
    ho, wo = out_hw
    dx = np.zeros(x_shape, dtype=dcols.dtype)
    blocks = dcols.reshape(n, ho, wo, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    for i in range(kh):
        for j in range(kw):
            dx[:, :, i : i + stride * ho : stride, j : j + stride * wo : stride] += (
                blocks[:, :, i, j]
            )
    return dx


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2D convolution for NCHW input and (F, C, kh, kw) weights."""
    f, c_w, kh, kw = weight.shape
    n, c, h, w = x.shape
    if c != c_w:
        raise ValueError(f"conv2d channel mismatch: input {c} vs weight {c_w}")
    xp = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    ho = (h + 2 * padding - kh) // stride + 1
    wo = (w + 2 * padding - kw) // stride + 1
    cols = _im2col(xp, kh, kw, stride)  # (N, Ho*Wo, C*kh*kw)
    wmat = weight.data.reshape(f, -1)  # (F, C*kh*kw)
    if _PROFILE_SINK is not None:
        macs = n * ho * wo * f * c * kh * kw
        _PROFILE_SINK("conv2d", 2 * macs + (n * ho * wo * f if bias is not None else 0))
    out = cols @ wmat.T  # (N, Ho*Wo, F)
    if bias is not None:
        out = out + bias.data
    out = out.transpose(0, 2, 1).reshape(n, f, ho, wo)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        gout = grad.reshape(n, f, ho * wo).transpose(0, 2, 1)  # (N, Ho*Wo, F)
        if weight.requires_grad:
            dw = np.einsum("nlf,nlk->fk", gout, cols).reshape(weight.shape)
            weight._accumulate(dw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(gout.sum(axis=(0, 1)))
        if x.requires_grad:
            dcols = gout @ wmat  # (N, Ho*Wo, C*kh*kw)
            dxp = _col2im(dcols, xp.shape, kh, kw, stride, (ho, wo))
            if padding:
                dxp = dxp[:, :, padding:-padding, padding:-padding]
            x._accumulate(dxp)

    requires = any(p.requires_grad for p in parents)
    result = Tensor(out, requires_grad=requires, _parents=parents if requires else ())
    if requires:
        result._backward = backward
    return _register_op(result, "conv2d")


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` for (N, in) input and (out, in) weight."""
    if _PROFILE_SINK is not None:
        macs = int(np.prod(x.shape[:-1])) * weight.shape[0] * weight.shape[1]
        _PROFILE_SINK("linear", 2 * macs)
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Max pooling over NCHW spatial dims."""
    stride = stride or kernel
    n, c, h, w = x.shape
    windows = sliding_window_view(x.data, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (N, C, Ho, Wo, k, k)
    ho, wo = windows.shape[2], windows.shape[3]
    flat = windows.reshape(n, c, ho, wo, kernel * kernel)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        dx = np.zeros_like(x.data)
        ki, kj = np.divmod(arg, kernel)
        ii = (np.arange(ho) * stride)[None, None, :, None] + ki
        jj = (np.arange(wo) * stride)[None, None, None, :] + kj
        nn_idx = np.arange(n)[:, None, None, None]
        cc_idx = np.arange(c)[None, :, None, None]
        np.add.at(dx, (nn_idx, cc_idx, ii, jj), grad)
        x._accumulate(dx)

    result = Tensor(out, requires_grad=x.requires_grad, _parents=(x,) if x.requires_grad else ())
    if x.requires_grad:
        result._backward = backward
    return _register_op(result, "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Average pooling (non-overlapping fast path when stride == kernel)."""
    stride = stride or kernel
    n, c, h, w = x.shape
    if stride == kernel and h % kernel == 0 and w % kernel == 0:
        reshaped = x.reshape(n, c, h // kernel, kernel, w // kernel, kernel)
        return reshaped.mean(axis=5).mean(axis=3)
    windows = sliding_window_view(x.data, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]
    ho, wo = windows.shape[2], windows.shape[3]
    out = windows.mean(axis=(4, 5))

    def backward(grad: np.ndarray) -> None:
        dx = np.zeros_like(x.data)
        share = grad / (kernel * kernel)
        for i in range(kernel):
            for j in range(kernel):
                dx[:, :, i : i + stride * ho : stride, j : j + stride * wo : stride] += share
        x._accumulate(dx)

    result = Tensor(out, requires_grad=x.requires_grad, _parents=(x,) if x.requires_grad else ())
    if x.requires_grad:
        result._backward = backward
    return _register_op(result, "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the spatial dims of NCHW, returning (N, C)."""
    return x.mean(axis=(2, 3))


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over channel dim of NCHW (or feature dim of NF).

    ``running_mean``/``running_var`` are updated in place during training.
    """
    axes = (0, 2, 3) if x.ndim == 4 else (0,)
    shape = (1, -1, 1, 1) if x.ndim == 4 else (1, -1)
    if training:
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean.data.reshape(-1)
        running_var *= 1.0 - momentum
        running_var += momentum * var.data.reshape(-1)
        x_hat = (x - mean) / (var + eps).sqrt()
    else:
        mean = running_mean.reshape(shape)
        var = running_var.reshape(shape)
        x_hat = (x - mean) * (1.0 / np.sqrt(var + eps))
    return x_hat * gamma.reshape(shape) + beta.reshape(shape)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.data.max(axis=axis, keepdims=True)
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.data.max(axis=axis, keepdims=True)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity at eval time."""
    if not training or p <= 0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def flatten(x: Tensor) -> Tensor:
    return x.reshape(x.shape[0], -1)
