"""Neural-network operations built on :mod:`repro.nn.tensor`.

The hot ops are *fused kernels*: single registered ops whose forward is one
numpy expression and whose backward is hand-written in closed form, instead
of a chain of primitive tape nodes that each allocate a fresh array.

* :func:`conv2d` — im2col + BLAS matmul forward, explicit col2im backward,
  with an optional fused ReLU (``activation="relu"``);
* :func:`batch_norm` — one op for both modes: batch statistics with the
  closed-form batchnorm backward during training, a precomputed scale/shift
  multiply-add at eval time;
* :func:`add_relu` — the ResNet residual join ``relu(a + b)`` as one kernel;
* pooling backward passes are vectorised scatter-adds (a single reshape
  scatter when windows do not overlap, per-tap strided adds otherwise).

``conv2d`` and ``avg_pool2d`` execute through *shape-specialized plans*
(:mod:`repro.nn.workspace`): geometry and im2col gather indices are computed
once per shape and scratch buffers come from the thread-local workspace
arena instead of the allocator.  Planned execution is bit-identical to the
reference kernels (kept as the ``no_plans()`` fallback path below); every
hot-path allocation that *escapes* a kernel goes through
``workspace.owned_zeros``/``owned_empty`` so repolint R006 can audit it.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .tensor import Tensor, _register_op, _unbroadcast, is_grad_enabled
from .workspace import (
    avg_pool_plan,
    conv_plan,
    get_workspace,
    owned_empty,
    owned_zeros,
    pad2d,
    plans_enabled,
)

# Optional sink used by repro.nn.profile to count FLOPs during a forward
# pass.  When a thread sets ``_PROFILE.sink``, conv2d/linear/batch_norm/
# add_relu on *that thread* call ``sink(name, flops)``.  Thread-local on
# purpose: concurrent engines (one per search job in `repro serve`) profile
# models on their own threads, and a shared global sink would interleave
# their counts — corrupting base FLOPs and, through them, the evaluator
# fingerprints that key the shared snapshot store.
_PROFILE = threading.local()


def _profile_sink():
    """This thread's FLOP-counting sink, or ``None`` when not profiling."""
    return getattr(_PROFILE, "sink", None)


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """(N, C, H, W) -> (N, C*kh*kw, Ho*Wo) transposed patch matrix.

    Transposed layout on purpose: ``wmat @ cols`` then yields the NCHW
    output directly (no final transpose copy), and the planned kernels
    (:class:`~repro.nn.workspace.ConvPlan`) fill the very same layout with
    per-tap copies — identical GEMM operands on both paths is what makes
    planned execution bit-identical to this reference.
    """
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (N, C, Ho, Wo, kh, kw)
    n, c, ho, wo = windows.shape[:4]
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, ho * wo)
    return np.ascontiguousarray(cols)


def _col2im(
    dcols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    out_hw: Tuple[int, int],
) -> np.ndarray:
    """Scatter-add patch gradients back to the (padded) input gradient.

    ``dcols`` is the transposed patch-gradient matrix ``(N, C*kh*kw,
    Ho*Wo)``.  Non-overlapping windows (stride >= kernel) scatter with one
    vectorised reshape assignment; overlapping windows accumulate one
    whole-array strided add per kernel tap (kh*kw adds, each fully
    vectorised, in the same tap order as the planned scatter).
    """
    n, c, hp, wp = x_shape
    ho, wo = out_hw
    blocks = dcols.reshape(n, c, kh, kw, ho, wo)
    dx = owned_zeros(x_shape, dcols.dtype)
    if stride >= kh and stride >= kw and hp == stride * ho and wp == stride * wo:
        view = dx.reshape(n, c, ho, stride, wo, stride)
        view[:, :, :, :kh, :, :kw] = blocks.transpose(0, 1, 4, 2, 5, 3)
        return dx
    for i in range(kh):
        for j in range(kw):
            dx[:, :, i : i + stride * ho : stride, j : j + stride * wo : stride] += (
                blocks[:, :, i, j]
            )
    return dx


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    activation: Optional[str] = None,
) -> Tensor:
    """2D convolution for NCHW input and (F, C, kh, kw) weights.

    ``activation="relu"`` fuses the ReLU into the kernel: the clamp happens
    in place on the conv output and the backward pass masks the incoming
    gradient before the usual conv backward — no extra tape node.
    """
    if activation not in (None, "relu"):
        raise ValueError(f"conv2d activation must be None or 'relu', got {activation!r}")
    f, c_w, kh, kw = weight.shape
    n, c, h, w = x.shape
    if c != c_w:
        raise ValueError(f"conv2d channel mismatch: input {c} vs weight {c_w}")
    wmat = weight.data.reshape(f, -1)  # (F, C*kh*kw)
    ho = (h + 2 * padding - kh) // stride + 1
    wo = (w + 2 * padding - kw) // stride + 1
    plan = (
        conv_plan(n, c, h, w, f, kh, kw, stride, padding, x.data.dtype)
        if plans_enabled() and x.data.dtype == weight.data.dtype
        else None
    )
    sink = _profile_sink()
    if sink is not None:
        macs = n * ho * wo * f * c * kh * kw
        sink("conv2d", 2 * macs + (n * ho * wo * f if bias is not None else 0))
    if plan is not None:
        ws = get_workspace()
        xp_shape = plan.padded_shape
        # The patch matrix escapes into the backward closure only when the
        # weight gradient will read it — otherwise it is workspace scratch.
        cols_persist = is_grad_enabled() and weight.requires_grad
        xp = plan.pad_input(x.data, ws)
        cols = plan.im2col(xp, ws, persist=cols_persist)  # (N, C*kh*kw, Ho*Wo)
        dw_cols = cols if cols_persist else None
        # The transposed patch layout makes the GEMM output (N, F, Ho*Wo),
        # which reshapes to NCHW in place — no transpose copy.  The matmul
        # allocates the output itself: it escapes as the op result anyway,
        # and a fresh GEMM is measurably faster than one with ``out=``.
        out = np.matmul(wmat, cols).reshape(n, f, ho, wo)
        if bias is not None:
            out += bias.data.reshape(f, 1, 1)
    else:
        xp = pad2d(x.data, padding)
        xp_shape = xp.shape
        cols = _im2col(xp, kh, kw, stride)  # (N, C*kh*kw, Ho*Wo)
        dw_cols = cols
        out = np.matmul(wmat, cols).reshape(n, f, ho, wo)
        if bias is not None:
            out += bias.data.reshape(f, 1, 1)
    relu_mask = None
    if activation == "relu":
        # `out` is freshly allocated and C-contiguous on both paths, so the
        # clamp is genuinely in place.  (The previous spelling,
        # out=np.ascontiguousarray(out), silently wrote into a temporary
        # whenever `out` arrived non-contiguous.)
        np.maximum(out, 0.0, out=out)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        if relu_mask is not None:
            # Mask into a workspace buffer rather than allocating: `grad`
            # itself must stay untouched (the tape may hand it to other
            # consumers), but the masked copy is scratch local to this op.
            if plan is not None and grad.dtype == plan.dtype:
                masked = get_workspace().request(
                    (plan.key, "gmask"), grad.shape, grad.dtype
                )
                np.multiply(grad, relu_mask, out=masked)
                grad = masked
            else:
                grad = grad * relu_mask
        gmat = grad.reshape(n, f, ho * wo)  # (N, F, Ho*Wo), no copy
        if dw_cols is not None and weight.requires_grad:
            # Batched gemm per sample, then reduce over the batch.  BLAS
            # consumes the transposed view of `dw_cols` directly, so this
            # avoids the two large contiguous copies np.tensordot makes and
            # measures ~1.4-2x faster on ResNet shapes.  Shared by the
            # planned and reference paths, so their dw stays bit-identical.
            dw = np.matmul(gmat, dw_cols.transpose(0, 2, 1)).sum(axis=0)
            weight._accumulate(dw.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(gmat.sum(axis=(0, 2)))
        if x.requires_grad:
            if plan is not None and grad.dtype == plan.dtype:
                bws = get_workspace()
                dcols = bws.request(
                    (plan.key, "dcols"), (n, plan.ckk, plan.rows), plan.dtype
                )
                np.matmul(wmat.T, gmat, out=dcols)
                dxp = plan.col2im(dcols, bws)
            else:
                dcols = np.matmul(wmat.T, gmat)  # (N, C*kh*kw, Ho*Wo)
                dxp = _col2im(dcols, xp_shape, kh, kw, stride, (ho, wo))
            if padding:
                dxp = dxp[:, :, padding:-padding, padding:-padding]
            x._accumulate(dxp)

    result = x._make(out, parents, backward)
    if activation == "relu" and result.requires_grad:
        relu_mask = out > 0
    return _register_op(result, "conv2d")


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` for (N, in) input and (out, in) weight."""
    sink = _profile_sink()
    if sink is not None:
        rows = int(np.prod(x.shape[:-1]))
        macs = rows * weight.shape[0] * weight.shape[1]
        # The bias add counts one FLOP per output element, exactly as conv2d
        # counts its bias, so fused/unfused model profiles agree.
        sink("linear", 2 * macs + (rows * weight.shape[0] if bias is not None else 0))
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def add_relu(a: Tensor, b: Tensor) -> Tensor:
    """Fused ``relu(a + b)`` — the ResNet residual join as one kernel.

    One allocation for the forward value and one mask in the backward,
    instead of the add node + relu node (and their intermediates) the
    primitive composition costs.
    """
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    out = a.data + b.data
    np.maximum(out, 0.0, out=out)
    sink = _profile_sink()
    if sink is not None:
        sink("add_relu", out.size)

    def backward(grad: np.ndarray) -> None:
        g = grad * (out > 0)
        a._accumulate(_unbroadcast(g, a.shape))
        b._accumulate(_unbroadcast(g, b.shape))

    return _register_op(a._make(out, (a, b), backward), "add_relu")


def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Max pooling over NCHW spatial dims."""
    stride = stride or kernel
    n, c, h, w = x.shape
    windows = sliding_window_view(x.data, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (N, C, Ho, Wo, k, k)
    ho, wo = windows.shape[2], windows.shape[3]
    flat = windows.reshape(n, c, ho, wo, kernel * kernel)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        dx = np.zeros_like(x.data)
        ki, kj = np.divmod(arg, kernel)
        ii = (np.arange(ho) * stride)[None, None, :, None] + ki
        jj = (np.arange(wo) * stride)[None, None, None, :] + kj
        nn_idx = np.arange(n)[:, None, None, None]
        cc_idx = np.arange(c)[None, :, None, None]
        np.add.at(dx, (nn_idx, cc_idx, ii, jj), grad)
        x._accumulate(dx)

    return _register_op(x._make(out, (x,), backward), "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Average pooling as a single fused op.

    Non-overlapping windows (the common stride == kernel case) reduce with
    one reshaped mean and scatter their backward with one broadcast — no
    Python loop and no intermediate tape nodes.
    """
    stride = stride or kernel
    n, c, h, w = x.shape
    inv = 1.0 / (kernel * kernel)
    plan = (
        avg_pool_plan(n, c, h, w, kernel, stride, x.data.dtype)
        if plans_enabled()
        else None
    )
    nonoverlap = (
        plan.nonoverlap
        if plan is not None
        else stride == kernel and h % kernel == 0 and w % kernel == 0
    )
    if nonoverlap:
        ho, wo = h // kernel, w // kernel
        out = x.data.reshape(n, c, ho, kernel, wo, kernel).mean(axis=(3, 5))

        def backward(grad: np.ndarray) -> None:
            if plan is not None and grad.dtype == plan.dtype:
                ws = get_workspace()
                share = ws.request((plan.key, "share"), grad.shape, plan.dtype)
                np.multiply(grad, inv, out=share)
                share6 = share[:, :, :, None, :, None]
                dx = owned_empty((n, c, h, w), plan.dtype)
                np.copyto(
                    dx.reshape(n, c, ho, kernel, wo, kernel),
                    np.broadcast_to(share6, (n, c, ho, kernel, wo, kernel)),
                )
                x._accumulate(dx)
                return
            share = np.asarray(grad * inv)[:, :, :, None, :, None]
            dx = np.broadcast_to(share, (n, c, ho, kernel, wo, kernel))
            x._accumulate(np.ascontiguousarray(dx).reshape(n, c, h, w))

        return _register_op(x._make(out, (x,), backward), "avg_pool2d")

    windows = sliding_window_view(x.data, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]
    ho, wo = windows.shape[2], windows.shape[3]
    out = windows.mean(axis=(4, 5))

    def backward(grad: np.ndarray) -> None:
        # The input gradient escapes through _accumulate, so it is owned;
        # the plan's contribution here is the cached geometry/fast-path
        # decision, not buffer reuse.
        dx = owned_zeros(x.data.shape, x.data.dtype)
        share = grad * inv
        for i in range(kernel):
            for j in range(kernel):
                dx[:, :, i : i + stride * ho : stride, j : j + stride * wo : stride] += share
        x._accumulate(dx)

    return _register_op(x._make(out, (x,), backward), "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the spatial dims of NCHW, returning (N, C)."""
    n, c, h, w = x.shape
    out = x.data.mean(axis=(2, 3))
    inv = 1.0 / (h * w)

    def backward(grad: np.ndarray) -> None:
        dx = np.broadcast_to(np.asarray(grad * inv)[:, :, None, None], x.shape)
        x._accumulate(np.ascontiguousarray(dx))

    return _register_op(x._make(out, (x,), backward), "global_avg_pool2d")


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over channel dim of NCHW (or feature dim of NF).

    A single fused op in both modes.  Training normalises with batch
    statistics and uses the closed-form batchnorm backward; eval collapses
    the whole transform into a precomputed per-channel ``scale``/``shift``
    (materialised in ``x``'s dtype) so inference is one multiply-add.
    ``running_mean``/``running_var`` are updated in place during training.
    """
    axes = (0, 2, 3) if x.ndim == 4 else (0,)
    shape = (1, -1, 1, 1) if x.ndim == 4 else (1, -1)
    dtype = x.dtype
    sink = _profile_sink()
    if sink is not None:
        sink("batch_norm", 2 * x.size)
    if training:
        # One pass for the statistics: np.var would subtract the mean all
        # over again, and the centred array doubles as the x_hat buffer.
        # Every in-place op below replaces an allocation with an identical
        # elementwise computation, so the values stay bit-for-bit equal to
        # the naive spelling.
        mean = x.data.mean(axis=axes, dtype=dtype)
        xc = x.data - mean.reshape(shape)
        sq = xc * xc
        var = sq.mean(axis=axes, dtype=dtype)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean.astype(running_mean.dtype, copy=False)
        running_var *= 1.0 - momentum
        running_var += momentum * var.astype(running_var.dtype, copy=False)
        inv_std = 1.0 / np.sqrt(var + eps, dtype=dtype)
        x_hat = np.multiply(xc, inv_std.reshape(shape), out=sq)
        out = x_hat * gamma.data.reshape(shape)
        out += beta.data.reshape(shape)
        m = x.size // x.shape[1] if x.ndim == 4 else x.shape[0]

        def backward(grad: np.ndarray) -> None:
            dbeta = grad.sum(axis=axes)
            dgamma = (grad * x_hat).sum(axis=axes)
            if gamma.requires_grad:
                gamma._accumulate(dgamma)
            if beta.requires_grad:
                beta._accumulate(dbeta)
            if x.requires_grad:
                # Closed-form batchnorm backward (Ioffe & Szegedy, 2015):
                # dx = (gamma/std) / m * (m*dy - sum(dy) - xhat * sum(dy*xhat))
                coeff = (gamma.data * inv_std / m).reshape(shape)
                dx = m * grad
                dx -= dbeta.reshape(shape)
                dx -= x_hat * dgamma.reshape(shape)
                dx *= coeff
                x._accumulate(dx)

        return _register_op(x._make(out, (x, gamma, beta), backward), "batch_norm")

    inv_std = 1.0 / np.sqrt(running_var + eps)
    scale = (gamma.data * inv_std).astype(dtype, copy=False)
    shift = (beta.data - running_mean * gamma.data * inv_std).astype(dtype, copy=False)
    out = x.data * scale.reshape(shape)
    out += shift.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        if gamma.requires_grad:
            x_hat = (x.data - running_mean.reshape(shape).astype(dtype, copy=False)) * (
                inv_std.reshape(shape).astype(dtype, copy=False)
            )
            gamma._accumulate((grad * x_hat).sum(axis=axes))
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=axes))
        if x.requires_grad:
            x._accumulate(grad * scale.reshape(shape))

    return _register_op(x._make(out, (x, gamma, beta), backward), "batch_norm")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.data.max(axis=axis, keepdims=True)
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.data.max(axis=axis, keepdims=True)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity at eval time.  The mask follows ``x.dtype``."""
    if not training or p <= 0:
        return x
    mask = (rng.random(x.shape) >= p).astype(x.dtype) * x.dtype.type(1.0 / (1.0 - p))
    return x * Tensor(mask, dtype=x.dtype)


def flatten(x: Tensor) -> Tensor:
    return x.reshape(x.shape[0], -1)
