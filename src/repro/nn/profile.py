"""Parameter and FLOP accounting — the P(M) and F(M) of the paper (§3.1).

FLOPs are measured by running one forward pass on a single dummy input while
a counting sink is installed in :mod:`repro.nn.functional`.  Multiply-adds
are counted as two FLOPs (the convention that makes the paper's VGG-16 /
CIFAR figure come out at 0.63 GFLOPs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from . import functional as F
from .layers import Module
from .tensor import Tensor, no_grad


@dataclass(frozen=True)
class ModelProfile:
    """Static cost profile of a model on a given input resolution."""

    params: int
    flops: int

    @property
    def params_m(self) -> float:
        """Parameter count in millions."""
        return self.params / 1e6

    @property
    def flops_g(self) -> float:
        """FLOPs per input sample, in billions."""
        return self.flops / 1e9

    def __str__(self) -> str:
        return f"{self.params_m:.2f}M params, {self.flops_g:.3f}G FLOPs"


def count_params(model: Module) -> int:
    """Total trainable parameter count of a model."""
    return model.num_parameters()


def count_flops(model: Module, input_shape: Tuple[int, int, int]) -> int:
    """FLOPs of one forward pass on a single input of ``input_shape`` (CHW)."""
    totals: Dict[str, int] = {}

    def sink(name: str, flops: int) -> None:
        totals[name] = totals.get(name, 0) + flops

    was_training = model.training
    model.eval()
    dummy = Tensor(np.zeros((1, *input_shape)))
    # The sink is installed thread-locally: concurrent engines (one per
    # search job) profile on their own threads without seeing each other's
    # forward passes, so measured FLOPs — and the evaluator fingerprints
    # derived from them — stay deterministic under multi-tenancy.
    previous = getattr(F._PROFILE, "sink", None)
    F._PROFILE.sink = sink
    try:
        with no_grad():
            model(dummy)
    finally:
        F._PROFILE.sink = previous
        model.train(was_training)
    return sum(totals.values())


def profile_model(model: Module, input_shape: Tuple[int, int, int] = (3, 32, 32)) -> ModelProfile:
    """Measure both the parameter count and per-sample FLOPs of ``model``."""
    return ModelProfile(params=count_params(model), flops=count_flops(model, input_shape))
