"""Reverse-mode automatic differentiation over numpy arrays.

This module is the lowest layer of the ``repro.nn`` substrate.  It provides a
:class:`Tensor` wrapper around ``numpy.ndarray`` that records a tape of
operations so gradients can be computed with :meth:`Tensor.backward`.  The
design intentionally mirrors the small core of PyTorch's autograd:

* every op returns a new :class:`Tensor` whose ``_backward`` closure knows how
  to push gradients to its parents;
* broadcasting is fully supported — gradients are "unbroadcast" (summed) back
  to the parent shapes;
* :meth:`Tensor.backward` runs a topological sort of the tape and accumulates
  ``.grad`` arrays on every tensor with ``requires_grad=True``.

Only float64/float32 arrays are supported; all gradients use the dtype of the
forward data.  The default construction dtype is float32 (see
:func:`set_default_dtype`) — training throughput on the numpy substrate is
memory-bandwidth bound, so halving element width roughly doubles it.
Gradient-check tests that probe with central differences opt back into
float64 via :func:`default_dtype`.

:func:`no_grad` disables tape construction entirely: ops executed inside the
context return plain value tensors with no parents and no backward closures,
which is the fast path for accuracy evaluation and other pure inference.
"""

from __future__ import annotations

import sys
import threading
import traceback
from contextlib import contextmanager
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]


# --------------------------------------------------------------------------- #
# Default dtype (float32 for training throughput; float64 for grad checks)
# --------------------------------------------------------------------------- #
_DEFAULT_DTYPE = np.dtype(np.float32)


def get_default_dtype() -> np.dtype:
    """The dtype new tensors (and parameters/buffers) are created with."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> None:
    """Set the global construction dtype (float32 or float64).

    Everything downstream — parameters, im2col buffers, dropout masks, batch
    norm running statistics — follows this dtype, so a single call switches
    the whole substrate between fast float32 training and float64 precision.
    """
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"default dtype must be float32 or float64, got {dtype}")
    global _DEFAULT_DTYPE
    _DEFAULT_DTYPE = dtype


@contextmanager
def default_dtype(dtype):
    """Scoped :func:`set_default_dtype` (used by the gradient-check tests)."""
    previous = _DEFAULT_DTYPE
    set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)


# --------------------------------------------------------------------------- #
# Gradient mode (no_grad skips tape construction for pure inference)
# --------------------------------------------------------------------------- #
# Thread-local on purpose: concurrent engines (one thread per search job in
# `repro serve`) mix inference and training.  A process-global flag would let
# one job's no_grad() forward pass silently stop another job's training from
# recording its tape.
_GRAD = threading.local()


def is_grad_enabled() -> bool:
    """Whether ops on this thread currently record the autodiff tape."""
    return getattr(_GRAD, "enabled", True)


@contextmanager
def no_grad():
    """Disable autodiff tape construction inside the context.

    Ops still compute forward values but skip parent tracking and
    ``_backward`` closures, so inference costs only the numpy work.  The
    context nests, is exception-safe, and affects only the calling thread;
    calling :meth:`Tensor.backward` inside it raises a clear
    :class:`RuntimeError`.
    """
    previous = getattr(_GRAD, "enabled", True)
    _GRAD.enabled = False
    try:
        yield
    finally:
        _GRAD.enabled = previous


# --------------------------------------------------------------------------- #
# Anomaly detection (the autodiff sanitizer used by repro.analysis)
# --------------------------------------------------------------------------- #
class AnomalyError(ArithmeticError):
    """An op produced NaN/Inf data or gradients while anomaly mode was on."""

    def __init__(self, op: str, phase: str, kind: str, context: str = ""):
        self.op = op or "<leaf or untracked op>"
        self.phase = phase
        self.kind = kind
        self.context = context
        message = f"{phase} pass produced {kind} in the output of op {self.op!r}"
        if context:
            message += f"\ntensor created at:\n{context}"
        super().__init__(message)


class _AnomalyState:
    __slots__ = ("check_nan", "check_inf", "capture_stacks", "context_frames")

    def __init__(self, check_nan: bool, check_inf: bool, capture_stacks: bool, context_frames: int):
        self.check_nan = check_nan
        self.check_inf = check_inf
        self.capture_stacks = capture_stacks
        self.context_frames = context_frames

    def bad_kind(self, data: np.ndarray) -> Optional[str]:
        """Name of the first anomaly present in ``data``, or None."""
        if self.check_nan and self.check_inf:
            if not np.isfinite(data).all():
                return "NaN" if np.isnan(data).any() else "Inf"
            return None
        if self.check_nan and np.isnan(data).any():
            return "NaN"
        if self.check_inf and np.isinf(data).any():
            return "Inf"
        return None


_ANOMALY: Optional[_AnomalyState] = None


def anomaly_enabled() -> bool:
    """Whether an anomaly-detection context is currently active."""
    return _ANOMALY is not None


@contextmanager
def detect_anomaly(
    check_nan: bool = True,
    check_inf: bool = True,
    capture_stacks: bool = True,
    context_frames: int = 6,
):
    """Check tensors for NaN/Inf at op boundaries, forward and backward.

    Inside the context every op output is validated as it is created, and the
    backward pass validates each gradient as it is produced, so an
    :class:`AnomalyError` names the *originating* op (with the Python stack
    where its output tensor was created) rather than a symptom far
    downstream.  Opt-in because the checks and stack captures cost time —
    mirror of ``torch.autograd.detect_anomaly``.
    """
    global _ANOMALY
    previous = _ANOMALY
    _ANOMALY = _AnomalyState(check_nan, check_inf, capture_stacks, context_frames)
    try:
        yield
    finally:
        _ANOMALY = previous


def _capture_context(state: _AnomalyState) -> str:
    if not state.capture_stacks:
        return ""
    here = __file__
    frames = [f for f in traceback.extract_stack() if f.filename != here]
    return "".join(traceback.format_list(frames[-state.context_frames:]))


def _register_op(out: "Tensor", op: str) -> "Tensor":
    """Attach op metadata to ``out`` and validate it (anomaly mode only)."""
    state = _ANOMALY
    if state is None:
        return out
    out._op = op
    out._ctx = _capture_context(state)
    kind = state.bad_kind(out.data)
    if kind is not None:
        raise AnomalyError(op, "forward", kind, out._ctx)
    return out


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that it has ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out the leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum the dimensions that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    target = _DEFAULT_DTYPE if dtype is None else np.dtype(dtype)
    if isinstance(value, np.ndarray):
        if value.dtype == target:
            return value
        return value.astype(target)
    return np.asarray(value, dtype=target)


class _TensorMeta(type):
    @property
    def inference(cls) -> bool:
        """Class-level mirror of this thread's grad mode — True inside :func:`no_grad`."""
        return not is_grad_enabled()


class Tensor(metaclass=_TensorMeta):
    """A numpy array plus the bookkeeping needed for reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name", "_op", "_ctx")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        name: str = "",
        dtype=None,
    ):
        self.data = _as_array(data, dtype=dtype)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents = _parents
        self.name = name
        # Populated by _register_op while anomaly mode is active.
        self._op = ""
        self._ctx = ""

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the autodiff graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction
    # ------------------------------------------------------------------ #
    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        # Op results keep the dtype the computation produced — the default
        # dtype governs construction of *new* tensors, not propagation.
        out = Tensor(
            data, requires_grad=requires, _parents=parents if requires else (),
            dtype=data.dtype,
        )
        if requires:
            out._backward = backward
        if _ANOMALY is not None:
            # The caller is the op method itself (__add__, relu, conv2d, ...).
            _register_op(out, sys._getframe(1).f_code.co_name)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad.flags.writeable is False else grad
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(-grad, other.shape))

        return self._make(data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
            )

        return self._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    ga = np.outer(grad, other.data) if grad.ndim == 1 else np.expand_dims(grad, -1) * other.data
                else:
                    ga = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(np.asarray(ga), self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    gb = np.outer(self.data, grad) if grad.ndim == 1 else np.expand_dims(self.data, -1) @ np.expand_dims(grad, -2)
                else:
                    gb = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(np.asarray(gb), other.shape))

        return self._make(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / data)

        return self._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2))

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return self._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return self._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            full = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == full).astype(self.data.dtype)
            mask = mask / mask.sum(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(mask * g)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.shape))

        return self._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(data, (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions of an NCHW tensor."""
        if padding == 0:
            return self
        pads = [(0, 0)] * (self.ndim - 2) + [(padding, padding)] * 2
        data = np.pad(self.data, pads)

        def backward(grad: np.ndarray) -> None:
            sl = [slice(None)] * (self.ndim - 2) + [
                slice(padding, -padding),
                slice(padding, -padding),
            ]
            self._accumulate(grad[tuple(sl)])

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (i.e. this tensor is treated as a loss); a
        scalar loss is the common case.
        """
        if not is_grad_enabled():
            raise RuntimeError(
                "Tensor.backward() called inside no_grad(): the tape was never "
                "recorded. Run the forward pass outside no_grad() to train."
            )
        if grad is None:
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self.grad = np.asarray(grad, dtype=self.data.dtype)
        state = _ANOMALY
        if state is not None:
            kind = state.bad_kind(self.grad)
            if kind is not None:
                raise AnomalyError(self._op, "backward", kind, self._ctx)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                if state is not None:
                    # All grads were finite before this closure ran, so a bad
                    # parent grad pinpoints this node's op as the origin.
                    for parent in node._parents:
                        if parent.grad is None:
                            continue
                        kind = state.bad_kind(parent.grad)
                        if kind is not None:
                            raise AnomalyError(node._op, "backward", kind, node._ctx)
            # Free intermediate grads that nothing else needs? Keep them:
            # optimizers read leaf grads; intermediates are small in our nets.


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            sl = [slice(None)] * grad.ndim
            sl[axis] = slice(start, stop)
            t._accumulate(grad[tuple(sl)])

    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(
        data, requires_grad=requires, _parents=tuple(tensors) if requires else (),
        dtype=data.dtype,
    )
    if requires:
        out._backward = backward
    return _register_op(out, "concat")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        parts = np.split(grad, len(tensors), axis=axis)
        for t, part in zip(tensors, parts):
            t._accumulate(np.squeeze(part, axis=axis))

    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(
        data, requires_grad=requires, _parents=tuple(tensors) if requires else (),
        dtype=data.dtype,
    )
    if requires:
        out._backward = backward
    return _register_op(out, "stack")


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select with gradient support; ``condition`` is constant."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(_unbroadcast(grad * cond, a.shape))
        b._accumulate(_unbroadcast(grad * (~cond), b.shape))

    requires = is_grad_enabled() and (a.requires_grad or b.requires_grad)
    out = Tensor(
        data, requires_grad=requires, _parents=(a, b) if requires else (),
        dtype=data.dtype,
    )
    if requires:
        out._backward = backward
    return _register_op(out, "where")
