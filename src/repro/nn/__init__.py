"""From-scratch numpy neural-network substrate used by the AutoMC reproduction.

Public surface:

* :class:`~repro.nn.tensor.Tensor` — reverse-mode autodiff array
* layer classes (:class:`Conv2d`, :class:`Linear`, :class:`BatchNorm2d`, ...)
* :mod:`repro.nn.functional` — stateless ops
* optimizers and LR schedules
* :class:`~repro.nn.train.Trainer` / :func:`evaluate_accuracy`
* :func:`~repro.nn.profile.profile_model` — P(M) and F(M) measurement
* :mod:`repro.nn.workspace` — shape-specialized kernel plans and the
  thread-local workspace arena (``plan_cache_stats`` / ``clear_plans`` /
  ``workspace_stats`` / ``no_plans``)
"""

from . import functional, init, losses
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Embedding,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
)
from .metrics import confusion_matrix, evaluate_metrics, per_class_accuracy, top_k_accuracy
from .optim import SGD, Adam, CosineSchedule, Optimizer, StepSchedule
from .profile import ModelProfile, count_flops, count_params, profile_model
from .quant import (
    QuantizedConv2d,
    QuantizedLinear,
    calibrate_module,
    fold_batchnorm,
    quantize_module,
    quantized_bits,
)
from .serialization import load_model, load_state, save_model
from .tensor import (
    Tensor,
    concat,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
    stack,
    where,
)
from .train import Trainer, TrainReport, evaluate_accuracy
from .workspace import (
    Workspace,
    clear_plans,
    clear_workspace,
    no_plans,
    plan_cache_stats,
    plans_enabled,
    reset_workspace_peak,
    workspace_stats,
)

__all__ = [
    "AvgPool2d",
    "Adam",
    "BatchNorm2d",
    "Conv2d",
    "CosineSchedule",
    "Embedding",
    "Flatten",
    "GlobalAvgPool2d",
    "Identity",
    "Linear",
    "MaxPool2d",
    "ModelProfile",
    "Module",
    "Optimizer",
    "Parameter",
    "QuantizedConv2d",
    "QuantizedLinear",
    "ReLU",
    "SGD",
    "Sequential",
    "StepSchedule",
    "Tensor",
    "Trainer",
    "TrainReport",
    "Workspace",
    "calibrate_module",
    "clear_plans",
    "clear_workspace",
    "concat",
    "confusion_matrix",
    "count_flops",
    "count_params",
    "default_dtype",
    "fold_batchnorm",
    "evaluate_accuracy",
    "evaluate_metrics",
    "get_default_dtype",
    "is_grad_enabled",
    "no_grad",
    "no_plans",
    "per_class_accuracy",
    "plan_cache_stats",
    "plans_enabled",
    "reset_workspace_peak",
    "set_default_dtype",
    "top_k_accuracy",
    "functional",
    "init",
    "load_model",
    "load_state",
    "losses",
    "profile_model",
    "quantize_module",
    "quantized_bits",
    "save_model",
    "stack",
    "where",
    "workspace_stats",
]
