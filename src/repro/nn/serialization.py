"""Model checkpointing: save/load state dicts as ``.npz`` archives.

Structural surgery changes array shapes, so a checkpoint also records each
parameter's shape implicitly; :func:`load_model` therefore only works on a
model with the *same structure* (use :func:`save_model` / :func:`load_model`
around a compression run, or re-apply the scheme to rebuild the structure).

:func:`save_module` / :func:`load_module` serialize the *full* module —
structure and state together — which is what the
:class:`~repro.core.snapshots.ModelSnapshotStore` needs: a compressed
prefix model cannot be rebuilt from a state dict alone because the surgery
that produced its structure is exactly the work the snapshot exists to skip.
"""

from __future__ import annotations

import os
import pickle
from typing import Dict, Optional, Tuple

import numpy as np

from .layers import Module

#: format tag for save_module payloads; bump on incompatible layout changes
_MODULE_FORMAT = 1

#: npz keys cannot contain "/" cleanly across platforms; dots are fine.
_PREFIX = "state."


def save_model(model: Module, path: str) -> None:
    """Serialize a model's parameters and buffers to ``path`` (.npz)."""
    state = model.state_dict()
    arrays = {_PREFIX + name: value for name, value in state.items()}
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **arrays)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a checkpoint back into a plain state dict."""
    with np.load(path) as archive:
        return {
            key[len(_PREFIX):]: archive[key]
            for key in archive.files
            if key.startswith(_PREFIX)
        }


def load_model(model: Module, path: str) -> Module:
    """Load a checkpoint into ``model`` (shapes must match) and return it."""
    model.load_state_dict(load_state(path))
    return model


def save_module(model: Module, path: str, extra: Optional[dict] = None) -> None:
    """Serialize a full module (structure + parameters + buffers) to ``path``.

    ``extra`` rides along in the same payload (the snapshot store uses it for
    accuracy / per-step cost metadata).  The write is a plain single-file
    write; callers that need atomicity write to a temp path and rename.
    """
    payload = {"format": _MODULE_FORMAT, "module": model, "extra": extra or {}}
    with open(path, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


def load_module(path: str) -> Tuple[Module, dict]:
    """Read a :func:`save_module` payload back as ``(module, extra)``.

    Raises ``ValueError`` on payloads that are not save_module output (wrong
    pickle shape or format tag) so callers can treat corruption as a miss.
    """
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    if (
        not isinstance(payload, dict)
        or payload.get("format") != _MODULE_FORMAT
        or not isinstance(payload.get("module"), Module)
    ):
        raise ValueError(f"{path!r} is not a save_module payload")
    return payload["module"], payload.get("extra", {})
