"""Model checkpointing: save/load state dicts as ``.npz`` archives.

Structural surgery changes array shapes, so a checkpoint also records each
parameter's shape implicitly; :func:`load_model` therefore only works on a
model with the *same structure* (use :func:`save_model` / :func:`load_model`
around a compression run, or re-apply the scheme to rebuild the structure).
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .layers import Module

#: npz keys cannot contain "/" cleanly across platforms; dots are fine.
_PREFIX = "state."


def save_model(model: Module, path: str) -> None:
    """Serialize a model's parameters and buffers to ``path`` (.npz)."""
    state = model.state_dict()
    arrays = {_PREFIX + name: value for name, value in state.items()}
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **arrays)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a checkpoint back into a plain state dict."""
    with np.load(path) as archive:
        return {
            key[len(_PREFIX):]: archive[key]
            for key in archive.files
            if key.startswith(_PREFIX)
        }


def load_model(model: Module, path: str) -> Module:
    """Load a checkpoint into ``model`` (shapes must match) and return it."""
    model.load_state_dict(load_state(path))
    return model
