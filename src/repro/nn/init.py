"""Weight initialisation schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

import numpy as np


def kaiming_normal(shape, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialisation, appropriate for ReLU networks."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape)


def ones(shape) -> np.ndarray:
    return np.ones(shape)
