"""Loss functions used by training, fine-tuning and distillation.

All losses take logits/targets and return a scalar :class:`Tensor`; targets
are plain integer numpy arrays (class ids) or float arrays (regression).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits (N, K) and integer targets (N,)."""
    logp = F.log_softmax(logits, axis=-1)
    n = logits.shape[0]
    picked = logp[np.arange(n), np.asarray(targets, dtype=np.int64)]
    return -picked.mean()


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood for pre-computed log-probabilities."""
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), np.asarray(targets, dtype=np.int64)]
    return -picked.mean()


def mse_loss(prediction: Tensor, target) -> Tensor:
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target.detach()
    return (diff * diff).mean()


def kl_divergence(student_logits: Tensor, teacher_logits: np.ndarray, temperature: float = 1.0) -> Tensor:
    """KL(teacher_T || student_T) distillation loss, scaled by T^2.

    The teacher distribution is a constant (no gradient flows into it), as in
    standard knowledge distillation.
    """
    t = float(temperature)
    teacher = np.asarray(teacher_logits, dtype=np.float64) / t
    teacher = teacher - teacher.max(axis=-1, keepdims=True)
    p = np.exp(teacher)
    p = p / p.sum(axis=-1, keepdims=True)
    student_logp = F.log_softmax(student_logits * (1.0 / t), axis=-1)
    # KL(p || q) = sum p log p - sum p log q; the first term is constant.
    loss = -(Tensor(p) * student_logp).sum(axis=-1).mean()
    const = float((p * np.log(np.clip(p, 1e-12, None))).sum(axis=-1).mean())
    return (loss + const) * (t * t)


def lma_transform(logits: np.ndarray, segments: int = 4) -> np.ndarray:
    """Light Multi-segment Activation (LMA) applied to teacher logits.

    LMA (Xu et al., AAAI 2020) replaces the teacher's softened output with a
    piecewise-linear multi-segment approximation so the student learns a
    simpler target surface.  We implement the piecewise-linear quantisation of
    the logit range into ``segments`` bins with within-bin linear
    interpolation, which preserves the ranking of classes while flattening
    fine-grained detail — the property the LMA paper relies on.
    """
    lo = logits.min(axis=-1, keepdims=True)
    hi = logits.max(axis=-1, keepdims=True)
    span = np.maximum(hi - lo, 1e-8)
    normalized = (logits - lo) / span
    scaled = normalized * segments
    bins = np.floor(scaled)
    frac = scaled - bins
    # Piecewise-linear: within each segment interpolate between knot values
    # placed on a convex-ish curve (x^1.5) which emphasises top classes.
    knots = ((bins + frac) / segments) ** 1.5
    return knots * span + lo


def lma_distillation_loss(
    student_logits: Tensor,
    teacher_logits: np.ndarray,
    targets: np.ndarray,
    temperature: float,
    alpha: float,
    segments: int = 4,
) -> Tensor:
    """Combined LMA distillation objective (method C1 of the search space).

    ``alpha`` weights the hard-label cross-entropy against the soft LMA
    distillation term, and ``temperature`` softens both distributions.
    """
    soft_target = lma_transform(np.asarray(teacher_logits), segments=segments)
    hard = cross_entropy(student_logits, targets)
    soft = kl_divergence(student_logits, soft_target, temperature)
    return hard * alpha + soft * (1.0 - alpha)
