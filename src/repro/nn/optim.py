"""Optimizers and learning-rate schedules for the numpy substrate."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .layers import Parameter


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.data = p.data - self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class CosineSchedule:
    """Cosine-annealed learning rate from ``lr_max`` to ``lr_min``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, lr_min: float = 0.0):
        self.optimizer = optimizer
        self.lr_max = optimizer.lr
        self.lr_min = lr_min
        self.total_steps = max(1, int(total_steps))
        self._step = 0

    def step(self) -> float:
        self._step = min(self._step + 1, self.total_steps)
        progress = self._step / self.total_steps
        # Keep lr a python float: a np.float64 scalar is a *strong* type under
        # NEP 50 and would silently promote float32 parameters in the update.
        lr = float(
            self.lr_min + 0.5 * (self.lr_max - self.lr_min) * (1 + np.cos(np.pi * progress))
        )
        self.optimizer.lr = lr
        return lr


class StepSchedule:
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        self.optimizer = optimizer
        self.step_size = max(1, int(step_size))
        self.gamma = gamma
        self._step = 0

    def step(self) -> float:
        self._step += 1
        if self._step % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr
