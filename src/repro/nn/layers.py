"""Layer/module system for the numpy neural-network substrate.

:class:`Module` mirrors the familiar ``torch.nn.Module`` contract: modules own
:class:`Parameter` leaves and child modules, expose ``named_parameters()`` /
``state_dict()`` traversal, and switch between ``train()`` and ``eval()``
modes.  The compression code in :mod:`repro.compression` performs *structural
surgery* directly on these modules (replacing weight arrays with smaller
ones), so layers keep their configuration (``out_channels`` etc.) derived
from the current weight shapes rather than from construction-time arguments.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor, get_default_dtype


class Parameter(Tensor):
    """A tensor registered as a trainable leaf of a module.

    Parameters are stored in the global default dtype (float32 unless
    :func:`repro.nn.set_default_dtype` says otherwise) so the whole training
    hot path runs at one precision.
    """

    def __init__(self, data: np.ndarray, name: str = ""):
        super().__init__(
            np.asarray(data, dtype=get_default_dtype()), requires_grad=True, name=name
        )


class Module:
    """Base class for all layers and models."""

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._buffers: Dict[str, np.ndarray] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------ #
    # Registration / traversal
    # ------------------------------------------------------------------ #
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield (f"{prefix}{name}", self._buffers[name])
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    # ------------------------------------------------------------------ #
    # Mode / gradient management
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Logical parameter count: own parameters plus children, recursively.

        Recursive (rather than a flat sum over ``parameters()``) so leaves
        with non-Parameter storage — e.g. quantized layers whose weights
        live in int8 buffers — can override this to report their logical
        element count and keep P(M) precision-independent.
        """
        total = sum(p.size for p in self._parameters.values())
        for module in self._modules.values():
            total += module.num_parameters()
        return total

    # ------------------------------------------------------------------ #
    # State dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for name, p in self.named_parameters():
            if name not in state:
                raise KeyError(f"missing parameter {name!r} in state dict")
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{p.data.shape} vs {state[name].shape}"
                )
            # Cast to the parameter's dtype: checkpoints written at another
            # precision must not silently change the model's compute dtype.
            p.data = np.asarray(state[name], dtype=p.data.dtype).copy()
        for name, _ in self.named_buffers():
            if name in state:
                self._assign_buffer(name, state[name])

    def _assign_buffer(self, dotted: str, value: np.ndarray) -> None:
        parts = dotted.split(".")
        target = self
        for part in parts[:-1]:
            target = target._modules[part]
        target._buffers[parts[-1]][...] = value

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)


class Conv2d(Module):
    """2D convolution over NCHW input."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.stride = stride
        self.padding = padding
        self.kernel_size = kernel_size
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
            )
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    @property
    def in_channels(self) -> int:
        return self.weight.shape[1]

    @property
    def out_channels(self) -> int:
        return self.weight.shape[0]

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride})"
        )


class Linear(Module):
    """Affine layer over (N, in_features)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), in_features, rng)
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    @property
    def in_features(self) -> int:
        return self.weight.shape[1]

    @property
    def out_features(self) -> int:
        return self.weight.shape[0]

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class BatchNorm2d(Module):
    """Batch normalisation over the channel dim of NCHW input."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        dtype = get_default_dtype()
        self.register_buffer("running_mean", np.zeros(num_features, dtype=dtype))
        self.register_buffer("running_var", np.ones(num_features, dtype=dtype))

    @property
    def num_features(self) -> int:
        return self.gamma.shape[0]

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            self.training,
            self.momentum,
            self.eps,
        )

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d({self.kernel_size})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.flatten(x)

    def __repr__(self) -> str:
        return "Flatten()"


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"


class Sequential(Module):
    """Chain of modules applied in order, indexable like a list."""

    def __init__(self, *modules: Module):
        super().__init__()
        for i, module in enumerate(modules):
            self.add_module(str(i), module)

    def __getitem__(self, index: int) -> Module:
        return self._modules[str(index % len(self._modules))]

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x

    def __repr__(self) -> str:
        inner = ", ".join(repr(m) for m in self)
        return f"Sequential({inner})"


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors (used by F_mo)."""

    def __init__(self, num_embeddings: int, dim: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(rng.normal(0, 0.1, size=(num_embeddings, dim)))

    @property
    def num_embeddings(self) -> int:
        return self.weight.shape[0]

    @property
    def dim(self) -> int:
        return self.weight.shape[1]

    def forward(self, ids: np.ndarray) -> Tensor:
        return self.weight[np.asarray(ids, dtype=np.int64)]
