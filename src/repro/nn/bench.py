"""Microbenchmarks for the repro.nn hot-path kernels.

The workloads mirror how the search actually exercises the substrate: conv2d
forward (surrogate inference), conv2d forward+backward (fine-tuning), fused
batch-norm in both modes, one full ResNet-56 SGD step, and a grad-free
inference batch.  ``repro bench`` and ``benchmarks/test_nn_kernels.py`` both
drive :func:`run_kernel_benchmarks`; results are written to ``BENCH_nn.json``
alongside the committed pre-fast-path baseline so speedups are always
computed against the same reference.

Timings are wall-clock medians — robust against one-off scheduler noise but
still sensitive to machine load, which is why the perf assertions in the
benchmark suite leave generous headroom below the measured speedups.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

import numpy as np

#: Median kernel timings (seconds) measured on the commit before the
#: fast-path kernels landed (fused batch_norm / conv+relu / add_relu,
#: grad-free inference, float32 default).  Same workloads, same machine
#: class as CI; used to report speedup factors in BENCH_nn.json.
PRE_FASTPATH_BASELINE: Dict[str, float] = {
    "conv2d_fwd": 0.005847,
    "conv2d_fwd_bwd": 0.033697,
    "batchnorm_fwd_bwd": 0.004500,
    "batchnorm_eval": 0.001539,
    "resnet56_step": 1.318985,
    "inference_batch": 2.433395,
}

#: Timings (seconds) of the ResNet workloads measured on the commit before
#: the kernel-plan/workspace layer landed: allocation-per-call
#: im2col/col2im, an unconditional ``np.pad`` every forward, and the
#: row-major (N, Ho*Wo, C*kh*kw) patch GEMM orientation.  Recorded as the
#: *fastest* observation over repeated windows — the statistic the
#: workspace suite itself reports — which is the conservative choice: a
#: fast baseline understates the speedup.  Same workloads, same machine
#: class as CI; the suite's gates (>=1.3x train step, >=1.5x inference
#: batch) are asserted against these.
PRE_PLANS_BASELINE: Dict[str, float] = {
    "resnet56_step": 0.406912,
    "inference_batch": 0.490978,
}

#: Quantized-inference workloads: float32 vs fp16 vs int8 on the same model
#: and batch.  The baseline is the *same-run* float32 timing, so the speedup
#: column is a self-contained A/B, robust to machine class.
QUANT_WORKLOADS = {
    "full": {"batch": 32, "depth": 56, "calibration_batches": 2},
    "smoke": {"batch": 4, "depth": 8, "calibration_batches": 1},
}

#: Workload shapes. ``full`` matches the baseline measurement; ``smoke`` is
#: a seconds-long variant for CI.
WORKLOADS = {
    "full": {
        "conv_x": (8, 16, 32, 32),
        "conv_w": (16, 16, 3, 3),
        "bn_x": (32, 32, 16, 16),
        "step_batch": 8,
        "inference_batch": 32,
        "resnet_depth": 56,
    },
    "smoke": {
        "conv_x": (2, 8, 16, 16),
        "conv_w": (8, 8, 3, 3),
        "bn_x": (4, 8, 8, 8),
        "step_batch": 2,
        "inference_batch": 4,
        "resnet_depth": 8,
    },
}


def _median_time(fn: Callable[[], None], repeats: int, number: int) -> float:
    """Median over ``repeats`` of the mean time of ``number`` calls."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        samples.append((time.perf_counter() - t0) / number)
    samples.sort()
    return samples[len(samples) // 2]


def measure_latency(
    model,
    input_shape,
    batch: int = 32,
    repeats: int = 5,
    seed: int = 0,
) -> float:
    """Median wall-clock milliseconds per grad-free inference batch.

    The measured-latency column evaluators attach to results: one warm-up
    forward (so lazily-built state — im2col plans, quantized weight layouts —
    is paid once), then the median of ``repeats`` timed batches.  Restores
    the model's train/eval mode on exit.
    """
    from .tensor import Tensor, no_grad

    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(batch, *input_shape)).astype(np.float32))
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            model(x)
            seconds = _median_time(lambda: model(x), repeats, 1)
    finally:
        model.train(was_training)
    return seconds * 1000.0


def run_kernel_benchmarks(
    smoke: bool = False,
    repeats: int = 5,
    seed: int = 0,
    only: Optional[str] = None,
) -> Dict[str, float]:
    """Time the repro.nn hot-path kernels; returns {workload: seconds}.

    ``smoke=True`` shrinks every shape so the whole suite runs in a couple
    of seconds (used by the CI job; the numbers are not comparable to the
    committed baseline, which uses the ``full`` sizes).
    """
    from ..models import ResNet
    from .losses import cross_entropy
    from .optim import SGD
    from .tensor import Tensor, no_grad
    from . import functional as F

    sizes = WORKLOADS["smoke" if smoke else "full"]
    rng = np.random.default_rng(seed)
    results: Dict[str, float] = {}

    def wanted(name: str) -> bool:
        return only is None or name == only

    if wanted("conv2d_fwd"):
        x = Tensor(rng.normal(size=sizes["conv_x"]))
        w = Tensor(rng.normal(size=sizes["conv_w"]))
        with no_grad():
            results["conv2d_fwd"] = _median_time(
                lambda: F.conv2d(x, w, stride=1, padding=1), repeats, 3
            )

    if wanted("conv2d_fwd_bwd"):
        xg = Tensor(rng.normal(size=sizes["conv_x"]), requires_grad=True)
        wg = Tensor(rng.normal(size=sizes["conv_w"]), requires_grad=True)

        def conv_step() -> None:
            xg.zero_grad()
            wg.zero_grad()
            F.conv2d(xg, wg, stride=1, padding=1).sum().backward()

        results["conv2d_fwd_bwd"] = _median_time(conv_step, repeats, 3)

    if wanted("batchnorm_fwd_bwd") or wanted("batchnorm_eval"):
        channels = sizes["bn_x"][1]
        bx = Tensor(rng.normal(size=sizes["bn_x"]))
        gamma = Tensor(np.ones(channels), requires_grad=True)
        beta = Tensor(np.zeros(channels), requires_grad=True)
        rmean = np.zeros(channels, dtype=bx.dtype)
        rvar = np.ones(channels, dtype=bx.dtype)

        if wanted("batchnorm_fwd_bwd"):

            def bn_step() -> None:
                gamma.zero_grad()
                beta.zero_grad()
                F.batch_norm(bx, gamma, beta, rmean, rvar, training=True).sum().backward()

            results["batchnorm_fwd_bwd"] = _median_time(bn_step, repeats, 3)

        if wanted("batchnorm_eval"):
            with no_grad():
                results["batchnorm_eval"] = _median_time(
                    lambda: F.batch_norm(bx, gamma, beta, rmean, rvar, training=False),
                    repeats,
                    3,
                )

    if wanted("resnet56_step") or wanted("inference_batch"):
        model = ResNet(sizes["resnet_depth"], num_classes=10)

        if wanted("resnet56_step"):
            opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
            step_x = rng.normal(size=(sizes["step_batch"], 3, 32, 32))
            step_y = rng.integers(0, 10, size=sizes["step_batch"])

            def train_step() -> None:
                logits = model(Tensor(step_x))
                loss = cross_entropy(logits, step_y)
                opt.zero_grad()
                loss.backward()
                opt.step()

            model.train()
            results["resnet56_step"] = _median_time(train_step, repeats, 1)

        if wanted("inference_batch"):
            model.eval()
            inf_x = rng.normal(size=(sizes["inference_batch"], 3, 32, 32))
            with no_grad():
                results["inference_batch"] = _median_time(
                    lambda: model(Tensor(inf_x)), repeats, 1
                )

    return results


def run_quant_benchmarks(
    smoke: bool = False, repeats: int = 5, seed: int = 0
) -> Dict[str, float]:
    """Time grad-free inference in float32 vs fp16 vs int8 on one ResNet.

    All three runs share the model architecture, batch and input data; only
    the execution precision differs (``repro.nn.quant.quantize_module``).
    The int8 run is calibrated on random batches — calibration quality only
    affects accuracy, never speed, so random data is fine for timing.
    """
    from ..models import ResNet
    from .quant import quantize_module
    from .tensor import Tensor, no_grad

    sizes = QUANT_WORKLOADS["smoke" if smoke else "full"]
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(sizes["batch"], 3, 32, 32)).astype(np.float32)
    calibration = [
        rng.normal(size=(sizes["batch"], 3, 32, 32)).astype(np.float32)
        for _ in range(sizes["calibration_batches"])
    ]
    models = {}
    for mode in ("float32", "fp16", "int8"):
        model = ResNet(sizes["depth"], num_classes=10)
        if mode != "float32":
            model = quantize_module(
                model, mode=mode,
                calibration=calibration if mode == "int8" else None,
            )
        model.eval()
        with no_grad():
            model(Tensor(x))  # warm-up: quantized layouts built lazily
        models[mode] = model
    # Interleaved sampling: each repeat times every mode back to back, so
    # machine-wide drift (CPU frequency, background load) moves all modes
    # together and cancels out of the speedup ratios.
    samples: Dict[str, list] = {mode: [] for mode in models}
    with no_grad():
        for _ in range(repeats):
            for mode, model in models.items():
                t0 = time.perf_counter()
                model(Tensor(x))
                samples[mode].append(time.perf_counter() - t0)
    results: Dict[str, float] = {}
    for mode, times in samples.items():
        times.sort()
        results[f"inference_{mode}"] = times[len(times) // 2]
    return results


def run_workspace_benchmarks(
    smoke: bool = False, repeats: int = 5, seed: int = 0
) -> Dict[str, float]:
    """Time the ResNet workloads with kernel plans on vs forced off.

    Same-run interleaved A/B: each repeat times the planned path and the
    ``no_plans()`` path back to back on the same model, optimizer state and
    input batch, so machine-wide drift cancels out of the plans-on vs
    plans-off comparison.  The PR-level speedup gates are computed against
    :data:`PRE_PLANS_BASELINE` instead — the ``no_plans()`` reference path
    shares the rewritten kernels' GEMM layout and would understate them.
    """
    from ..models import ResNet
    from .losses import cross_entropy
    from .optim import SGD
    from .tensor import Tensor, no_grad
    from .workspace import clear_plans, no_plans

    sizes = WORKLOADS["smoke" if smoke else "full"]
    rng = np.random.default_rng(seed)
    model = ResNet(sizes["resnet_depth"], num_classes=10)
    opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
    step_x = rng.normal(size=(sizes["step_batch"], 3, 32, 32))
    step_y = rng.integers(0, 10, size=sizes["step_batch"])
    inf_x = rng.normal(size=(sizes["inference_batch"], 3, 32, 32))

    def train_step() -> None:
        logits = model(Tensor(step_x))
        loss = cross_entropy(logits, step_y)
        opt.zero_grad()
        loss.backward()
        opt.step()

    def inference() -> None:
        with no_grad():
            model(Tensor(inf_x))

    # Warm both paths: plan building and workspace growth are one-time costs
    # the steady-state search never sees, so they stay out of the samples.
    clear_plans()
    model.train()
    train_step()
    model.eval()
    inference()
    with no_plans():
        model.train()
        train_step()
        model.eval()
        inference()

    names = (
        "resnet56_step",
        "resnet56_step_noplans",
        "inference_batch",
        "inference_batch_noplans",
    )
    samples: Dict[str, list] = {name: [] for name in names}
    for _ in range(repeats):
        model.train()
        t0 = time.perf_counter()
        train_step()
        samples["resnet56_step"].append(time.perf_counter() - t0)
        with no_plans():
            t0 = time.perf_counter()
            train_step()
            samples["resnet56_step_noplans"].append(time.perf_counter() - t0)
        model.eval()
        t0 = time.perf_counter()
        inference()
        samples["inference_batch"].append(time.perf_counter() - t0)
        with no_plans():
            t0 = time.perf_counter()
            inference()
            samples["inference_batch_noplans"].append(time.perf_counter() - t0)
    # Minimum, not median: the planned path is deterministic and allocation
    # free in steady state, so the fastest observation is the one least
    # polluted by scheduler noise — and the committed baseline was recorded
    # with the same statistic.
    return {name: min(times) for name, times in samples.items()}


def build_workspace_report(
    results: Dict[str, float], smoke: bool = False
) -> Dict[str, object]:
    """BENCH_workspace.json payload: planned kernels vs the pre-plan commit.

    The baseline is :data:`PRE_PLANS_BASELINE` — the committed timings of
    the kernels before the plan/workspace layer landed — so the speedup
    column measures the whole PR, not just plans-on vs plans-off within the
    rewritten kernels (the ``no_plans()`` reference path shares the
    transposed-GEMM layout win and would understate it).  The ``*_noplans``
    rows are kept in the report for exactly that comparison; they carry no
    baseline entry.
    """
    return build_report(
        results,
        smoke=smoke,
        baseline=dict(PRE_PLANS_BASELINE),
        description=(
            "pre-plan kernels (allocation-per-call im2col/col2im, np.pad "
            "every forward, row-major patch GEMM)"
        ),
        suite="repro.nn kernel plans + workspace arena",
    )


def load_baseline(path) -> Dict[str, float]:
    """The ``current.results_s`` timings of a report written with --output.

    Raises :class:`ValueError` with a readable reason when the file is
    missing, not JSON, or does not carry that section (schema drift between
    the committed report and the running code) — callers degrade to "no
    baseline, recording fresh" instead of crashing after the timed run.
    """
    import json

    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise ValueError("file does not exist")
    except OSError as exc:
        raise ValueError(f"cannot read file: {exc}")
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}")
    block = payload.get("current") if isinstance(payload, dict) else None
    results = block.get("results_s") if isinstance(block, dict) else None
    if not isinstance(results, dict):
        raise ValueError("no current.results_s section (schema mismatch)")
    timings = {
        str(name): float(seconds)
        for name, seconds in results.items()
        if isinstance(seconds, (int, float)) and seconds > 0
    }
    if not timings:
        raise ValueError("current.results_s holds no positive timings")
    return timings


def build_report(
    results: Dict[str, float],
    smoke: bool = False,
    baseline: Optional[Dict[str, float]] = None,
    description: Optional[str] = None,
    suite: str = "repro.nn kernel microbenchmarks",
) -> Dict[str, object]:
    """Assemble a BENCH_*.json payload: baseline, current, speedups.

    ``baseline=None`` keeps the committed pre-fast-path numbers (the kernel
    suite's reference); pass a ``{workload: seconds}`` mapping (e.g. from
    :func:`load_baseline`) to A/B against an earlier run, or ``{}`` for no
    baseline at all — the speedup section is then empty.
    """
    if baseline is None:
        baseline = PRE_FASTPATH_BASELINE
        description = description or (
            "pre fast-path kernels (fused BN/conv+relu, "
            "grad-free inference, float32 default)"
        )
    speedup = {
        name: baseline[name] / seconds
        for name, seconds in results.items()
        if name in baseline and seconds > 0 and not smoke
    }
    return {
        "suite": suite,
        "sizes": "smoke" if smoke else "full",
        "baseline": {
            "description": description or "",
            "results_s": baseline,
        },
        "current": {"results_s": results},
        "speedup_vs_baseline": speedup,
    }


def build_quant_report(
    results: Dict[str, float], smoke: bool = False
) -> Dict[str, object]:
    """BENCH_quant.json payload: fp16/int8 inference vs same-run float32."""
    base = results.get("inference_float32", 0.0)
    baseline = {name: base for name in results} if base > 0 else {}
    return build_report(
        results,
        smoke=smoke,
        baseline=baseline,
        description="float32 fused inference path (same model/batch, this run)",
        suite="repro.nn quantized inference",
    )


def format_report(report: Dict[str, object]) -> str:
    """Human-readable table of a BENCH_*.json payload.

    Tolerant of missing/mismatched baseline sections: an old or hand-edited
    report renders with an empty baseline column and a "no baseline" note
    rather than raising.
    """
    baseline_block = report.get("baseline")
    baseline = (
        baseline_block.get("results_s") if isinstance(baseline_block, dict) else None
    )
    if not isinstance(baseline, dict):
        baseline = {}
    current_block = report.get("current")
    current = (
        current_block.get("results_s") if isinstance(current_block, dict) else None
    )
    if not isinstance(current, dict):
        current = {}
    speedup = report.get("speedup_vs_baseline")
    if not isinstance(speedup, dict):
        speedup = {}
    suite = report.get("suite", "repro.nn benchmarks")
    sizes = report.get("sizes", "?")
    lines = [
        f"{suite} ({sizes} sizes)",
        f"{'workload':<20} {'baseline (s)':>14} {'current (s)':>14} {'speedup':>9}",
    ]
    if not baseline:
        lines.insert(1, "no baseline available — recording fresh numbers")
    for name, seconds in current.items():
        base = baseline.get(name)
        base_s = f"{base:.6f}" if isinstance(base, (int, float)) else "-"
        ratio = f"{speedup[name]:.2f}x" if name in speedup else "-"
        lines.append(f"{name:<20} {base_s:>14} {seconds:>14.6f} {ratio:>9}")
    if not current:
        lines.append("(report carries no current timings)")
    if sizes == "smoke":
        lines.append("(smoke sizes are CI-scaled; not comparable to the baseline column)")
    return "\n".join(lines)
