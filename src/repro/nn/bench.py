"""Microbenchmarks for the repro.nn hot-path kernels.

The workloads mirror how the search actually exercises the substrate: conv2d
forward (surrogate inference), conv2d forward+backward (fine-tuning), fused
batch-norm in both modes, one full ResNet-56 SGD step, and a grad-free
inference batch.  ``repro bench`` and ``benchmarks/test_nn_kernels.py`` both
drive :func:`run_kernel_benchmarks`; results are written to ``BENCH_nn.json``
alongside the committed pre-fast-path baseline so speedups are always
computed against the same reference.

Timings are wall-clock medians — robust against one-off scheduler noise but
still sensitive to machine load, which is why the perf assertions in the
benchmark suite leave generous headroom below the measured speedups.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

import numpy as np

#: Median kernel timings (seconds) measured on the commit before the
#: fast-path kernels landed (fused batch_norm / conv+relu / add_relu,
#: grad-free inference, float32 default).  Same workloads, same machine
#: class as CI; used to report speedup factors in BENCH_nn.json.
PRE_FASTPATH_BASELINE: Dict[str, float] = {
    "conv2d_fwd": 0.005847,
    "conv2d_fwd_bwd": 0.033697,
    "batchnorm_fwd_bwd": 0.004500,
    "batchnorm_eval": 0.001539,
    "resnet56_step": 1.318985,
    "inference_batch": 2.433395,
}

#: Workload shapes. ``full`` matches the baseline measurement; ``smoke`` is
#: a seconds-long variant for CI.
WORKLOADS = {
    "full": {
        "conv_x": (8, 16, 32, 32),
        "conv_w": (16, 16, 3, 3),
        "bn_x": (32, 32, 16, 16),
        "step_batch": 8,
        "inference_batch": 32,
        "resnet_depth": 56,
    },
    "smoke": {
        "conv_x": (2, 8, 16, 16),
        "conv_w": (8, 8, 3, 3),
        "bn_x": (4, 8, 8, 8),
        "step_batch": 2,
        "inference_batch": 4,
        "resnet_depth": 8,
    },
}


def _median_time(fn: Callable[[], None], repeats: int, number: int) -> float:
    """Median over ``repeats`` of the mean time of ``number`` calls."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        samples.append((time.perf_counter() - t0) / number)
    samples.sort()
    return samples[len(samples) // 2]


def run_kernel_benchmarks(
    smoke: bool = False,
    repeats: int = 5,
    seed: int = 0,
    only: Optional[str] = None,
) -> Dict[str, float]:
    """Time the repro.nn hot-path kernels; returns {workload: seconds}.

    ``smoke=True`` shrinks every shape so the whole suite runs in a couple
    of seconds (used by the CI job; the numbers are not comparable to the
    committed baseline, which uses the ``full`` sizes).
    """
    from ..models import ResNet
    from .losses import cross_entropy
    from .optim import SGD
    from .tensor import Tensor, no_grad
    from . import functional as F

    sizes = WORKLOADS["smoke" if smoke else "full"]
    rng = np.random.default_rng(seed)
    results: Dict[str, float] = {}

    def wanted(name: str) -> bool:
        return only is None or name == only

    if wanted("conv2d_fwd"):
        x = Tensor(rng.normal(size=sizes["conv_x"]))
        w = Tensor(rng.normal(size=sizes["conv_w"]))
        with no_grad():
            results["conv2d_fwd"] = _median_time(
                lambda: F.conv2d(x, w, stride=1, padding=1), repeats, 3
            )

    if wanted("conv2d_fwd_bwd"):
        xg = Tensor(rng.normal(size=sizes["conv_x"]), requires_grad=True)
        wg = Tensor(rng.normal(size=sizes["conv_w"]), requires_grad=True)

        def conv_step() -> None:
            xg.zero_grad()
            wg.zero_grad()
            F.conv2d(xg, wg, stride=1, padding=1).sum().backward()

        results["conv2d_fwd_bwd"] = _median_time(conv_step, repeats, 3)

    if wanted("batchnorm_fwd_bwd") or wanted("batchnorm_eval"):
        channels = sizes["bn_x"][1]
        bx = Tensor(rng.normal(size=sizes["bn_x"]))
        gamma = Tensor(np.ones(channels), requires_grad=True)
        beta = Tensor(np.zeros(channels), requires_grad=True)
        rmean = np.zeros(channels, dtype=bx.dtype)
        rvar = np.ones(channels, dtype=bx.dtype)

        if wanted("batchnorm_fwd_bwd"):

            def bn_step() -> None:
                gamma.zero_grad()
                beta.zero_grad()
                F.batch_norm(bx, gamma, beta, rmean, rvar, training=True).sum().backward()

            results["batchnorm_fwd_bwd"] = _median_time(bn_step, repeats, 3)

        if wanted("batchnorm_eval"):
            with no_grad():
                results["batchnorm_eval"] = _median_time(
                    lambda: F.batch_norm(bx, gamma, beta, rmean, rvar, training=False),
                    repeats,
                    3,
                )

    if wanted("resnet56_step") or wanted("inference_batch"):
        model = ResNet(sizes["resnet_depth"], num_classes=10)

        if wanted("resnet56_step"):
            opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
            step_x = rng.normal(size=(sizes["step_batch"], 3, 32, 32))
            step_y = rng.integers(0, 10, size=sizes["step_batch"])

            def train_step() -> None:
                logits = model(Tensor(step_x))
                loss = cross_entropy(logits, step_y)
                opt.zero_grad()
                loss.backward()
                opt.step()

            model.train()
            results["resnet56_step"] = _median_time(train_step, repeats, 1)

        if wanted("inference_batch"):
            model.eval()
            inf_x = rng.normal(size=(sizes["inference_batch"], 3, 32, 32))
            with no_grad():
                results["inference_batch"] = _median_time(
                    lambda: model(Tensor(inf_x)), repeats, 1
                )

    return results


def build_report(results: Dict[str, float], smoke: bool = False) -> Dict[str, object]:
    """Assemble the BENCH_nn.json payload: baseline, current, speedups."""
    speedup = {
        name: PRE_FASTPATH_BASELINE[name] / seconds
        for name, seconds in results.items()
        if name in PRE_FASTPATH_BASELINE and seconds > 0 and not smoke
    }
    return {
        "suite": "repro.nn kernel microbenchmarks",
        "sizes": "smoke" if smoke else "full",
        "baseline": {
            "description": "pre fast-path kernels (fused BN/conv+relu, "
                           "grad-free inference, float32 default)",
            "results_s": PRE_FASTPATH_BASELINE,
        },
        "current": {"results_s": results},
        "speedup_vs_baseline": speedup,
    }


def format_report(report: Dict[str, object]) -> str:
    """Human-readable table of the BENCH_nn.json payload."""
    baseline = report["baseline"]["results_s"]
    current = report["current"]["results_s"]
    speedup = report.get("speedup_vs_baseline", {})
    lines = [
        f"repro.nn kernel benchmarks ({report['sizes']} sizes)",
        f"{'workload':<20} {'baseline (s)':>14} {'current (s)':>14} {'speedup':>9}",
    ]
    for name, seconds in current.items():
        base = baseline.get(name)
        base_s = f"{base:.6f}" if base is not None else "-"
        ratio = f"{speedup[name]:.2f}x" if name in speedup else "-"
        lines.append(f"{name:<20} {base_s:>14} {seconds:>14.6f} {ratio:>9}")
    if report["sizes"] == "smoke":
        lines.append("(smoke sizes are CI-scaled; not comparable to the baseline column)")
    return "\n".join(lines)
