"""CIFAR-style ResNets (ResNet-20/56/164) on the numpy substrate.

Depth follows the classic 6n+2 scheme with three stages of ``n`` basic
blocks at 16/32/64 base channels.  Each block exposes one *prunable unit*:
the first convolution's output channels (the block's "mid" channels) can be
removed freely because they are consumed only by the second convolution.
Residual-stream channels are left intact so the skip connections always
type-check — the standard safe pruning scheme for ResNets.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, Module, Sequential
from ..nn import functional as F
from ..nn.tensor import Tensor
from .pruning import PrunableUnit


class BasicBlock(Module):
    """Two 3x3 convolutions with a residual connection."""

    def __init__(
        self,
        in_planes: int,
        planes: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.conv1 = Conv2d(in_planes, planes, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(planes)
        self.conv2 = Conv2d(planes, planes, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(planes)
        if stride != 1 or in_planes != planes:
            self.downsample = Sequential(
                Conv2d(in_planes, planes, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(planes),
            )
        else:
            self.downsample = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        skip = x if self.downsample is None else self.downsample(x)
        return F.add_relu(out, skip)


class Bottleneck(Module):
    """1x1 -> 3x3 -> 1x1 bottleneck block (expansion 4).

    Used by the canonical pre-activation ResNet-164; both internal channel
    groups (the 1x1 reduction outputs and the 3x3 outputs) are prunable.
    """

    expansion = 4

    def __init__(
        self,
        in_planes: int,
        planes: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        out_planes = planes * self.expansion
        self.conv1 = Conv2d(in_planes, planes, 1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(planes)
        self.conv2 = Conv2d(planes, planes, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(planes)
        self.conv3 = Conv2d(planes, out_planes, 1, bias=False, rng=rng)
        self.bn3 = BatchNorm2d(out_planes)
        if stride != 1 or in_planes != out_planes:
            self.downsample = Sequential(
                Conv2d(in_planes, out_planes, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_planes),
            )
        else:
            self.downsample = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out)).relu()
        out = self.bn3(self.conv3(out))
        skip = x if self.downsample is None else self.downsample(x)
        return F.add_relu(out, skip)


class ResNet(Module):
    """CIFAR ResNet with three stages of ``n`` basic blocks."""

    def __init__(
        self,
        depth: int,
        num_classes: int = 10,
        base_width: int = 16,
        in_channels: int = 3,
        seed: int = 0,
    ):
        super().__init__()
        if (depth - 2) % 6 != 0:
            raise ValueError(f"ResNet depth must be 6n+2, got {depth}")
        n = (depth - 2) // 6
        rng = np.random.default_rng(seed)
        self.depth = depth
        self.num_classes = num_classes
        widths = [base_width, base_width * 2, base_width * 4]

        self.conv1 = Conv2d(in_channels, widths[0], 3, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(widths[0])
        blocks: List[BasicBlock] = []
        in_planes = widths[0]
        for stage, planes in enumerate(widths):
            for i in range(n):
                stride = 2 if stage > 0 and i == 0 else 1
                blocks.append(BasicBlock(in_planes, planes, stride=stride, rng=rng))
                in_planes = planes
        self.blocks = Sequential(*blocks)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(widths[-1], num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.blocks(out)
        out = self.pool(out)
        return self.classifier(out)

    def pruning_units(self) -> List[PrunableUnit]:
        """One unit per block: conv1's filters, consumed only by conv2.

        Blocks whose first convolution has been replaced by a factorised
        layer (Tucker/basis) are skipped — their output channels are tied to
        the factorisation and no longer freely prunable.
        """
        units = []
        for i, block in enumerate(self.blocks):
            if not isinstance(block.conv1, Conv2d):
                continue
            units.append(
                PrunableUnit(
                    name=f"blocks.{i}.conv1",
                    producer=block.conv1,
                    bn=block.bn1,
                    consumers=[block.conv2],
                )
            )
        return units

    def __repr__(self) -> str:
        return f"ResNet(depth={self.depth}, classes={self.num_classes})"


def resnet20(num_classes: int = 10, base_width: int = 16, seed: int = 0) -> ResNet:
    return ResNet(20, num_classes=num_classes, base_width=base_width, seed=seed)


def resnet56(num_classes: int = 10, base_width: int = 16, seed: int = 0) -> ResNet:
    return ResNet(56, num_classes=num_classes, base_width=base_width, seed=seed)


def resnet164(num_classes: int = 10, base_width: int = 16, seed: int = 0) -> ResNet:
    return ResNet(164, num_classes=num_classes, base_width=base_width, seed=seed)


def resnet8(num_classes: int = 10, base_width: int = 8, seed: int = 0) -> ResNet:
    """Tiny ResNet for fast tests and real-training examples."""
    return ResNet(8, num_classes=num_classes, base_width=base_width, seed=seed)


class BottleneckResNet(Module):
    """CIFAR ResNet built from bottleneck blocks (depth = 9n + 2).

    ResNet-164 in the original paper uses this topology; the reproduction's
    calibrated transfer experiments use the basic-block variant for grid
    consistency, and this class is provided as the canonical alternative.
    """

    def __init__(
        self,
        depth: int,
        num_classes: int = 10,
        base_width: int = 16,
        in_channels: int = 3,
        seed: int = 0,
    ):
        super().__init__()
        if (depth - 2) % 9 != 0:
            raise ValueError(f"bottleneck ResNet depth must be 9n+2, got {depth}")
        n = (depth - 2) // 9
        rng = np.random.default_rng(seed)
        self.depth = depth
        self.num_classes = num_classes
        widths = [base_width, base_width * 2, base_width * 4]

        self.conv1 = Conv2d(in_channels, widths[0], 3, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(widths[0])
        blocks: List[Bottleneck] = []
        in_planes = widths[0]
        for stage, planes in enumerate(widths):
            for i in range(n):
                stride = 2 if stage > 0 and i == 0 else 1
                blocks.append(Bottleneck(in_planes, planes, stride=stride, rng=rng))
                in_planes = planes * Bottleneck.expansion
        self.blocks = Sequential(*blocks)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(in_planes, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.blocks(out)
        out = self.pool(out)
        return self.classifier(out)

    def pruning_units(self) -> List[PrunableUnit]:
        """Two units per block: conv1's and conv2's internal channels."""
        units = []
        for i, block in enumerate(self.blocks):
            if isinstance(block.conv1, Conv2d):
                units.append(
                    PrunableUnit(
                        name=f"blocks.{i}.conv1",
                        producer=block.conv1,
                        bn=block.bn1,
                        consumers=[block.conv2],
                    )
                )
            if isinstance(block.conv2, Conv2d):
                units.append(
                    PrunableUnit(
                        name=f"blocks.{i}.conv2",
                        producer=block.conv2,
                        bn=block.bn2,
                        consumers=[block.conv3],
                    )
                )
        return units

    def __repr__(self) -> str:
        return f"BottleneckResNet(depth={self.depth}, classes={self.num_classes})"


def resnet164_bottleneck(num_classes: int = 10, base_width: int = 16, seed: int = 0) -> BottleneckResNet:
    """The canonical bottleneck ResNet-164 (9n+2 with n = 18)."""
    return BottleneckResNet(164, num_classes=num_classes, base_width=base_width, seed=seed)


def resnet29_bottleneck(num_classes: int = 10, base_width: int = 8, seed: int = 0) -> BottleneckResNet:
    """Small bottleneck ResNet (n = 3) for tests."""
    return BottleneckResNet(29, num_classes=num_classes, base_width=base_width, seed=seed)
