"""Named factory registry for the model zoo.

Benchmarks and examples reference models by name (``"resnet56"``) so configs
stay serialisable; :func:`create_model` builds one with a given class count.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..nn import Module
from .resnet import (
    resnet8,
    resnet20,
    resnet29_bottleneck,
    resnet56,
    resnet164,
    resnet164_bottleneck,
)
from .vgg import vgg8_tiny, vgg13, vgg16, vgg19

_REGISTRY: Dict[str, Callable[..., Module]] = {
    "resnet8": resnet8,
    "resnet20": resnet20,
    "resnet29_bottleneck": resnet29_bottleneck,
    "resnet56": resnet56,
    "resnet164": resnet164,
    "resnet164_bottleneck": resnet164_bottleneck,
    "vgg8_tiny": vgg8_tiny,
    "vgg13": vgg13,
    "vgg16": vgg16,
    "vgg19": vgg19,
}


def available_models() -> List[str]:
    """Names accepted by :func:`create_model`."""
    return sorted(_REGISTRY)


def create_model(name: str, num_classes: int = 10, seed: int = 0, **kwargs) -> Module:
    """Instantiate a registered model by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return _REGISTRY[name](num_classes=num_classes, seed=seed, **kwargs)


def register_model(name: str, factory: Callable[..., Module]) -> None:
    """Add a user model factory to the registry (overwrites duplicates)."""
    _REGISTRY[name] = factory
