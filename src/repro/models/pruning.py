"""The *pruning graph* protocol shared by all models.

A model that supports structural compression exposes ``pruning_units()``
returning a list of :class:`PrunableUnit`.  Each unit names a group of
channels that can be removed together:

* ``producer`` — the layer whose output channels are candidates for removal
  (its filters are deleted);
* ``bn`` — the batch-norm directly normalising those channels (its per-channel
  statistics and affine parameters are deleted too), if any;
* ``consumers`` — every downstream layer whose *input* channels correspond
  one-to-one to the producer's outputs (their input slices are deleted).

The surgery functions in :mod:`repro.compression.surgery` operate purely on
this protocol, so models and factorised replacement layers only need to
support ``shrink_output`` / ``shrink_input`` semantics to participate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..nn import BatchNorm2d, Module


@dataclass
class PrunableUnit:
    """A channel group that may be structurally removed as one unit."""

    name: str
    producer: Module
    bn: Optional[BatchNorm2d]
    consumers: List[Module] = field(default_factory=list)

    @property
    def out_channels(self) -> int:
        return self.producer.weight.shape[0]

    def __repr__(self) -> str:
        return f"PrunableUnit({self.name}, channels={self.out_channels})"
