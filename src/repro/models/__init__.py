"""Model zoo: CIFAR-style ResNets and VGGs with pruning-graph support."""

from .pruning import PrunableUnit
from .registry import available_models, create_model, register_model
from .resnet import (
    Bottleneck,
    BottleneckResNet,
    ResNet,
    resnet8,
    resnet20,
    resnet29_bottleneck,
    resnet56,
    resnet164,
    resnet164_bottleneck,
)
from .vgg import VGG, vgg8_tiny, vgg13, vgg16, vgg19

__all__ = [
    "Bottleneck",
    "BottleneckResNet",
    "PrunableUnit",
    "ResNet",
    "VGG",
    "available_models",
    "create_model",
    "register_model",
    "resnet8",
    "resnet20",
    "resnet29_bottleneck",
    "resnet56",
    "resnet164",
    "resnet164_bottleneck",
    "vgg8_tiny",
    "vgg13",
    "vgg16",
    "vgg19",
]
