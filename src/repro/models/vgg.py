"""CIFAR-style VGG networks (VGG-13/16/19) with batch normalisation.

Every convolution's output channels are prunable: each conv feeds exactly the
next conv (or the classifier after global pooling), so the pruning graph is a
simple chain.  The classifier is a single Linear over globally pooled
features, which keeps the parameter count at the value the paper reports
(VGG-16 / CIFAR-100 = 14.77M params, 0.63 GFLOPs with the 2-FLOPs-per-MAC
convention).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from ..nn.tensor import Tensor
from .pruning import PrunableUnit

# Configuration strings: numbers are conv output channels, "M" is 2x2 maxpool.
VGG_CONFIGS: Dict[int, List[Union[int, str]]] = {
    8: [64, "M", 128, 128, "M", 256, 256, "M"],
    11: [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    13: [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    16: [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
         512, 512, 512, "M", 512, 512, 512, "M"],
    19: [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
         512, 512, 512, 512, "M", 512, 512, 512, 512, "M"],
}


class VGG(Module):
    """VGG-BN with global average pooling and a single linear classifier."""

    def __init__(
        self,
        depth: int,
        num_classes: int = 100,
        width_mult: float = 1.0,
        in_channels: int = 3,
        seed: int = 0,
    ):
        super().__init__()
        if depth not in VGG_CONFIGS:
            raise ValueError(f"unsupported VGG depth {depth}; choose from {sorted(VGG_CONFIGS)}")
        rng = np.random.default_rng(seed)
        self.depth = depth
        self.num_classes = num_classes
        layers: List[Module] = []
        channels = in_channels
        for item in VGG_CONFIGS[depth]:
            if item == "M":
                layers.append(MaxPool2d(2))
            else:
                width = max(1, int(round(item * width_mult)))
                layers.append(Conv2d(channels, width, 3, padding=1, bias=False, rng=rng))
                layers.append(BatchNorm2d(width))
                layers.append(ReLU())
                channels = width
        self.features = Sequential(*layers)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(channels, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.features(x)
        out = self.pool(out)
        return self.classifier(out)

    def _conv_bn_pairs(self) -> List[Tuple[int, Module, Optional[BatchNorm2d]]]:
        """All conv-like layers (plain or factorised) with their batch norms."""
        pairs = []
        modules = list(self.features)
        for i, module in enumerate(modules):
            conv_like = isinstance(module, Conv2d) or getattr(module, "is_conv_like", False)
            if conv_like:
                bn = modules[i + 1] if i + 1 < len(modules) and isinstance(modules[i + 1], BatchNorm2d) else None
                pairs.append((i, module, bn))
        return pairs

    def pruning_units(self) -> List[PrunableUnit]:
        """A chain: every conv feeds the next conv (or the classifier).

        Factorised layers stay in the chain as consumers but are not offered
        as prunable producers.
        """
        pairs = self._conv_bn_pairs()
        units = []
        for idx, (pos, conv, bn) in enumerate(pairs):
            if not isinstance(conv, Conv2d):
                continue
            if idx + 1 < len(pairs):
                consumer: Module = pairs[idx + 1][1]
            else:
                consumer = self.classifier
            units.append(
                PrunableUnit(
                    name=f"features.{pos}",
                    producer=conv,
                    bn=bn,
                    consumers=[consumer],
                )
            )
        return units

    def __repr__(self) -> str:
        return f"VGG(depth={self.depth}, classes={self.num_classes})"


def vgg13(num_classes: int = 100, width_mult: float = 1.0, seed: int = 0) -> VGG:
    return VGG(13, num_classes=num_classes, width_mult=width_mult, seed=seed)


def vgg16(num_classes: int = 100, width_mult: float = 1.0, seed: int = 0) -> VGG:
    return VGG(16, num_classes=num_classes, width_mult=width_mult, seed=seed)


def vgg19(num_classes: int = 100, width_mult: float = 1.0, seed: int = 0) -> VGG:
    return VGG(19, num_classes=num_classes, width_mult=width_mult, seed=seed)


def vgg8_tiny(num_classes: int = 10, width_mult: float = 0.125, seed: int = 0) -> VGG:
    """Narrow, shallow VGG for fast tests and real-training examples.

    Three pooling stages, so it accepts inputs as small as 8x8.
    """
    return VGG(8, num_classes=num_classes, width_mult=width_mult, seed=seed)
