"""Method C5 — HOS: compression with Higher-Order Statistics + HOOI
(Chatzikonstantinou et al., CVPR 2020).

Three techniques chained:

* TE6 — filter pruning ranked by higher-order statistics of the filter
  weights (criterion HP12: ``l1norm``, ``k34`` third/fourth-moment energy, or
  ``skew_kur`` skewness+kurtosis), aggregated globally per HP11
  (``P1`` layer-z-scored, ``P2`` raw, ``P3`` per-layer rank);
* TE7 — HOOI Tucker-2 low-rank approximation of the largest remaining
  convolution kernels (:mod:`repro.compression.hooi`);
* TE3 — fine-tuning with an auxiliary MSE reconstruction loss against the
  pre-compression model's logits (factor HP14), for HP13 epochs.

Half of the HP2 parameter budget is taken by pruning, half by the low-rank
decomposition (the paper's two-stage design).
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List

import numpy as np

from ..models.pruning import PrunableUnit
from ..nn import Conv2d, Module
from ..nn.losses import cross_entropy, mse_loss
from ..nn.tensor import Tensor, no_grad
from .base import CompressionMethod, ExecutionContext, StepReport
from .factorized import TuckerConv2d, replace_module
from .hooi import choose_tucker_ranks, tucker2, tucker2_params
from .surgery import filter_l1_norms, prune_by_scores


def _standardized_moments(w: np.ndarray) -> np.ndarray:
    """Per-filter (skewness, excess kurtosis) of the flattened weights.

    Computed from central power sums with explicit multiplications — this
    runs on every filter of a 14M-parameter VGG during scoring, so avoiding
    the ``z**3`` / ``z**4`` temporaries matters.
    """
    flat = w.reshape(w.shape[0], -1)
    centered = flat - flat.mean(axis=1, keepdims=True)
    c2 = centered * centered
    m2 = c2.mean(axis=1)
    m3 = (c2 * centered).mean(axis=1)
    m4 = (c2 * c2).mean(axis=1)
    sigma2 = m2 + 1e-24
    skew = m3 / sigma2 ** 1.5
    kurt = m4 / (sigma2 * sigma2) - 3.0
    return np.stack([skew, kurt], axis=1)


def _score_l1(unit: PrunableUnit) -> np.ndarray:
    return filter_l1_norms(unit)


def _score_k34(unit: PrunableUnit) -> np.ndarray:
    """Energy in the 3rd+4th standardized moments — HOS's signature score."""
    moments = _standardized_moments(unit.producer.weight.data)
    return np.sqrt((moments ** 2).sum(axis=1))


def _score_skew_kur(unit: PrunableUnit) -> np.ndarray:
    moments = _standardized_moments(unit.producer.weight.data)
    return np.abs(moments[:, 0]) + np.abs(moments[:, 1])


_LOCAL_CRITERIA: Dict[str, Callable[[PrunableUnit], np.ndarray]] = {
    "l1norm": _score_l1,
    "k34": _score_k34,
    "skew_kur": _score_skew_kur,
}


def _aggregate(scores: np.ndarray, mode: str) -> np.ndarray:
    """HP11 global aggregation of one unit's local scores."""
    if mode == "P1":  # z-score within the layer
        return (scores - scores.mean()) / (scores.std() + 1e-12)
    if mode == "P2":  # raw values compared globally
        return scores
    if mode == "P3":  # rank within the layer, normalised to [0, 1]
        order = scores.argsort().argsort()
        return order / max(len(scores) - 1, 1)
    raise ValueError(f"unknown HP11 aggregation {mode!r}")


class HOSCompression(CompressionMethod):
    """Higher-order-statistics pruning plus HOOI low-rank approximation."""

    label = "C5"
    name = "HOS"
    techniques = ("TE6", "TE7", "TE3")

    prune_share = 0.5  # fraction of the HP2 budget taken by TE6 pruning
    min_channels_for_tucker = 8

    def apply(self, model: Module, hp: Dict[str, object], ctx: ExecutionContext) -> StepReport:
        params_before = model.num_parameters()
        budget = ctx.param_budget(float(hp["HP2"]))
        criterion = _LOCAL_CRITERIA[str(hp.get("HP12", "l1norm"))]
        aggregation = str(hp.get("HP11", "P1"))
        teacher = copy.deepcopy(model) if ctx.train_enabled else None

        # ---- TE6: global pruning by higher-order statistics --------------
        prune_budget = int(round(budget * self.prune_share))
        scores = {
            u.name: _aggregate(criterion(u), aggregation)
            for u in model.pruning_units()
        }
        removed = prune_by_scores(model, scores, prune_budget, max_ratio=0.9)

        # ---- TE7: HOOI Tucker-2 on the largest remaining kernels ---------
        lowrank_budget = budget - removed
        removed += self._factorize(model, lowrank_budget)

        # ---- TE3: fine-tune with auxiliary reconstruction loss ------------
        opt_epochs = ctx.epochs(float(hp.get("HP13", 0.3)))
        ft_epochs = ctx.epochs(float(hp["HP1"]))
        mse_factor = float(hp.get("HP14", 1.0))
        self._train(model, teacher, opt_epochs + ft_epochs, mse_factor, ctx)

        return StepReport(
            method=self.label,
            params_before=params_before,
            params_after=model.num_parameters(),
            fine_tune_epochs=ft_epochs,
            train_epochs=opt_epochs,
            details={"params_removed": removed, "mse_factor": mse_factor},
        )

    # ------------------------------------------------------------------ #
    def _factorize(self, model: Module, budget: int) -> int:
        """Replace the largest conv kernels with Tucker-2 factorisations."""
        if budget <= 0:
            return 0
        candidates: List[tuple] = []
        for name, module in model.named_modules():
            if not isinstance(module, Conv2d):
                continue
            f, c, kh, _ = module.weight.shape
            if module.kernel_size < 2:
                continue
            if f < self.min_channels_for_tucker or c < self.min_channels_for_tucker:
                continue
            candidates.append((module.weight.size, name, module))
        candidates.sort(reverse=True, key=lambda t: t[0])

        saved_total = 0
        for size, name, conv in candidates:
            if saved_total >= budget:
                break
            f, c, k, _ = conv.weight.shape
            target = max(size - (budget - saved_total), size // 8)
            ro, ri = choose_tucker_ranks(f, c, k, target)
            new_size = tucker2_params(f, c, k, ro, ri)
            if new_size >= size:
                continue
            core, u_out, u_in = tucker2(conv.weight.data, ro, ri)
            bias = conv.bias.data.copy() if conv.bias is not None else None
            replace_module(
                model,
                name,
                TuckerConv2d(u_in, core, u_out, bias, conv.stride, conv.padding),
            )
            saved_total += size - new_size
        return saved_total

    # ------------------------------------------------------------------ #
    def _train(
        self,
        model: Module,
        teacher: Module,
        epochs: float,
        mse_factor: float,
        ctx: ExecutionContext,
    ) -> None:
        if not ctx.train_enabled or epochs <= 0 or ctx.dataset is None or ctx.trainer is None:
            return
        teacher.eval()

        def loss_fn(logits: Tensor, targets: np.ndarray, idx: np.ndarray) -> Tensor:
            loss = cross_entropy(logits, targets)
            if teacher is not None and mse_factor > 0:
                with no_grad():
                    with_teacher = teacher(Tensor(ctx.dataset.images[idx])).data
                loss = loss + mse_loss(logits, with_teacher) * mse_factor
            return loss

        ctx.trainer.fit(model, ctx.dataset, epochs, loss_fn=loss_fn)
