"""Method C2 — LeGR: Learned Global Ranking (Chin et al., CVPR 2020).

Technique TE2: filters across all layers are ranked by an *affine-transformed*
norm ``alpha_u * norm + kappa_u`` where ``(alpha_u, kappa_u)`` are per-unit
coefficients learned with a regularised evolutionary algorithm; the global
ranking then drives one-shot pruning to the HP2 budget, followed by
fine-tuning (TE3).

Hyperparameters: HP1 fine-tune epochs, HP2 parameter decrease ratio, HP6
maximum per-unit pruning ratio, HP7 evolution epochs, HP8 filter evaluation
criterion (``l1_weight``, ``l2_weight``, ``l2_bn_param``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from ..models.pruning import PrunableUnit
from ..nn import Module
from .base import CompressionMethod, ExecutionContext, StepReport, fine_tune
from .masks import masked_evaluation
from .surgery import (
    bn_scale_magnitudes,
    execute_plan,
    filter_l1_norms,
    filter_l2_norms,
    plan_global_pruning,
)

_CRITERIA: Dict[str, Callable[[PrunableUnit], np.ndarray]] = {
    "l1_weight": filter_l1_norms,
    "l2_weight": filter_l2_norms,
    # l2 norm modulated by the BN scale — LeGR's "l2_bn_param" variant.
    "l2_bn_param": lambda u: filter_l2_norms(u) * (bn_scale_magnitudes(u) + 1e-8),
}


@dataclass(eq=False)
class _Individual:
    """One candidate per-unit affine ranking transform."""

    alpha: np.ndarray  # (num_units,)
    kappa: np.ndarray  # (num_units,)
    fitness: float = -np.inf


class LeGR(CompressionMethod):
    """Evolutionarily learned global filter ranking."""

    label = "C2"
    name = "LeGR"
    techniques = ("TE2", "TE3")

    population_size = 8
    samples_per_generation = 4
    mutation_scale = 0.2
    #: cap on EA generations — at paper scale HP7 resolves to dozens of
    #: epochs; beyond this the ranking transform has long converged.
    max_generations = 25

    def apply(self, model: Module, hp: Dict[str, object], ctx: ExecutionContext) -> StepReport:
        params_before = model.num_parameters()
        budget = ctx.param_budget(float(hp["HP2"]))
        max_ratio = float(hp.get("HP6", 0.9))
        criterion = _CRITERIA[str(hp.get("HP8", "l2_weight"))]
        generations = max(1, int(round(ctx.epochs(float(hp.get("HP7", 0.5))))))
        generations = min(generations, self.max_generations)

        units = model.pruning_units()
        base_scores = [criterion(u) for u in units]
        rng = ctx.rng

        def plan_for(ind: _Individual):
            scores = {
                u.name: ind.alpha[i] * base_scores[i] + ind.kappa[i]
                for i, u in enumerate(units)
            }
            return plan_global_pruning(units, scores, budget, max_ratio=max_ratio)

        def fitness(ind: _Individual) -> float:
            plan = plan_for(ind)
            if ctx.train_enabled and ctx.dataset is not None:
                return masked_evaluation(
                    units, plan.keep, lambda: ctx.quick_accuracy(model)
                )
            # Analysis-only proxy: fraction of total criterion mass retained.
            retained = sum(
                float(base_scores[i][plan.keep[u.name]].sum())
                for i, u in enumerate(units)
            )
            total = sum(float(s.sum()) for s in base_scores) + 1e-12
            return retained / total

        # --- regularised evolution over (alpha, kappa) -------------------
        n = len(units)
        population: List[_Individual] = []
        for _ in range(self.population_size):
            ind = _Individual(
                alpha=np.abs(rng.normal(1.0, 0.1, size=n)),
                kappa=rng.normal(0.0, 0.05, size=n),
            )
            ind.fitness = fitness(ind)
            population.append(ind)

        for _ in range(generations):
            for _ in range(self.samples_per_generation):
                parent = max(
                    rng.choice(population, size=min(3, len(population)), replace=False),
                    key=lambda i: i.fitness,
                )
                child = _Individual(
                    alpha=np.abs(parent.alpha + rng.normal(0, self.mutation_scale, size=n)),
                    kappa=parent.kappa + rng.normal(0, self.mutation_scale / 4, size=n),
                )
                child.fitness = fitness(child)
                population.append(child)
                population.remove(min(population, key=lambda i: i.fitness))

        best = max(population, key=lambda i: i.fitness)
        plan = plan_for(best)
        execute_plan(units, plan)
        # One-shot plans undershoot the budget on chain topologies (unit
        # costs interact); top up with the learned ranking's criterion.
        removed_so_far = params_before - model.num_parameters()
        if removed_so_far < 0.98 * budget:
            units = model.pruning_units()
            top_up_scores = {
                u.name: best.alpha[min(i, len(best.alpha) - 1)] * criterion(u)
                + best.kappa[min(i, len(best.kappa) - 1)]
                for i, u in enumerate(units)
            }
            from .surgery import prune_by_scores

            prune_by_scores(
                model, top_up_scores, budget - removed_so_far,
                max_ratio=max_ratio, score_fn=criterion,
            )

        ft_epochs = ctx.epochs(float(hp["HP1"]))
        fine_tune(model, ft_epochs, ctx)
        return StepReport(
            method=self.label,
            params_before=params_before,
            params_after=model.num_parameters(),
            fine_tune_epochs=ft_epochs,
            details={"generations": generations, "best_fitness": best.fitness},
        )
