"""Method C6 — LFB: Learning Filter Basis (Li et al., ICCV 2019).

Technique TE9: each convolution's F filters are re-expressed as linear
combinations of a small *shared basis*: W (F, C*k*k) ≈ G (F, b) · B (b, C*k*k).
The truncated SVD gives the optimal basis; the layer is replaced by a
:class:`~repro.compression.factorized.BasisConv2d` (basis conv + pointwise
recombination).  The factorised model is then trained with an auxiliary
distillation loss against the pre-compression model (HP16: NLL / CE / MSE,
weighted by HP15) plus the ordinary task loss, for HP1 fine-tune epochs.

Layers are factorised largest-first until the HP2 parameter budget is met.
"""

from __future__ import annotations

import copy
from typing import Dict, List

import numpy as np

from ..nn import Conv2d, Module
from ..nn import functional as F
from ..nn.losses import cross_entropy, mse_loss, nll_loss
from ..nn.tensor import Tensor, no_grad
from .base import CompressionMethod, ExecutionContext, StepReport
from .factorized import BasisConv2d, replace_module


def _basis_params(f: int, c: int, k: int, b: int) -> int:
    return b * c * k * k + f * b


def _max_useful_basis(f: int, c: int, k: int) -> int:
    """Largest basis size that still shrinks the layer."""
    original = f * c * k * k
    per_basis = c * k * k + f
    return max(1, original // per_basis - 1)


class LearningFilterBasis(CompressionMethod):
    """Low-rank filter-basis approximation with auxiliary-loss training."""

    label = "C6"
    name = "LFB"
    techniques = ("TE9",)

    min_channels = 8

    def apply(self, model: Module, hp: Dict[str, object], ctx: ExecutionContext) -> StepReport:
        params_before = model.num_parameters()
        budget = ctx.param_budget(float(hp["HP2"]))
        teacher = copy.deepcopy(model) if ctx.train_enabled else None

        saved = self._factorize(model, budget)

        ft_epochs = ctx.epochs(float(hp["HP1"]))
        self._train(
            model,
            teacher,
            ft_epochs,
            float(hp.get("HP15", 1.0)),
            str(hp.get("HP16", "MSE")),
            ctx,
        )
        return StepReport(
            method=self.label,
            params_before=params_before,
            params_after=model.num_parameters(),
            fine_tune_epochs=ft_epochs,
            details={"params_saved": saved},
        )

    # ------------------------------------------------------------------ #
    def _factorize(self, model: Module, budget: int) -> int:
        candidates: List[tuple] = []
        for name, module in model.named_modules():
            if not isinstance(module, Conv2d):
                continue
            f, c, k, _ = module.weight.shape
            if f < self.min_channels or module.kernel_size < 2:
                continue
            candidates.append((module.weight.size, name, module))
        candidates.sort(reverse=True, key=lambda t: t[0])

        saved_total = 0
        for size, name, conv in candidates:
            if saved_total >= budget:
                break
            f, c, k, _ = conv.weight.shape
            b_max = _max_useful_basis(f, c, k)
            per_basis = c * k * k + f
            needed = budget - saved_total
            # smallest saving >= needed, else maximal saving (b = 1).
            b = (size - needed) // per_basis
            b = int(np.clip(b, 1, b_max))
            basis, coeffs = self._svd_basis(conv.weight.data, b)
            bias = conv.bias.data.copy() if conv.bias is not None else None
            replace_module(
                model,
                name,
                BasisConv2d(basis, coeffs, bias, conv.stride, conv.padding),
            )
            saved_total += size - _basis_params(f, c, k, b)
        return saved_total

    @staticmethod
    def _svd_basis(weight: np.ndarray, b: int):
        """Truncated SVD of the filter matrix -> (basis, coefficients).

        Uses the Gram-matrix eigenbasis when F << C*k*k (the usual case for
        conv filters), which is far cheaper than a full SVD of (F, C*k*k).
        """
        f, c, kh, kw = weight.shape
        mat = weight.reshape(f, c * kh * kw)
        if f <= mat.shape[1]:
            values, vectors = np.linalg.eigh(mat @ mat.T)
            order = np.argsort(values)[::-1][:b]
            u = vectors[:, order]
            s = np.sqrt(np.clip(values[order], 1e-24, None))
            vt = (u.T @ mat) / s[:, None]
        else:
            u_full, s_full, vt_full = np.linalg.svd(mat, full_matrices=False)
            u, s, vt = u_full[:, :b], s_full[:b], vt_full[:b]
        coeffs = u * s
        basis = vt.reshape(b, c, kh, kw)
        return basis, coeffs

    # ------------------------------------------------------------------ #
    def _train(
        self,
        model: Module,
        teacher: Module,
        epochs: float,
        factor: float,
        aux_kind: str,
        ctx: ExecutionContext,
    ) -> None:
        if not ctx.train_enabled or epochs <= 0 or ctx.dataset is None or ctx.trainer is None:
            return
        teacher.eval()

        def aux(student_logits: Tensor, teacher_logits: np.ndarray) -> Tensor:
            if aux_kind == "MSE":
                return mse_loss(student_logits, teacher_logits)
            if aux_kind == "CE":
                return cross_entropy(student_logits, teacher_logits.argmax(axis=-1))
            if aux_kind == "NLL":
                return nll_loss(
                    F.log_softmax(student_logits, axis=-1),
                    teacher_logits.argmax(axis=-1),
                )
            raise ValueError(f"unknown HP16 auxiliary loss {aux_kind!r}")

        def loss_fn(logits: Tensor, targets: np.ndarray, idx: np.ndarray) -> Tensor:
            with no_grad():
                teacher_logits = teacher(Tensor(ctx.dataset.images[idx])).data
            return cross_entropy(logits, targets) + aux(logits, teacher_logits) * factor

        ctx.trainer.fit(model, ctx.dataset, epochs, loss_fn=loss_fn)
