"""Method C3 — Network Slimming (Liu et al., ICCV 2017).

Technique TE4: channels are ranked globally by the magnitude of their
batch-norm scaling factor |gamma|; the lowest-ranked channels are removed
until the HP2 parameter budget is met, then the network is fine-tuned (TE3).

Hyperparameters (Table 1): HP1 fine-tune epochs, HP2 parameter decrease
ratio, HP6 per-channel-group maximum pruning ratio.
"""

from __future__ import annotations

from typing import Dict

from ..nn import Module
from .base import CompressionMethod, ExecutionContext, StepReport, fine_tune
from .surgery import bn_scale_magnitudes, prune_by_scores


class NetworkSlimming(CompressionMethod):
    """BN-scaling-factor channel pruning with fine-tuning."""

    label = "C3"
    name = "NS"
    techniques = ("TE4", "TE3")

    def apply(self, model: Module, hp: Dict[str, object], ctx: ExecutionContext) -> StepReport:
        params_before = model.num_parameters()
        budget = ctx.param_budget(float(hp["HP2"]))
        scores = {u.name: bn_scale_magnitudes(u) for u in model.pruning_units()}
        prune_by_scores(model, scores, budget, max_ratio=float(hp.get("HP6", 0.9)))
        ft_epochs = ctx.epochs(float(hp["HP1"]))
        fine_tune(model, ft_epochs, ctx)
        return StepReport(
            method=self.label,
            params_before=params_before,
            params_after=model.num_parameters(),
            fine_tune_epochs=ft_epochs,
        )
