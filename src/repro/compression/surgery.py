"""Structural model surgery: channel removal, rewiring and width scaling.

All pruning-based compression methods express their decisions as per-channel
scores over the model's :class:`~repro.models.pruning.PrunableUnit` list; the
functions here turn those scores into *real* structural edits — weight arrays
get smaller, batch-norm statistics are sliced, and downstream consumers have
their input channels removed.  Parameter and FLOP reductions are therefore
measured, never estimated.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..models.pruning import PrunableUnit
from ..nn import BatchNorm2d, Conv2d, Linear, Module


class SurgeryError(RuntimeError):
    """Raised when a structural edit cannot be applied."""


#: when True, :func:`prune_unit` re-checks the unit's channel wiring after
#: every edit (see :func:`check_unit`); toggled by `self_verifying_surgery`.
_SELF_VERIFY = False


def set_self_verify(enabled: bool) -> bool:
    """Enable/disable post-edit unit checks globally; returns previous value."""
    global _SELF_VERIFY
    previous = _SELF_VERIFY
    _SELF_VERIFY = bool(enabled)
    return previous


@contextlib.contextmanager
def self_verifying_surgery() -> Iterator[None]:
    """Context manager: every ``prune_unit`` verifies its wiring afterwards."""
    previous = set_self_verify(True)
    try:
        yield
    finally:
        set_self_verify(previous)


def _channel_count(module: Module, attr: str) -> Optional[int]:
    for name in (attr, attr.replace("channels", "features")):
        value = getattr(module, name, None)
        if value is not None:
            return int(value)
    return None


def check_unit(unit: PrunableUnit) -> None:
    """Verify a unit's producer/bn/consumer channel counts are consistent.

    Raises :class:`SurgeryError` on the first mismatch — the structural
    analogue of the V001/V002 rules in :mod:`repro.analysis`, applied right
    at the edit site so a botched rewiring fails loudly instead of surfacing
    later as a shape error deep inside a forward pass.
    """
    out = unit.out_channels
    if out <= 0:
        raise SurgeryError(f"{unit.name}: producer has {out} output channels")
    if unit.bn is not None and unit.bn.num_features != out:
        raise SurgeryError(
            f"{unit.name}: batch norm tracks {unit.bn.num_features} features "
            f"but producer emits {out} channels"
        )
    for consumer in unit.consumers:
        expected = _channel_count(consumer, "in_channels")
        if expected is not None and expected != out:
            raise SurgeryError(
                f"{unit.name}: consumer {type(consumer).__name__} expects "
                f"{expected} input channels but producer emits {out}"
            )


# --------------------------------------------------------------------------- #
# Channel shrink primitives
# --------------------------------------------------------------------------- #
def _require_nonempty(keep: np.ndarray, module: Module, role: str) -> np.ndarray:
    keep = np.asarray(keep)
    if keep.size == 0:
        raise SurgeryError(
            f"cannot remove every {role} channel of {type(module).__name__}"
        )
    return keep


def shrink_output(module: Module, keep: np.ndarray) -> None:
    """Remove output channels of ``module``, keeping indices ``keep``."""
    keep = _require_nonempty(keep, module, "output")
    custom = getattr(module, "shrink_output_channels", None)
    if custom is not None:
        custom(keep)
        return
    if isinstance(module, (Conv2d, Linear)):
        module.weight.data = np.ascontiguousarray(module.weight.data[keep])
        module.weight.grad = None
        if module.bias is not None:
            module.bias.data = np.ascontiguousarray(module.bias.data[keep])
            module.bias.grad = None
        return
    raise SurgeryError(f"cannot shrink output channels of {type(module).__name__}")


def shrink_input(module: Module, keep: np.ndarray) -> None:
    """Remove input channels of ``module``, keeping indices ``keep``."""
    keep = _require_nonempty(keep, module, "input")
    custom = getattr(module, "shrink_input_channels", None)
    if custom is not None:
        custom(keep)
        return
    if isinstance(module, (Conv2d, Linear)):
        module.weight.data = np.ascontiguousarray(module.weight.data[:, keep])
        module.weight.grad = None
        return
    raise SurgeryError(f"cannot shrink input channels of {type(module).__name__}")


def shrink_bn(bn: BatchNorm2d, keep: np.ndarray) -> None:
    """Slice a batch-norm's affine parameters and running statistics."""
    keep = _require_nonempty(keep, bn, "normalised")
    bn.gamma.data = np.ascontiguousarray(bn.gamma.data[keep])
    bn.beta.data = np.ascontiguousarray(bn.beta.data[keep])
    bn.gamma.grad = None
    bn.beta.grad = None
    bn._buffers["running_mean"] = np.ascontiguousarray(bn.running_mean[keep])
    bn._buffers["running_var"] = np.ascontiguousarray(bn.running_var[keep])
    object.__setattr__(bn, "running_mean", bn._buffers["running_mean"])
    object.__setattr__(bn, "running_var", bn._buffers["running_var"])


def prune_unit(unit: PrunableUnit, keep: np.ndarray) -> None:
    """Remove all channels of ``unit`` not listed in ``keep``."""
    keep = np.sort(np.asarray(keep, dtype=np.int64))
    if keep.size == 0:
        raise SurgeryError(f"cannot remove every channel of {unit.name}")
    shrink_output(unit.producer, keep)
    if unit.bn is not None:
        shrink_bn(unit.bn, keep)
    for consumer in unit.consumers:
        shrink_input(consumer, keep)
    if _SELF_VERIFY:
        check_unit(unit)


# --------------------------------------------------------------------------- #
# Cost accounting
# --------------------------------------------------------------------------- #
def _input_cost_per_channel(module: Module) -> int:
    custom = getattr(module, "input_cost_per_channel", None)
    if custom is not None:
        return int(custom())
    if isinstance(module, Conv2d):
        f, _, kh, kw = module.weight.shape
        return f * kh * kw
    if isinstance(module, Linear):
        return module.weight.shape[0]
    raise SurgeryError(f"no input-cost rule for {type(module).__name__}")


def params_per_channel(unit: PrunableUnit) -> int:
    """How many parameters disappear when one channel of ``unit`` is removed."""
    w = unit.producer.weight
    cost = int(np.prod(w.shape[1:]))  # one filter of the producer
    if getattr(unit.producer, "bias", None) is not None:
        cost += 1
    if unit.bn is not None:
        cost += 2  # gamma + beta (running stats are buffers, not parameters)
    for consumer in unit.consumers:
        cost += _input_cost_per_channel(consumer)
    return cost


# --------------------------------------------------------------------------- #
# Global greedy pruning
# --------------------------------------------------------------------------- #
@dataclass
class PruningPlan:
    """Outcome of planning a global prune: which channels each unit keeps."""

    keep: Dict[str, np.ndarray]
    params_removed: int

    def removed_fraction(self, total_params: int) -> float:
        return self.params_removed / max(total_params, 1)


def plan_global_pruning(
    units: Sequence[PrunableUnit],
    scores: Dict[str, np.ndarray],
    param_budget: int,
    max_ratio: float = 0.9,
    min_channels: int = 1,
) -> PruningPlan:
    """Plan the removal of the lowest-scored channels across all units.

    Channels are removed in ascending score order (globally) until at least
    ``param_budget`` parameters would be removed, while each unit keeps at
    least ``min_channels`` channels and loses at most ``max_ratio`` of them.
    """
    candidates = []  # (score, unit_index, channel)
    limits = []
    for ui, unit in enumerate(units):
        unit_scores = np.asarray(scores[unit.name], dtype=np.float64)
        if unit_scores.shape[0] != unit.out_channels:
            raise SurgeryError(
                f"score length {unit_scores.shape[0]} != channels "
                f"{unit.out_channels} for {unit.name}"
            )
        n = unit.out_channels
        limits.append(max(min_channels, int(np.ceil(n * (1.0 - max_ratio)))))
        for ch in range(n):
            candidates.append((unit_scores[ch], ui, ch))
    candidates.sort(key=lambda t: t[0])

    removed_per_unit = [0] * len(units)
    drop: List[List[int]] = [[] for _ in units]
    costs = [params_per_channel(u) for u in units]
    removed_params = 0
    for score, ui, ch in candidates:
        if removed_params >= param_budget:
            break
        unit = units[ui]
        if unit.out_channels - removed_per_unit[ui] - 1 < limits[ui]:
            continue
        drop[ui].append(ch)
        removed_per_unit[ui] += 1
        removed_params += costs[ui]

    keep = {}
    for ui, unit in enumerate(units):
        mask = np.ones(unit.out_channels, dtype=bool)
        mask[np.asarray(drop[ui], dtype=np.int64)] = False
        keep[unit.name] = np.flatnonzero(mask)
    return PruningPlan(keep=keep, params_removed=removed_params)


def execute_plan(units: Sequence[PrunableUnit], plan: PruningPlan) -> None:
    """Apply a :class:`PruningPlan` to the model the units belong to."""
    for unit in units:
        kept = plan.keep[unit.name]
        if kept.size < unit.out_channels:
            prune_unit(unit, kept)


def prune_by_scores(
    model: Module,
    scores: Dict[str, np.ndarray],
    param_budget: int,
    max_ratio: float = 0.9,
    score_fn: Optional[Callable[[PrunableUnit], np.ndarray]] = None,
    rounds: int = 3,
) -> int:
    """Globally prune the lowest-scored channels until ``param_budget`` params go.

    Planning costs are estimated on the *current* structure; in chain
    topologies (VGG) simultaneous removals interact, so the prune iterates:
    plan, execute, re-measure, and top up with fresh scores (``score_fn``
    when given, else re-used relative ranks) until the measured removal
    reaches the budget or ``rounds`` passes have run.

    Returns the number of parameters actually removed (measured).
    """
    start = model.num_parameters()
    current_scores = scores
    for _ in range(max(rounds, 1)):
        removed = start - model.num_parameters()
        remaining = param_budget - removed
        if remaining <= max(0.02 * param_budget, 1):
            break
        units = model.pruning_units()
        if current_scores is None:
            if score_fn is None:
                break
            current_scores = {u.name: score_fn(u) for u in units}
        plan = plan_global_pruning(units, current_scores, remaining, max_ratio=max_ratio)
        if plan.params_removed == 0:
            break
        execute_plan(units, plan)
        current_scores = None  # later rounds must re-score the new structure
        if score_fn is None:
            # Without a re-scoring rule fall back to L2 norms for top-ups.
            score_fn = filter_l2_norms
    return start - model.num_parameters()


# --------------------------------------------------------------------------- #
# Scoring criteria shared by several methods
# --------------------------------------------------------------------------- #
def filter_l1_norms(unit: PrunableUnit) -> np.ndarray:
    """L1 norm of each producer filter."""
    w = unit.producer.weight.data
    return np.abs(w).reshape(w.shape[0], -1).sum(axis=1)


def filter_l2_norms(unit: PrunableUnit) -> np.ndarray:
    """L2 norm of each producer filter."""
    w = unit.producer.weight.data
    return np.sqrt((w ** 2).reshape(w.shape[0], -1).sum(axis=1))


def bn_scale_magnitudes(unit: PrunableUnit) -> np.ndarray:
    """|gamma| of the unit's batch norm (network-slimming criterion)."""
    if unit.bn is None:
        return filter_l2_norms(unit)
    return np.abs(unit.bn.gamma.data)


# --------------------------------------------------------------------------- #
# Width scaling (used to build distillation students)
# --------------------------------------------------------------------------- #
def uniform_width_scale(model: Module, param_budget: int, max_ratio: float = 0.95) -> int:
    """Shrink every prunable unit proportionally until ``param_budget`` params go.

    Channels with the smallest L2 norms are dropped first within each unit.
    Returns parameters actually removed.
    """
    units = model.pruning_units()
    if not units:
        return 0
    total_prunable = sum(params_per_channel(u) * u.out_channels for u in units)
    fraction = min(max_ratio, param_budget / max(total_prunable, 1))
    removed = 0
    for unit in units:
        n = unit.out_channels
        n_drop = min(int(np.floor(n * fraction)), n - 1)
        if n_drop <= 0:
            continue
        order = np.argsort(filter_l2_norms(unit))
        keep = np.sort(order[n_drop:])
        cost = params_per_channel(unit)
        prune_unit(unit, keep)
        removed += n_drop * cost
    # Rounding down per unit can undershoot the budget; top up with a global
    # greedy pass over the remaining smallest-norm channels.
    if removed < param_budget:
        units = model.pruning_units()
        scores = {u.name: filter_l2_norms(u) for u in units}
        plan = plan_global_pruning(units, scores, param_budget - removed, max_ratio=max_ratio)
        execute_plan(units, plan)
        removed += plan.params_removed
    return removed
