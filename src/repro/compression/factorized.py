"""Factorised convolution layers produced by low-rank compression.

Both layers behave exactly like a :class:`~repro.nn.Conv2d` in the forward
pass but store fewer parameters.  They participate in the pruning-graph
protocol as *consumers* (their input channels can be shrunk) but are not
prunable producers themselves — once a layer is factorised its output
channels are tied to the recombination matrix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Conv2d, Module, Parameter
from ..nn import functional as F
from ..nn.tensor import Tensor


class TuckerConv2d(Module):
    """Tucker-2 factorised convolution: 1x1 -> k x k core -> 1x1.

    Produced by HOOI decomposition (method C5).  For weight W of shape
    (F, C, k, k) and ranks (r_out, r_in):

    * ``first``: pointwise conv C -> r_in (the input factor U_in^T),
    * ``core``: k x k conv r_in -> r_out (the core tensor),
    * ``last``: pointwise conv r_out -> F (the output factor U_out).
    """

    is_conv_like = True
    prunable_output = False

    def __init__(
        self,
        in_factor: np.ndarray,   # (C, r_in)
        core: np.ndarray,        # (r_out, r_in, k, k)
        out_factor: np.ndarray,  # (F, r_out)
        bias: Optional[np.ndarray],
        stride: int,
        padding: int,
    ):
        super().__init__()
        r_out, r_in, kh, kw = core.shape
        self.stride = stride
        self.padding = padding
        self.kernel_size = kh
        self.first_weight = Parameter(in_factor.T.reshape(r_in, in_factor.shape[0], 1, 1))
        self.core_weight = Parameter(core)
        self.last_weight = Parameter(out_factor.reshape(out_factor.shape[0], r_out, 1, 1))
        self.bias = Parameter(bias) if bias is not None else None

    @property
    def in_channels(self) -> int:
        return self.first_weight.shape[1]

    @property
    def out_channels(self) -> int:
        return self.last_weight.shape[0]

    @property
    def ranks(self) -> tuple:
        return (self.core_weight.shape[0], self.core_weight.shape[1])

    def forward(self, x: Tensor) -> Tensor:
        out = F.conv2d(x, self.first_weight, None, stride=1, padding=0)
        out = F.conv2d(out, self.core_weight, None, stride=self.stride, padding=self.padding)
        return F.conv2d(out, self.last_weight, self.bias, stride=1, padding=0)

    # Pruning-graph consumer protocol -------------------------------------
    def shrink_input_channels(self, keep: np.ndarray) -> None:
        self.first_weight.data = np.ascontiguousarray(self.first_weight.data[:, keep])
        self.first_weight.grad = None

    def input_cost_per_channel(self) -> int:
        return self.first_weight.shape[0]

    def __repr__(self) -> str:
        return (
            f"TuckerConv2d({self.in_channels}->{self.out_channels}, "
            f"ranks={self.ranks}, k={self.kernel_size})"
        )


class BasisConv2d(Module):
    """Filter-basis factorised convolution (method C6, LFB).

    The layer's F filters are expressed as linear combinations of ``b``
    shared basis filters: a k x k convolution with the basis followed by a
    pointwise recombination.
    """

    is_conv_like = True
    prunable_output = False

    def __init__(
        self,
        basis: np.ndarray,         # (b, C, k, k)
        coefficients: np.ndarray,  # (F, b)
        bias: Optional[np.ndarray],
        stride: int,
        padding: int,
    ):
        super().__init__()
        self.stride = stride
        self.padding = padding
        self.kernel_size = basis.shape[2]
        self.basis_weight = Parameter(basis)
        self.coeff_weight = Parameter(coefficients.reshape(*coefficients.shape, 1, 1))
        self.bias = Parameter(bias) if bias is not None else None

    @property
    def in_channels(self) -> int:
        return self.basis_weight.shape[1]

    @property
    def out_channels(self) -> int:
        return self.coeff_weight.shape[0]

    @property
    def basis_size(self) -> int:
        return self.basis_weight.shape[0]

    def forward(self, x: Tensor) -> Tensor:
        out = F.conv2d(x, self.basis_weight, None, stride=self.stride, padding=self.padding)
        return F.conv2d(out, self.coeff_weight, self.bias, stride=1, padding=0)

    # Pruning-graph consumer protocol -------------------------------------
    def shrink_input_channels(self, keep: np.ndarray) -> None:
        self.basis_weight.data = np.ascontiguousarray(self.basis_weight.data[:, keep])
        self.basis_weight.grad = None

    def input_cost_per_channel(self) -> int:
        b = self.basis_weight.shape
        return b[0] * b[2] * b[3]

    def __repr__(self) -> str:
        return (
            f"BasisConv2d({self.in_channels}->{self.out_channels}, "
            f"basis={self.basis_size}, k={self.kernel_size})"
        )


def conv_like_modules(model: Module):
    """All modules that behave like a convolution (plain or factorised)."""
    found = []
    for name, module in model.named_modules():
        if isinstance(module, Conv2d) or getattr(module, "is_conv_like", False):
            found.append((name, module))
    return found


def replace_module(model: Module, dotted: str, new_module: Module) -> None:
    """Swap the module at ``dotted`` path (e.g. ``blocks.3.conv1``) in place."""
    parts = dotted.split(".")
    parent = model
    for part in parts[:-1]:
        parent = parent._modules[part]
    parent.add_module(parts[-1], new_module)
