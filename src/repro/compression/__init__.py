"""The six compression methods of Table 1 (plus the C7/C8 quantization extensions).

``METHODS`` maps the paper's labels (C1..C6) to singleton method objects;
:func:`get_method` resolves a label or name case-insensitively.
"""

from typing import Dict

from .base import CompressionMethod, ExecutionContext, StepReport, fine_tune
from .factorized import BasisConv2d, TuckerConv2d, conv_like_modules, replace_module
from .hooi import choose_tucker_ranks, tucker2, tucker2_params, tucker2_reconstruct
from .hos import HOSCompression
from .legr import LeGR
from .lfb import LearningFilterBasis
from .lma import LMADistillation
from .masks import masked_evaluation, zero_unit_channels
from .ns import NetworkSlimming
from .quant import PostTrainingQuantization
from .quantization import IncrementalQuantization, quantize_to_power_of_two
from .sfp import SoftFilterPruning
from .surgery import (
    PruningPlan,
    SurgeryError,
    bn_scale_magnitudes,
    execute_plan,
    filter_l1_norms,
    filter_l2_norms,
    params_per_channel,
    plan_global_pruning,
    prune_by_scores,
    prune_unit,
    uniform_width_scale,
)

METHODS: Dict[str, CompressionMethod] = {
    m.label: m
    for m in (
        LMADistillation(),
        LeGR(),
        NetworkSlimming(),
        SoftFilterPruning(),
        HOSCompression(),
        LearningFilterBasis(),
    )
}

EXTENSION_METHODS: Dict[str, CompressionMethod] = {
    "C7": IncrementalQuantization(),
    "C8": PostTrainingQuantization(),
}


def get_method(key: str) -> CompressionMethod:
    """Resolve a method by label ("C2") or name ("LeGR"), case-insensitive."""
    for method in list(METHODS.values()) + list(EXTENSION_METHODS.values()):
        if key.lower() in (method.label.lower(), method.name.lower()):
            return method
    raise KeyError(f"unknown compression method {key!r}")


__all__ = [
    "BasisConv2d",
    "CompressionMethod",
    "EXTENSION_METHODS",
    "ExecutionContext",
    "HOSCompression",
    "IncrementalQuantization",
    "LMADistillation",
    "LeGR",
    "LearningFilterBasis",
    "METHODS",
    "NetworkSlimming",
    "PostTrainingQuantization",
    "PruningPlan",
    "SoftFilterPruning",
    "StepReport",
    "SurgeryError",
    "TuckerConv2d",
    "bn_scale_magnitudes",
    "choose_tucker_ranks",
    "conv_like_modules",
    "execute_plan",
    "filter_l1_norms",
    "filter_l2_norms",
    "fine_tune",
    "get_method",
    "masked_evaluation",
    "params_per_channel",
    "plan_global_pruning",
    "prune_by_scores",
    "prune_unit",
    "quantize_to_power_of_two",
    "replace_module",
    "tucker2",
    "tucker2_params",
    "tucker2_reconstruct",
    "uniform_width_scale",
    "zero_unit_channels",
]
