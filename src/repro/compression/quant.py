"""Extension method C8 — real post-training quantization (PTQ).

Where C7 (:mod:`repro.compression.quantization`) *simulates* reduced
precision by constraining float weights to powers of two, C8 actually
changes the execution path: it calls :func:`repro.nn.quant.quantize_module`,
which folds BatchNorms, swaps ``Conv2d``/``Linear`` layers for their int8 or
fp16 twins, and routes inference through the quantized kernels.  The step's
``details["effective_bits"]`` therefore reports the *executed* storage
width (8 or 16), which the static cost model mirrors exactly via the C8
effect signature — no predicted-vs-executed drift by construction.

PTQ removes no parameters and needs no fine-tuning, so it composes cheaply
after any pruning/low-rank step: the search can explore prune -> quantize
schemes the paper's space never contained.

Hyperparameters (extension cells in Table 1's grid):

* ``HP19`` — quantization mode, ``"int8"`` or ``"fp16"``;
* ``HP20`` — calibration batches for static int8 activation scales
  (ignored by fp16, which has no activation quantization).
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from ..nn import Conv2d, Module
from ..nn.quant import quantize_module, quantized_bits
from .base import CompressionMethod, ExecutionContext, StepReport

#: spatial size of synthesized calibration inputs when no dataset is wired
_FALLBACK_HW = 32
_FALLBACK_BATCH = 8


def _calibration_batches(
    model: Module, ctx: ExecutionContext, batches: int
) -> List[np.ndarray]:
    """Collect ``batches`` input arrays for activation-range calibration.

    Prefers real validation/training data from the context; falls back to
    seeded Gaussian images shaped from the model's first conv so PTQ stays
    usable on the surrogate backend (where no dataset is attached).
    """
    data = ctx.val_dataset or ctx.dataset
    if data is not None:
        collected: List[np.ndarray] = []
        iterator: Iterator = data.iter_batches(32, shuffle=False)
        for i, (xb, _yb) in enumerate(iterator):
            if i >= batches:
                break
            collected.append(np.asarray(xb, dtype=np.float32))
        if collected:
            return collected
    in_channels = next(
        (m.in_channels for m in model.modules() if type(m) is Conv2d), 3
    )
    shape = (_FALLBACK_BATCH, in_channels, _FALLBACK_HW, _FALLBACK_HW)
    return [ctx.rng.normal(0.0, 1.0, size=shape).astype(np.float32) for _ in range(batches)]


class PostTrainingQuantization(CompressionMethod):
    """One-shot PTQ through the real int8/fp16 execution path."""

    label = "C8"
    name = "PTQ"
    techniques = ("TE10",)

    def apply(self, model: Module, hp: Dict[str, object], ctx: ExecutionContext) -> StepReport:
        params_before = model.num_parameters()
        mode = str(hp.get("HP19", "int8"))
        calib_batches = int(hp.get("HP20", 2))

        calibration = None
        if mode == "int8" and calib_batches > 0:
            calibration = _calibration_batches(model, ctx, calib_batches)
        quantize_module(model, mode=mode, calibration=calibration)

        bits = quantized_bits(model)
        return StepReport(
            method=self.label,
            params_before=params_before,
            params_after=model.num_parameters(),
            fine_tune_epochs=0.0,
            details={
                "effective_bits": float(bits if bits is not None else 32),
                "calibration_batches": float(calib_batches if mode == "int8" else 0),
                "static_scales": 1.0 if calibration is not None else 0.0,
            },
        )
