"""Temporary (soft) channel masking.

LeGR's evolutionary fitness evaluation and SFP's soft pruning both need to
zero channels *without* structural removal — either to probe a candidate
pruning plan cheaply or to let zeroed filters recover during training.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from ..models.pruning import PrunableUnit


def zero_unit_channels(unit: PrunableUnit, drop: np.ndarray) -> None:
    """Zero the producer filters (and BN affine) for channels in ``drop``."""
    drop = np.asarray(drop, dtype=np.int64)
    if drop.size == 0:
        return
    unit.producer.weight.data[drop] = 0.0
    if getattr(unit.producer, "bias", None) is not None:
        unit.producer.bias.data[drop] = 0.0
    if unit.bn is not None:
        unit.bn.gamma.data[drop] = 0.0
        unit.bn.beta.data[drop] = 0.0


def masked_evaluation(
    units: Sequence[PrunableUnit],
    keep: Dict[str, np.ndarray],
    evaluate: Callable[[], float],
) -> float:
    """Evaluate with channels soft-masked, then restore the weights.

    ``keep`` maps unit name -> kept channel indices (as in a PruningPlan);
    everything else is zeroed for the duration of ``evaluate``.
    """
    saved: List[tuple] = []
    for unit in units:
        kept = keep[unit.name]
        mask = np.ones(unit.out_channels, dtype=bool)
        mask[kept] = False
        drop = np.flatnonzero(mask)
        if drop.size == 0:
            continue
        entry = [unit, drop, unit.producer.weight.data[drop].copy(), None, None, None]
        if getattr(unit.producer, "bias", None) is not None:
            entry[3] = unit.producer.bias.data[drop].copy()
        if unit.bn is not None:
            entry[4] = unit.bn.gamma.data[drop].copy()
            entry[5] = unit.bn.beta.data[drop].copy()
        saved.append(tuple(entry))
        zero_unit_channels(unit, drop)
    try:
        return evaluate()
    finally:
        for unit, drop, w, b, g, beta in saved:
            unit.producer.weight.data[drop] = w
            if b is not None:
                unit.producer.bias.data[drop] = b
            if g is not None:
                unit.bn.gamma.data[drop] = g
                unit.bn.beta.data[drop] = beta


def currently_zeroed(unit: PrunableUnit, tolerance: float = 1e-12) -> np.ndarray:
    """Channel indices whose producer filters are entirely (near) zero."""
    w = unit.producer.weight.data
    norms = np.abs(w).reshape(w.shape[0], -1).sum(axis=1)
    return np.flatnonzero(norms <= tolerance)
