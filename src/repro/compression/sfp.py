"""Method C4 — Soft Filter Pruning (He et al., IJCAI 2018).

Technique TE5: the model keeps training while, every ``HP10`` optimizer
steps, the lowest-L2-norm filters of each prunable unit are *soft-zeroed*
(set to zero but left in the graph, free to regrow).  After ``HP9``
back-propagation epochs the filters that remain zeroed are hard-pruned.

Hyperparameters: HP2 parameter decrease ratio, HP9 back-propagation epochs,
HP10 update frequency.  SFP has no separate fine-tuning phase — the
prune-while-training loop plays that role.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..nn import Module
from .base import CompressionMethod, ExecutionContext, StepReport
from .masks import zero_unit_channels
from .surgery import (
    filter_l2_norms,
    plan_global_pruning,
    prune_by_scores,
)


class SoftFilterPruning(CompressionMethod):
    """Prune-while-training filter pruning."""

    label = "C4"
    name = "SFP"
    techniques = ("TE5",)

    max_ratio = 0.9

    def _plan(self, model: Module, budget: int):
        units = model.pruning_units()
        scores = {u.name: filter_l2_norms(u) for u in units}
        return units, plan_global_pruning(units, scores, budget, max_ratio=self.max_ratio)

    def apply(self, model: Module, hp: Dict[str, object], ctx: ExecutionContext) -> StepReport:
        params_before = model.num_parameters()
        budget = ctx.param_budget(float(hp["HP2"]))
        train_epochs = ctx.epochs(float(hp["HP9"]))
        frequency = max(1, int(hp["HP10"]))

        if ctx.train_enabled and ctx.dataset is not None and ctx.trainer is not None:

            def soft_prune_hook(m: Module, step: int) -> None:
                if step % frequency != 0:
                    return
                units, plan = self._plan(m, budget)
                for unit in units:
                    kept = plan.keep[unit.name]
                    mask = np.ones(unit.out_channels, dtype=bool)
                    mask[kept] = False
                    zero_unit_channels(unit, np.flatnonzero(mask))

            ctx.trainer.fit(model, ctx.dataset, train_epochs, step_hook=soft_prune_hook)

        # Final hard prune of the lowest-norm (possibly re-grown) filters.
        # prune_by_scores iterates to the budget (one-shot plans undershoot
        # on chain topologies where unit costs interact).
        scores = {u.name: filter_l2_norms(u) for u in model.pruning_units()}
        prune_by_scores(
            model, scores, budget, max_ratio=self.max_ratio,
            score_fn=filter_l2_norms,
        )
        return StepReport(
            method=self.label,
            params_before=params_before,
            params_after=model.num_parameters(),
            train_epochs=train_epochs,
            details={"update_frequency": frequency},
        )
