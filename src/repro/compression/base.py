"""Common infrastructure for compression methods.

A *compression method* (C1–C6 of Table 1) is a callable object that mutates a
model in place given a hyperparameter dict.  Methods run inside an
:class:`ExecutionContext`, which supplies the dataset, trainer, and the
reference quantities from the paper's definitions:

* ``original_params`` — P(M) of the *uncompressed* model; HP2 (``x γ``) asks
  each strategy to remove ``γ · P(M)`` parameters, relative to the original
  model, not the current one (Table 1 footnote).
* ``pretrain_epochs`` — the original model's pre-training epoch count; the
  ``*n`` hyperparameters (HP1, HP7, HP9, HP13) multiply it.

When ``ctx.train_enabled`` is False (the paper-scale surrogate backend),
methods still perform all weight-based analysis and real structural surgery
but skip gradient training; the surrounding evaluator supplies accuracy from
the calibrated response surface instead.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..nn import Module
from ..nn.train import Trainer


@dataclass
class ExecutionContext:
    """Runtime services and reference quantities for a compression step."""

    original_params: int
    pretrain_epochs: float = 10.0
    dataset: Optional[object] = None  # SyntheticImageDataset when training
    val_dataset: Optional[object] = None
    trainer: Optional[Trainer] = None
    train_enabled: bool = True
    seed: int = 0

    def __post_init__(self):
        self.rng = np.random.default_rng(self.seed)

    def epochs(self, multiplier: float) -> float:
        """Resolve a ``*n`` hyperparameter to an absolute epoch count."""
        return multiplier * self.pretrain_epochs

    def param_budget(self, gamma: float) -> int:
        """Resolve HP2 (``x γ``) to an absolute parameter count to remove."""
        return int(round(gamma * self.original_params))

    def quick_accuracy(self, model: Module, batches: int = 4) -> float:
        """Cheap accuracy probe on the validation split (for EA fitness)."""
        data = self.val_dataset or self.dataset
        if data is None or not self.train_enabled:
            return float("nan")
        was_training = model.training
        model.eval()
        from ..nn.tensor import Tensor, no_grad

        correct = total = 0
        with no_grad():
            for i, (xb, yb) in enumerate(data.iter_batches(32, shuffle=False)):
                if i >= batches:
                    break
                logits = model(Tensor(xb)).data
                correct += int((logits.argmax(-1) == yb).sum())
                total += len(yb)
        model.train(was_training)
        return correct / max(total, 1)


@dataclass
class StepReport:
    """What one compression strategy did to the model."""

    method: str
    params_before: int
    params_after: int
    fine_tune_epochs: float = 0.0
    train_epochs: float = 0.0
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def params_removed(self) -> int:
        return self.params_before - self.params_after

    def reduction_vs(self, original_params: int) -> float:
        """Parameter reduction of this step relative to the original model."""
        return self.params_removed / max(original_params, 1)


class CompressionMethod(ABC):
    """Base class for the six methods in the search space (Table 1)."""

    #: short label used in the knowledge graph and strategy ids ("C1".."C6")
    label: str = "?"
    #: human-readable method name ("LMA", "LeGR", ...)
    name: str = "?"
    #: compression-technique entity ids attached in the knowledge graph
    techniques: tuple = ()

    @abstractmethod
    def apply(self, model: Module, hp: Dict[str, object], ctx: ExecutionContext) -> StepReport:
        """Compress ``model`` in place according to ``hp``; report what happened."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(label={self.label})"


def fine_tune(model: Module, epochs: float, ctx: ExecutionContext) -> None:
    """Shared fine-tuning procedure (technique TE3)."""
    if not ctx.train_enabled or epochs <= 0 or ctx.dataset is None or ctx.trainer is None:
        return
    ctx.trainer.fit(model, ctx.dataset, epochs)
