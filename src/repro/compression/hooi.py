"""Higher-Order Orthogonal Iteration (HOOI) Tucker-2 decomposition.

Used by method C5 (HOS) to compress convolution kernels: the 4D kernel
W (F, C, k, k) is decomposed along its output- and input-channel modes as

    W  ≈  core ×_0 U_out ×_1 U_in

with ``core`` of shape (r_out, r_in, k, k).  HOOI alternates SVDs of the two
mode unfoldings (Kolda & Bader 2009, Alg. 4.2); truncated HOSVD provides the
initialisation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Mode-n unfolding of a tensor into a matrix."""
    return np.moveaxis(tensor, mode, 0).reshape(tensor.shape[mode], -1)


def _leading_left_singular(matrix: np.ndarray, rank: int) -> np.ndarray:
    """Top-``rank`` left singular vectors via the (cheaper) Gram eigenbasis."""
    m, n = matrix.shape
    if m <= n:
        gram = matrix @ matrix.T
        values, vectors = np.linalg.eigh(gram)
        order = np.argsort(values)[::-1][:rank]
        return vectors[:, order]
    u, _, _ = np.linalg.svd(matrix, full_matrices=False)
    return u[:, :rank]


def _project_in(weight: np.ndarray, u_in: np.ndarray) -> np.ndarray:
    """weight x_1 u_in^T  — contract the input-channel mode (BLAS matmul)."""
    f, c, kh, kw = weight.shape
    moved = weight.transpose(0, 2, 3, 1).reshape(-1, c)  # (F*k*k, C)
    return (moved @ u_in).reshape(f, kh, kw, -1).transpose(0, 3, 1, 2)


def _project_out(weight: np.ndarray, u_out: np.ndarray) -> np.ndarray:
    """weight x_0 u_out^T — contract the output-channel mode (BLAS matmul)."""
    f = weight.shape[0]
    flat = weight.reshape(f, -1)  # (F, C*k*k)
    return (u_out.T @ flat).reshape(-1, *weight.shape[1:])


def tucker2(
    weight: np.ndarray,
    rank_out: int,
    rank_in: int,
    n_iter: int = 2,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tucker-2 decomposition of a conv kernel via HOOI.

    Returns ``(core, u_out, u_in)`` with shapes
    (rank_out, rank_in, k, k), (F, rank_out), (C, rank_in).
    """
    f, c = weight.shape[0], weight.shape[1]
    rank_out = int(min(rank_out, f))
    rank_in = int(min(rank_in, c))
    if rank_out < 1 or rank_in < 1:
        raise ValueError("Tucker-2 ranks must be >= 1")

    # HOSVD initialisation.
    u_out = _leading_left_singular(_unfold(weight, 0), rank_out)
    u_in = _leading_left_singular(_unfold(weight, 1), rank_in)

    # HOOI sweeps: optimise each factor with the other fixed.
    for _ in range(n_iter):
        projected_in = _project_in(weight, u_in)
        u_out = _leading_left_singular(_unfold(projected_in, 0), rank_out)
        projected_out = _project_out(weight, u_out)
        u_in = _leading_left_singular(_unfold(projected_out, 1), rank_in)

    core = _project_in(_project_out(weight, u_out), u_in)
    return core, u_out, u_in


def tucker2_reconstruct(core: np.ndarray, u_out: np.ndarray, u_in: np.ndarray) -> np.ndarray:
    """Inverse of :func:`tucker2` (up to truncation error)."""
    ro, ri, kh, kw = core.shape
    expanded = (u_out @ core.reshape(ro, -1)).reshape(-1, ri, kh, kw)
    f = expanded.shape[0]
    moved = expanded.transpose(0, 2, 3, 1).reshape(-1, ri)
    return (moved @ u_in.T).reshape(f, kh, kw, -1).transpose(0, 3, 1, 2)


def tucker2_params(f: int, c: int, k: int, rank_out: int, rank_in: int) -> int:
    """Parameter count of the factorised layer (first + core + last convs)."""
    return c * rank_in + rank_out * rank_in * k * k + f * rank_out


def choose_tucker_ranks(f: int, c: int, k: int, param_budget: int) -> Tuple[int, int]:
    """Largest symmetric-ratio ranks whose factorised size fits ``param_budget``.

    Keeps ``rank_out / f == rank_in / c`` and binary-searches the ratio.
    """
    lo, hi = 1e-3, 1.0
    best = (1, 1)
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        ro = max(1, int(round(f * mid)))
        ri = max(1, int(round(c * mid)))
        if tucker2_params(f, c, k, ro, ri) <= param_budget:
            best = (ro, ri)
            lo = mid
        else:
            hi = mid
    return best


def reconstruction_error(weight: np.ndarray, core: np.ndarray, u_out: np.ndarray, u_in: np.ndarray) -> float:
    """Relative Frobenius reconstruction error of a Tucker-2 factorisation."""
    approx = tucker2_reconstruct(core, u_out, u_in)
    return float(np.linalg.norm(weight - approx) / (np.linalg.norm(weight) + 1e-12))
