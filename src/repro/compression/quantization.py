"""Extension method C7 — INQ-style incremental quantization (Zhou et al.,
ICLR 2017).

The paper lists quantization among the compression families (§2.1) but its
search space (Table 1) contains none; enriching the space is named as future
work (§5).  This module implements that extension: weights are incrementally
constrained to powers of two (or zero), a fraction of each layer per
iteration, with the remaining full-precision weights re-trained in between.

Quantization does not remove parameters, so ``params_after == params_before``;
instead the step records the *effective* storage size in
``details["effective_bits"]`` (bits per weight after quantisation).  The
strategy space exposes it only when ``include_quantization=True``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..nn import Module, Parameter
from .base import CompressionMethod, ExecutionContext, StepReport


def quantize_to_power_of_two(values: np.ndarray, bits: int = 5) -> np.ndarray:
    """Round each value to the nearest signed power of two (or zero).

    ``bits`` bounds the exponent range, matching INQ's codebook
    {0, ±2^(n1), ..., ±2^(n2)}.
    """
    out = np.zeros_like(values)
    nonzero = np.abs(values) > 1e-12
    if not nonzero.any():
        return out
    magnitudes = np.abs(values[nonzero])
    max_exp = np.floor(np.log2(magnitudes.max())) if magnitudes.max() > 0 else 0
    min_exp = max_exp - (2 ** (bits - 1) - 1)
    exps = np.clip(np.round(np.log2(magnitudes)), min_exp, max_exp)
    quantized = np.sign(values[nonzero]) * (2.0 ** exps)
    # Values far below the smallest code collapse to zero.
    quantized[magnitudes < 2.0 ** (min_exp - 1)] = 0.0
    out[nonzero] = quantized
    return out


class IncrementalQuantization(CompressionMethod):
    """Iterative partition / quantize / re-train power-of-two quantization."""

    label = "C7"
    name = "INQ"
    techniques = ("TE10", "TE3")

    iterations = 3

    def apply(self, model: Module, hp: Dict[str, object], ctx: ExecutionContext) -> StepReport:
        params_before = model.num_parameters()
        bits = int(hp.get("HP17", 5))
        portion = float(hp.get("HP18", 0.5))  # fraction quantised per iteration
        ft_epochs = ctx.epochs(float(hp.get("HP1", 0.1)))

        params: List[Parameter] = [p for p in model.parameters() if p.ndim >= 2]
        frozen_masks = [np.zeros(p.shape, dtype=bool) for p in params]

        for it in range(self.iterations):
            for p, frozen in zip(params, frozen_masks):
                free = ~frozen
                free_values = np.abs(p.data[free])
                if free_values.size == 0:
                    continue
                # INQ quantises the largest-magnitude weights first.
                threshold = np.quantile(free_values, 1.0 - portion)
                newly = free & (np.abs(p.data) >= threshold)
                p.data[newly] = quantize_to_power_of_two(p.data[newly], bits)
                frozen |= newly
            if ctx.train_enabled and ctx.dataset is not None and ctx.trainer is not None:

                def refreeze(m: Module, step: int) -> None:
                    for p, frozen in zip(params, frozen_masks):
                        p.data[frozen] = quantize_to_power_of_two(p.data[frozen], bits)

                ctx.trainer.fit(
                    model, ctx.dataset, ft_epochs / self.iterations, step_hook=refreeze
                )

        # Final pass: quantise everything that remains.
        for p, frozen in zip(params, frozen_masks):
            p.data[~frozen] = quantize_to_power_of_two(p.data[~frozen], bits)
            frozen[:] = True

        return StepReport(
            method=self.label,
            params_before=params_before,
            params_after=model.num_parameters(),
            fine_tune_epochs=ft_epochs,
            details={"effective_bits": float(bits), "iterations": float(self.iterations)},
        )
