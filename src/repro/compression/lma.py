"""Method C1 — LMA: Light Multi-segment Activation distillation
(Xu et al., AAAI 2020).

Technique TE1: the current model becomes the *teacher*; a narrower student
is built by uniformly width-scaling every prunable unit until the HP2
parameter budget is removed, then the student is trained with the LMA
distillation objective (:func:`repro.nn.losses.lma_distillation_loss`):
hard-label cross-entropy (weight HP5 alpha) plus a soft term matching the
teacher's logits after a piecewise-linear multi-segment transform, softened
by temperature HP4, for HP1 fine-tune epochs.
"""

from __future__ import annotations

import copy
from typing import Dict

import numpy as np

from ..nn import Module
from ..nn.losses import lma_distillation_loss
from ..nn.tensor import Tensor, no_grad
from .base import CompressionMethod, ExecutionContext, StepReport
from .surgery import uniform_width_scale


class LMADistillation(CompressionMethod):
    """Width-scaled student trained with LMA multi-segment distillation."""

    label = "C1"
    name = "LMA"
    techniques = ("TE1",)

    segments = 4

    def apply(self, model: Module, hp: Dict[str, object], ctx: ExecutionContext) -> StepReport:
        params_before = model.num_parameters()
        budget = ctx.param_budget(float(hp["HP2"]))
        teacher = copy.deepcopy(model) if ctx.train_enabled else None

        uniform_width_scale(model, budget)

        ft_epochs = ctx.epochs(float(hp["HP1"]))
        temperature = float(hp.get("HP4", 3.0))
        alpha = float(hp.get("HP5", 0.5))
        if ctx.train_enabled and ctx.dataset is not None and ctx.trainer is not None and ft_epochs > 0:
            teacher.eval()

            def loss_fn(logits: Tensor, targets: np.ndarray, idx: np.ndarray) -> Tensor:
                with no_grad():
                    teacher_logits = teacher(Tensor(ctx.dataset.images[idx])).data
                return lma_distillation_loss(
                    logits, teacher_logits, targets, temperature, alpha, self.segments
                )

            ctx.trainer.fit(model, ctx.dataset, ft_epochs, loss_fn=loss_fn)

        return StepReport(
            method=self.label,
            params_before=params_before,
            params_after=model.num_parameters(),
            fine_tune_epochs=ft_epochs,
            details={"temperature": temperature, "alpha": alpha},
        )
