"""Command-line interface: ``python -m repro <command>``.

Commands
--------
search       run AutoMC (or a baseline) on a paper-scale task
table2/3     regenerate the paper's tables
figure4/5/6  regenerate the paper's figures
inspect      print the search-space / knowledge-graph inventory
analyze      statically verify models / checkpoints / schemes
trace        summarize a JSONL run journal (see ``search --journal``)
bench        time the repro.nn hot-path kernels against the committed baseline
cache        inspect / prune the persistent result cache (``--cache-dir``)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _add_budget_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--budget", type=float, default=30.0,
                        help="simulated GPU-hours per algorithm (default 30)")
    parser.add_argument("--seed", type=int, default=0)


def _add_static_budget_args(parser: argparse.ArgumentParser) -> None:
    """Static cost-model ceilings (repro.analysis.costmodel S001-S005)."""
    parser.add_argument("--max-params", type=int, default=None,
                        help="S001: reject schemes whose predicted parameter "
                             "count exceeds this cap (no evaluation cost)")
    parser.add_argument("--max-flops", type=int, default=None,
                        help="S002: cap on predicted inference FLOPs")
    parser.add_argument("--max-act-mem", type=int, default=None,
                        help="S003: cap on predicted peak activation bytes")
    parser.add_argument("--max-latency-ms", type=float, default=None,
                        help="S004: cap on the predicted latency proxy (ms)")
    parser.add_argument("--max-weight-mem", type=int, default=None,
                        help="S005: cap on predicted weight storage bytes "
                             "(params x effective weight bits; quantization "
                             "shrinks it without removing parameters)")


def _config(args) -> "ExperimentConfig":
    from .experiments import ExperimentConfig

    return ExperimentConfig(
        budget_hours=args.budget,
        seed=args.seed,
        workers=getattr(args, "workers", 0),
        cache_dir=getattr(args, "cache_dir", None),
        snapshot_dir=getattr(args, "snapshot_dir", None),
        journal=getattr(args, "journal", None),
        max_params=getattr(args, "max_params", None),
        max_flops=getattr(args, "max_flops", None),
        max_act_mem=getattr(args, "max_act_mem", None),
        max_latency_ms=getattr(args, "max_latency_ms", None),
        max_weight_mem=getattr(args, "max_weight_mem", None),
        latency_batch=getattr(args, "latency_batch", None),
    )


def cmd_search(args) -> int:
    from .experiments.common import run_algorithm

    exp = {"exp1": "Exp1", "exp2": "Exp2"}[args.experiment]
    name = args.solver if getattr(args, "solver", None) else args.algorithm
    space = None
    if getattr(args, "methods", None):
        from .space import StrategySpace

        space = StrategySpace(method_labels=args.methods.split(","))
    elif getattr(args, "quantization", False):
        from .space import StrategySpace

        space = StrategySpace(include_quantization=True)
    result = run_algorithm(name, exp, _config(args), space=space)
    print(result.summary())
    if result.engine_stats is not None:
        stats = result.engine_stats
        if "workers" in stats:
            foreign = stats.get("cache_foreign_hits", 0)
            print(
                f"engine: {stats['workers']} workers, "
                f"{stats['fresh_evaluations']} fresh evaluations, "
                f"{stats['cache_hits']} persistent-cache hits "
                f"({foreign} written by other runs), "
                f"{stats['steps_replayed']} steps replayed"
            )
        if stats.get("snapshot_hits"):
            print(
                f"snapshots: {stats['snapshot_hits']} prefix resumes, "
                f"{stats['snapshot_steps_saved']} replay steps saved"
            )
        if "budget_pruned" in stats:
            print(
                f"static budget: {stats['budget_pruned']} candidates pruned at "
                f"generation, {stats['budget_filtered']} filtered pre-batch, "
                f"{stats['budget_rejects']} lint-rejected (all at zero cost)"
            )
        if "latency_violations" in stats:
            print(
                f"measured latency: {stats['latency_violations']} evaluated "
                f"schemes over the --max-latency-ms budget (wall-clock)"
            )
        if stats.get("predicted_evals"):
            print(
                f"cost-model drift over {stats['predicted_evals']} evaluations: "
                f"params {stats['drift_params_pct']:.2f}%, "
                f"flops {stats['drift_flops_pct']:.2f}% (mean absolute)"
            )
        if stats.get("act_mem_evals"):
            peak = stats.get("workspace_bytes_peak", 0.0)
            print(
                f"activation-memory drift over {stats['act_mem_evals']:.0f} "
                f"latency probes: {stats['drift_act_mem_pct']:.2f}% "
                f"(workspace peak {peak / 1024.0:.0f} KiB)"
            )
        if stats.get("weight_bits_mismatches"):
            print(
                f"weight-bits drift: {stats['weight_bits_mismatches']:.0f} "
                f"evaluations where executed precision != predicted"
            )
    print()
    print(f"Pareto schemes with PR >= {result.gamma:.0%}:")
    for r in sorted(result.pareto, key=lambda r: r.pr):
        print(f"  {r}")
    if getattr(args, "journal", None):
        print()
        print(f"run journal written to {args.journal} "
              f"(inspect with: repro trace summarize {args.journal})")
    return 0


def cmd_trace(args) -> int:
    import json

    from .obs import summarize_journal

    journals = [args.journal] + list(getattr(args, "more_journals", []) or [])
    summaries = []
    for path in journals:
        try:
            summaries.append(summarize_journal(path))
        except FileNotFoundError:
            print(f"no such journal: {path}", file=sys.stderr)
            return 2
        except OSError as exc:
            # directories, permission errors, ... — anything unreadable
            print(f"cannot read journal {path}: {exc}", file=sys.stderr)
            return 2
    if args.json:
        payload = (
            summaries[0].to_dict()
            if len(summaries) == 1
            else [s.to_dict() for s in summaries]
        )
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if len(summaries) == 1:
        print(summaries[0].format())
        return 0
    # Multiple journals: group runs by the solver recorded in the header.
    groups: dict = {}
    for summary in summaries:
        groups.setdefault(summary.solver or "unknown", []).append(summary)
    for solver in sorted(groups):
        members = groups[solver]
        cost = sum(s.sim_cost_total for s in members)
        evals = sum(s.fresh_evaluations for s in members)
        rounds = sum(s.rounds for s in members)
        print(
            f"solver {solver}: {len(members)} run(s), {evals} evaluations, "
            f"{rounds} rounds, {cost:.4f} sim-h"
        )
        for summary in members:
            print(f"  {summary.path}: {summary.fresh_evaluations} fresh, "
                  f"{summary.sim_cost_total:.4f} sim-h")
    return 0


def cmd_table2(args) -> int:
    from .experiments import run_table2

    print(run_table2(_config(args)).format())
    return 0


def cmd_table3(args) -> int:
    from .experiments import run_table3

    print(run_table3(_config(args)).format())
    return 0


def cmd_figure(args) -> int:
    from .experiments import run_figure4, run_figure5, run_figure6

    runner = {"4": run_figure4, "5": run_figure5, "6": run_figure6}[args.number]
    print(runner(_config(args)).format())
    return 0


def cmd_report(args) -> int:
    from .experiments.report import run_full_report

    report = run_full_report(
        _config(args),
        output_dir=args.output,
        include_ablations=args.ablations,
    )
    print(report.summary())
    return 0


def cmd_evaluate(args) -> int:
    from .experiments.common import EXPERIMENTS, make_evaluator
    from .space import StrategySpace

    exp = {"exp1": "Exp1", "exp2": "Exp2"}[args.experiment]
    model_name, dataset_name, task = EXPERIMENTS[exp]
    evaluator = make_evaluator(model_name, dataset_name, task, seed=args.seed)
    space = StrategySpace()
    scheme = space.parse_scheme(args.scheme)
    result = evaluator.evaluate(scheme)
    print(result)
    for i, report in enumerate(result.step_reports, 1):
        print(f"  step {i}: {report.method} removed {report.params_removed} params")
    return 0


def cmd_inspect(args) -> int:
    from .knowledge import build_knowledge_graph, default_experience
    from .space import MAX_SCHEME_LENGTH, StrategySpace, grid_size, tree_size

    space = StrategySpace()
    print(f"strategy space: {len(space)} strategies over {space.method_labels}")
    for label in space.method_labels:
        print(f"  {label}: {grid_size(label)} strategies")
    print(f"scheme tree (L={MAX_SCHEME_LENGTH}): {tree_size(len(space)):.3e} schemes")
    records = default_experience()
    print(f"experience records: {len(records)}")
    if args.graph:
        graph = build_knowledge_graph(space)
        print(graph)
        for entity_type in ("strategy", "method", "hyperparameter", "setting", "technique"):
            print(f"  {entity_type}: {len(graph.entities_of_type(entity_type))}")
    return 0


def _analyze_space(args, input_shape) -> int:
    """``repro analyze space``: how much of S a static budget eliminates."""
    import numpy as np

    from .analysis.costmodel import Budget, S_RULES, SchemeCostModel
    from .models import available_models, create_model
    from .space import MAX_SCHEME_LENGTH, StrategySpace
    from .space.scheme import CompressionScheme

    budget = Budget(
        max_params=args.max_params,
        max_flops=args.max_flops,
        max_act_mem=args.max_act_mem,
        max_latency_ms=args.max_latency_ms,
        max_weight_mem=args.max_weight_mem,
    )
    if budget.is_null:
        print("analyze space needs at least one cap: --max-params, --max-flops, "
              "--max-act-mem, --max-latency-ms or --max-weight-mem",
              file=sys.stderr)
        return 2
    if args.target_model not in available_models():
        print(f"unknown model {args.target_model!r}; available: "
              f"{', '.join(available_models())}", file=sys.stderr)
        return 2

    model = create_model(args.target_model, num_classes=args.num_classes)
    cost_model = SchemeCostModel(model, input_shape=input_shape)
    base = cost_model.base_prediction
    space = StrategySpace()
    rng = np.random.default_rng(args.seed)

    total = 0
    infeasible = 0
    per_rule: dict = {}
    for _ in range(args.samples):
        # Uniform draw from the scheme tree, mirroring the search baselines'
        # random_scheme(): length 1..L, nominal PR capped at 0.9.
        length = int(rng.integers(1, MAX_SCHEME_LENGTH + 1))
        scheme = CompressionScheme()
        for _ in range(length):
            for _ in range(20):
                strategy = space[int(rng.integers(0, len(space)))]
                if scheme.total_param_step + strategy.param_step <= 0.9:
                    scheme = scheme.extend(strategy)
                    break
        if scheme.is_empty:
            continue
        total += 1
        violations = budget.violations(cost_model.predict(scheme))
        if violations:
            infeasible += 1
            for rule, *_ in violations:
                per_rule[rule] = per_rule.get(rule, 0) + 1

    print(f"scheme space under a static budget — {args.target_model}, "
          f"{total} sampled schemes (seed {args.seed})")
    print(f"  base model: {base.params} params, {base.flops} FLOPs, "
          f"{base.act_mem} peak activation bytes, {base.latency_ms:.3f} ms proxy")
    for key, value in sorted(budget.to_payload().items()):
        if value is not None:
            print(f"  budget {key} = {value}")
    pct = 100.0 * infeasible / max(total, 1)
    print(f"  statically eliminated: {infeasible} / {total} ({pct:.1f}%) "
          f"at zero evaluation cost")
    for rule in sorted(per_rule):
        print(f"    {rule} ({S_RULES[rule]}): {per_rule[rule]}")
    return 0


def cmd_analyze(args) -> int:
    from .analysis import lint_scheme, verify_checkpoint, verify_model
    from .models import available_models, create_model
    from .nn.serialization import load_state
    from .space import StrategySpace

    try:
        input_shape = tuple(int(d) for d in args.input_shape.split(","))
    except ValueError:
        input_shape = ()
    if len(input_shape) != 3:
        print(f"--input-shape must be C,H,W (got {args.input_shape!r})", file=sys.stderr)
        return 2

    if args.model == "space":
        return _analyze_space(args, input_shape)

    if args.model and args.model not in available_models():
        print(f"unknown model {args.model!r}; available: {', '.join(available_models())}",
              file=sys.stderr)
        return 2

    reports = []
    if args.all_models:
        for model_name in available_models():
            model = create_model(model_name, num_classes=args.num_classes)
            reports.append(verify_model(model, input_shape=input_shape, name=model_name))
    elif args.model:
        model = create_model(args.model, num_classes=args.num_classes)
        if args.checkpoint:
            state = load_state(args.checkpoint)
            reports.append(
                verify_checkpoint(
                    state, model, input_shape=input_shape,
                    name=f"{args.model} @ {args.checkpoint}",
                )
            )
        else:
            reports.append(verify_model(model, input_shape=input_shape, name=args.model))
    elif args.checkpoint:
        reports.append(verify_checkpoint(load_state(args.checkpoint), name=args.checkpoint))

    if args.scheme:
        from .analysis import Budget, SchemeCostModel

        space = StrategySpace(include_quantization=True)
        try:
            scheme = space.parse_scheme(args.scheme)
        except ValueError as exc:
            print(f"cannot parse scheme: {exc}", file=sys.stderr)
            return 2
        budget = Budget(
            max_params=args.max_params,
            max_flops=args.max_flops,
            max_act_mem=args.max_act_mem,
            max_latency_ms=args.max_latency_ms,
            max_weight_mem=args.max_weight_mem,
        )
        if budget.is_null:
            reports.append(lint_scheme(scheme))
        else:
            # Budget caps turn linting into budget-feasibility checking
            # against the named model (S001-S004).
            name = args.model or args.target_model
            cost_model = SchemeCostModel(
                create_model(name, num_classes=args.num_classes),
                input_shape=input_shape,
            )
            reports.append(
                lint_scheme(scheme, budget=budget, cost_model=cost_model)
            )

    if not reports:
        print("nothing to analyze: give MODEL, --all-models, --checkpoint or --scheme",
              file=sys.stderr)
        return 2

    failed = False
    for report in reports:
        print(report.format(verbose=args.verbose))
        failed |= report.has_errors or (args.strict and bool(report.warnings))
    return 1 if failed else 0


def cmd_bench(args) -> int:
    import json

    from .nn.bench import (
        build_quant_report,
        build_report,
        build_workspace_report,
        format_report,
        load_baseline,
        run_kernel_benchmarks,
        run_quant_benchmarks,
        run_workspace_benchmarks,
    )

    if args.suite == "quant":
        results = run_quant_benchmarks(
            smoke=args.smoke, repeats=args.repeats, seed=args.seed
        )
    elif args.suite == "workspace":
        results = run_workspace_benchmarks(
            smoke=args.smoke, repeats=args.repeats, seed=args.seed
        )
    else:
        results = run_kernel_benchmarks(
            smoke=args.smoke, repeats=args.repeats, seed=args.seed, only=args.only
        )

    if args.compare:
        # Ad-hoc A/B: baseline column comes from an earlier report file
        # instead of the suite's committed/built-in reference.  An unusable
        # file degrades to "no baseline" rather than crashing mid-run.
        try:
            baseline = load_baseline(args.compare)
            description = f"earlier run loaded from {args.compare}"
        except ValueError as exc:
            print(f"no baseline usable from {args.compare} ({exc}); "
                  f"recording fresh numbers", file=sys.stderr)
            baseline, description = {}, f"unusable baseline file {args.compare}"
        report = build_report(
            results, smoke=args.smoke, baseline=baseline, description=description,
            suite=("repro.nn quantized inference" if args.suite == "quant"
                   else "repro.nn kernel plans + workspace arena"
                   if args.suite == "workspace"
                   else "repro.nn kernel microbenchmarks"),
        )
    elif args.suite == "quant":
        report = build_quant_report(results, smoke=args.smoke)
    elif args.suite == "workspace":
        report = build_workspace_report(results, smoke=args.smoke)
    else:
        report = build_report(results, smoke=args.smoke)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report))
        if args.output:
            print(f"report written to {args.output}")
    return 0


def _format_cache_stats(stats: dict) -> str:
    lines = [f"cache {stats['cache_dir']}: "
             f"{stats['entries']} entries, {stats['bytes'] / 1e6:.2f} MB"]
    for fp in stats["fingerprints"]:
        lines.append(
            f"  {fp['root']}: {fp['entries']} entries, {fp['bytes'] / 1e6:.2f} MB"
        )
    if "removed" in stats:
        lines.append(f"removed {stats['removed']} entries")
    return "\n".join(lines)


def cmd_cache(args) -> int:
    import json

    from .core.engine import cache_stats, prune_cache

    if args.cache_command == "prune":
        stats = prune_cache(args.cache_dir, args.max_entries)
    else:
        stats = cache_stats(args.cache_dir)
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
    else:
        print(_format_cache_stats(stats))
    return 0


def cmd_serve(args) -> int:
    import signal

    from .serve import ServeDaemon

    daemon = ServeDaemon(
        args.state_dir,
        workers=args.workers,
        max_jobs=args.max_jobs,
        host=args.host,
        port=args.port,
        snapshot_budget_mb=args.snapshot_budget_mb,
    )

    def _on_sigterm(signum, frame):
        # Crash semantics by design: exit immediately without journalling
        # in-flight jobs, so the next daemon on this state dir recovers them
        # as interrupted/resumable.  Graceful stops go through SIGINT or the
        # protocol 'shutdown' op.
        import os

        os._exit(0)

    signal.signal(signal.SIGTERM, _on_sigterm)
    daemon.start()
    print(
        f"repro serve: listening on {daemon.host}:{daemon.port} "
        f"(state dir {daemon.state_dir}, {args.workers} worker lanes, "
        f"max {args.max_jobs} concurrent jobs)",
        flush=True,
    )
    try:
        daemon.wait()
    except KeyboardInterrupt:
        pass
    daemon.stop()
    return 0


def _job_spec_from_args(args) -> "object":
    import json

    from .serve import JobSpec

    if args.spec:
        with open(args.spec) as handle:
            return JobSpec.from_payload(json.load(handle))
    if not args.experiment:
        print("job submit needs an experiment (exp1/exp2) or --spec FILE",
              file=sys.stderr)
        raise SystemExit(2)
    from .core.config import EvaluatorConfig
    from .experiments.common import EXPERIMENTS

    exp = {"exp1": "Exp1", "exp2": "Exp2"}[args.experiment]
    model_name, dataset_name, task = EXPERIMENTS[exp]
    config = EvaluatorConfig(
        model_name=model_name, dataset_name=dataset_name, task=task, seed=args.seed
    )
    return JobSpec(
        evaluator=config.to_payload(),
        solver=args.solver,
        tenant=args.tenant,
        gamma=args.gamma,
        budget_hours=args.budget,
        max_length=args.max_length,
        seed=args.seed,
        method_labels=args.methods.split(",") if args.methods else None,
    )


def _format_job(job: dict) -> str:
    line = (
        f"{job['job_id']}  {job['state']:<11}  tenant={job['tenant']}  "
        f"solver={job['solver']}  rounds={job['rounds']}  "
        f"evals={job['evaluations']}  cost={job['total_cost']:.4f}h"
    )
    if job.get("error"):
        line += f"  error={job['error']['type']}: {job['error']['message']}"
    if job.get("resumable"):
        line += "  [resumable]"
    return line


def cmd_job(args) -> int:
    import json

    from .serve import ServeClient, ServerError, ServeUnavailable

    try:
        client = ServeClient(args.state_dir)
        command = args.job_command
        if command == "submit":
            job = client.submit(_job_spec_from_args(args))
            print(_format_job(job))
            if args.watch:
                return _watch_job(client, job["job_id"], args.json)
            return 0
        if command == "status":
            job = client.status(args.job_id)
            if args.json:
                print(json.dumps(job, indent=2, sort_keys=True))
            else:
                print(_format_job(job))
            return 0
        if command == "watch":
            return _watch_job(client, args.job_id, args.json)
        if command == "cancel":
            print(_format_job(client.cancel(args.job_id)))
            return 0
        if command == "list":
            jobs = client.list_jobs()
            if args.json:
                print(json.dumps(jobs, indent=2, sort_keys=True))
            else:
                for job in jobs:
                    print(_format_job(job))
                if not jobs:
                    print("no jobs")
            return 0
        if command == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if command == "shutdown":
            client.shutdown()
            print("daemon stopping")
            return 0
        raise ValueError(command)
    except (ServeUnavailable, ServerError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _watch_job(client, job_id: str, as_json: bool) -> int:
    import json

    final = None
    for event in client.watch(job_id):
        if as_json:
            print(json.dumps(event, sort_keys=True), flush=True)
        elif event["kind"] == "round":
            print(
                f"{job_id}  round {event['rounds']}: "
                f"{event['evaluations']} evals, {event['total_cost']:.4f}h, "
                f"front size {len(event['pareto'])}",
                flush=True,
            )
        elif event["kind"] in ("snapshot", "done"):
            print(_format_job(event["job"]), flush=True)
        if event["kind"] == "done":
            final = event["job"]
    if final is None:
        print("watch stream ended early", file=sys.stderr)
        return 2
    return 0 if final["state"] == "completed" else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AutoMC reproduction — automated model compression",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "search",
        help="run one search algorithm on Exp1/Exp2",
        description="Run one solver from the registry (repro.core.solver) on "
                    "Exp1/Exp2 under the shared simulated budget.",
        epilog="examples:\n"
               "  repro search exp1 --solver progressive --budget 8\n"
               "  repro search exp1 --solver sa --budget 2 --journal sa.jsonl\n"
               "  repro search exp2 --solver regevo --workers 4\n"
               "  repro search exp1 --solver amc --budget 2\n"
               "  repro trace summarize sa.jsonl amc.jsonl   # group by solver",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("experiment", choices=["exp1", "exp2"])
    p.add_argument("--solver", default=None,
                   choices=["progressive", "random", "evolution", "grid",
                            "rl", "sa", "regevo", "amc"],
                   help="solver registry name (overrides --algorithm)")
    p.add_argument("--algorithm", default="AutoMC",
                   choices=["AutoMC", "Evolution", "RL", "Random"],
                   help="legacy algorithm label (prefer --solver)")
    p.add_argument("--workers", type=int, default=0,
                   help="evaluation worker processes (0 = serial, same results)")
    p.add_argument("--cache-dir", dest="cache_dir", default=None,
                   help="persistent result cache; repeated runs skip "
                        "already-evaluated schemes")
    p.add_argument("--snapshot-dir", dest="snapshot_dir", default=None,
                   help="shared prefix-model snapshot store; workers and "
                        "repeated runs resume trained prefixes instead of "
                        "replaying them (results unchanged)")
    p.add_argument("--journal", default=None,
                   help="stream spans/events of the run to this JSONL journal "
                        "(summarize afterwards with 'repro trace summarize')")
    p.add_argument("--methods", default=None,
                   help="comma-separated method labels restricting the space, "
                        "e.g. C3,C8 to compose pruning with post-training "
                        "quantization")
    p.add_argument("--quantization", action="store_true",
                   help="extend the space with the C7/C8 quantization methods")
    p.add_argument("--latency-batch", dest="latency_batch", type=int, default=None,
                   help="measure median wall-clock inference latency at this "
                        "batch size for every evaluated scheme (extra column; "
                        "with --max-latency-ms, violations are counted against "
                        "the measured number too)")
    _add_budget_args(p)
    _add_static_budget_args(p)
    p.set_defaults(func=cmd_search)

    p = sub.add_parser("table2", help="regenerate Table 2")
    _add_budget_args(p)
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("table3", help="regenerate Table 3")
    _add_budget_args(p)
    p.set_defaults(func=cmd_table3)

    p = sub.add_parser("figure", help="regenerate Figure 4/5/6")
    p.add_argument("number", choices=["4", "5", "6"])
    _add_budget_args(p)
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("report", help="regenerate every table/figure at once")
    p.add_argument("--output", default="reports", help="artifact directory")
    p.add_argument("--ablations", action="store_true",
                   help="also run the Figure 5 ablation variants")
    _add_budget_args(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("evaluate", help="evaluate one scheme identifier")
    p.add_argument("experiment", choices=["exp1", "exp2"])
    p.add_argument("scheme", help='e.g. "C3[HP1=0.5,HP2=0.2,HP6=0.9] -> C4[...]"')
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("inspect", help="print search-space inventory")
    p.add_argument("--graph", action="store_true", help="also build the KG")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser(
        "analyze",
        help="statically verify models / checkpoints / lint schemes / "
             "measure budget pruning power",
        description="Static analysis: graph verification of registered models, "
                    "checkpoint sanity checks and compression-scheme linting. "
                    "With budget caps (--max-params etc.) schemes are also "
                    "checked for budget feasibility via the abstract cost "
                    "model, and 'repro analyze space' reports how much of the "
                    "scheme space the budget statically eliminates. "
                    "Exits 1 when any report has errors (or warnings with --strict).",
    )
    p.add_argument("model", nargs="?",
                   help="registered model name (see repro.models), or 'space' "
                        "to measure a budget's pruning power over the scheme tree")
    p.add_argument("--all-models", action="store_true",
                   help="verify every registered model")
    p.add_argument("--checkpoint", help=".npz checkpoint to verify "
                   "(against MODEL when given)")
    p.add_argument("--scheme", help='scheme to lint, e.g. "C3[HP1=0.5,...]"')
    p.add_argument("--num-classes", type=int, default=10)
    p.add_argument("--input-shape", default="3,32,32", help="C,H,W (default 3,32,32)")
    p.add_argument("--strict", action="store_true", help="warnings also fail")
    p.add_argument("--verbose", action="store_true", help="also print ok-level notes")
    _add_static_budget_args(p)
    p.add_argument("--target-model", default="resnet56",
                   help="model the cost model interprets schemes against "
                        "(for 'analyze space' and budgeted --scheme linting)")
    p.add_argument("--samples", type=int, default=2000,
                   help="schemes sampled from the tree by 'analyze space'")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "trace",
        help="post-hoc analysis of a JSONL run journal",
        description="Summarize a run journal produced by 'repro search --journal' "
                    "or AutoMC(trace=...): span/event counts, wall-time and "
                    "simulated-cost attribution, cache-hit/lint-reject breakdown. "
                    "Works on truncated journals from interrupted runs.",
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    p = trace_sub.add_parser("summarize", help="print a journal summary")
    p.add_argument("journal", help="path to the .jsonl run journal")
    p.add_argument("more_journals", nargs="*", metavar="journal",
                   help="additional journals; runs are grouped by solver")
    p.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "bench",
        help="microbenchmark the repro.nn kernels (conv/BN/train-step/inference)",
        description="Time the repro.nn hot-path kernels and compare against the "
                    "committed pre-fast-path baseline (see benchmarks/BENCH_nn.json "
                    "and docs/performance.md).  --suite quant times float32 vs "
                    "fp16 vs int8 inference on the same model "
                    "(benchmarks/BENCH_quant.json, docs/quantization.md).  "
                    "--suite workspace times the kernel-plan/workspace path "
                    "against plans-off and the committed pre-plan baseline "
                    "(benchmarks/BENCH_workspace.json).",
    )
    p.add_argument("--suite", choices=["nn", "quant", "workspace"], default="nn",
                   help="'nn' = hot-path kernels vs the committed baseline; "
                        "'quant' = quantized inference vs the float32 path; "
                        "'workspace' = kernel plans on/off vs the pre-plan "
                        "baseline")
    p.add_argument("--smoke", action="store_true",
                   help="tiny shapes for CI; numbers not comparable to baseline")
    p.add_argument("--repeats", type=int, default=5,
                   help="timing repetitions per workload (median is reported)")
    p.add_argument("--only", default=None,
                   help="run a single workload, e.g. resnet56_step (nn suite only)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--compare", default=None, metavar="PATH",
                   help="A/B against an earlier report JSON written with "
                        "--output instead of the built-in baseline; a missing "
                        "or mismatched file degrades to 'no baseline'")
    p.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    p.add_argument("--output", default=None,
                   help="also write the JSON report here (e.g. BENCH_nn.json)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant search daemon (see 'repro job')",
        description="Long-lived search-as-a-service daemon: accepts concurrent "
                    "search jobs over a local JSON-lines TCP protocol, sharing "
                    "one warm worker-lane pool and one prefix-snapshot store "
                    "across tenants.  Clients discover the endpoint through "
                    "<state-dir>/serve.json; per-job journals land under "
                    "<state-dir>/journals/.  SIGTERM exits immediately (crash "
                    "semantics — a restart recovers in-flight jobs as "
                    "interrupted); use SIGINT or 'repro job shutdown' for a "
                    "graceful stop.  See docs/serving.md.",
    )
    p.add_argument("--state-dir", default="serve-state",
                   help="journal + snapshot + endpoint directory (default ./serve-state)")
    p.add_argument("--workers", type=int, default=0,
                   help="shared worker lanes for all jobs (0 = each job serial "
                        "on its own thread; results identical)")
    p.add_argument("--max-jobs", type=int, default=4,
                   help="concurrent running jobs (default 4; extras queue)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    p.add_argument("--snapshot-budget-mb", type=float, default=None,
                   help="byte budget of the shared snapshot store")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "job",
        help="submit / inspect / cancel jobs on a 'repro serve' daemon",
        description="Thin client for the serve daemon.  All commands find the "
                    "daemon through --state-dir/serve.json.",
        epilog="examples:\n"
               "  repro serve --state-dir /tmp/svc --max-jobs 4 &\n"
               "  repro job submit exp1 --solver sa --budget 2 --tenant alice\n"
               "  repro job watch job-0001\n"
               "  repro job list\n"
               "  repro job shutdown",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--state-dir", default="serve-state",
                   help="the daemon's state directory (default ./serve-state)")
    job_sub = p.add_subparsers(dest="job_command", required=True)
    ps = job_sub.add_parser("submit", help="submit a search job")
    ps.add_argument("experiment", nargs="?", choices=["exp1", "exp2"],
                    help="paper task to search (or use --spec)")
    ps.add_argument("--spec", default=None,
                    help="full JobSpec JSON file (overrides the other options)")
    ps.add_argument("--solver", default="progressive",
                    choices=["progressive", "random", "evolution", "grid",
                             "rl", "sa", "regevo", "amc"])
    ps.add_argument("--tenant", default="default")
    ps.add_argument("--gamma", type=float, default=0.3)
    ps.add_argument("--budget", type=float, default=1.0,
                    help="simulated GPU-hours for this job (default 1)")
    ps.add_argument("--max-length", type=int, default=5)
    ps.add_argument("--seed", type=int, default=0)
    ps.add_argument("--methods", default=None,
                    help="comma-separated method labels restricting the space, "
                         "e.g. C3,C4")
    ps.add_argument("--watch", action="store_true",
                    help="stay attached and stream round progress")
    ps.add_argument("--json", action="store_true")
    ps.set_defaults(func=cmd_job)
    for name, help_text in [
        ("status", "one job's state and result"),
        ("watch", "stream a job's round progress until it finishes"),
        ("cancel", "request cooperative cancellation"),
    ]:
        pj = job_sub.add_parser(name, help=help_text)
        pj.add_argument("job_id")
        pj.add_argument("--json", action="store_true")
        pj.set_defaults(func=cmd_job)
    pj = job_sub.add_parser("list", help="every job the daemon knows about")
    pj.add_argument("--json", action="store_true")
    pj.set_defaults(func=cmd_job)
    pj = job_sub.add_parser("stats", help="scheduler + lane-pool counters")
    pj.set_defaults(func=cmd_job)
    pj = job_sub.add_parser("shutdown", help="stop the daemon gracefully")
    pj.set_defaults(func=cmd_job)

    p = sub.add_parser(
        "cache",
        help="inspect / prune the persistent result cache",
        description="Maintenance for the engine's on-disk result cache "
                    "(the directory passed as --cache-dir / cache_dir=). "
                    "'stats' reports per-fingerprint entry/byte counts; "
                    "'prune' keeps the newest N results per fingerprint.",
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    ps = cache_sub.add_parser("stats", help="report cache size per fingerprint")
    ps.add_argument("cache_dir", help="the engine's cache directory")
    ps.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    ps.set_defaults(func=cmd_cache)
    pp = cache_sub.add_parser("prune", help="drop oldest entries over a cap")
    pp.add_argument("cache_dir", help="the engine's cache directory")
    pp.add_argument("--max-entries", type=int, required=True,
                    help="results to keep per fingerprint (oldest pruned first)")
    pp.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    pp.set_defaults(func=cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
