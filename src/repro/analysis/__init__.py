"""Static analysis and runtime sanitizers for models and schemes.

Three passes, one severity model (``ok``/``warning``/``error``), structured
:class:`Diagnostic` findings with stable rule ids:

* **Static graph verifier** (:func:`verify_model`) — traces any ``Module``
  tree into a :class:`~repro.analysis.graph.ModelGraph` and runs shape /
  channel inference without a forward pass (``V###`` rules).
* **Scheme linter** (:func:`lint_scheme`) — validates compression schemes
  against the search space before evaluators charge simulated GPU-hours
  (``L###`` rules); :class:`SchemeRejected` is raised by evaluators when an
  error-severity finding fires.
* **Autodiff anomaly mode** (:func:`detect_anomaly`) — opt-in NaN/Inf
  sanitizer at op boundaries during forward/backward, reporting the
  originating op with its creation context.
* **Static cost model** (:class:`SchemeCostModel`) — abstract interpretation
  of compression schemes predicting post-scheme params/FLOPs/memory/latency
  without surgery; :class:`Budget` turns predictions into ``S###``
  feasibility rules the linter and evaluators enforce pre-cost.
* **Repo linter** (:mod:`repro.analysis.repolint`) — AST-based invariant
  checks on the source tree itself (``R###`` rules), run in CI.

``repro analyze`` exposes the verifier, linter, and cost model on the command
line; the rule catalogue is documented in ``docs/static_analysis.md``.
"""

from .anomaly import AnomalyError, anomaly_enabled, detect_anomaly
from .costmodel import (
    AbstractModel,
    Budget,
    CostPrediction,
    S_RULES,
    SchemeCostModel,
    check_budget,
)
from .diagnostics import Diagnostic, Report, Severity, VerificationError
from .graph import GraphNode, GraphTracer, ModelGraph, TensorSpec, trace_model
from .linter import SchemeRejected, lint_scheme
from .verifier import (
    DEFAULT_INPUT_SHAPE,
    assert_valid,
    check_finite_parameters,
    infer_output_spec,
    verify_checkpoint,
    verify_model,
)

__all__ = [
    "AbstractModel",
    "AnomalyError",
    "Budget",
    "CostPrediction",
    "DEFAULT_INPUT_SHAPE",
    "Diagnostic",
    "GraphNode",
    "GraphTracer",
    "ModelGraph",
    "Report",
    "S_RULES",
    "SchemeCostModel",
    "SchemeRejected",
    "Severity",
    "TensorSpec",
    "VerificationError",
    "anomaly_enabled",
    "assert_valid",
    "check_budget",
    "check_finite_parameters",
    "detect_anomaly",
    "infer_output_spec",
    "lint_scheme",
    "trace_model",
    "verify_checkpoint",
    "verify_model",
]
