"""Static analysis and runtime sanitizers for models and schemes.

Three passes, one severity model (``ok``/``warning``/``error``), structured
:class:`Diagnostic` findings with stable rule ids:

* **Static graph verifier** (:func:`verify_model`) — traces any ``Module``
  tree into a :class:`~repro.analysis.graph.ModelGraph` and runs shape /
  channel inference without a forward pass (``V###`` rules).
* **Scheme linter** (:func:`lint_scheme`) — validates compression schemes
  against the search space before evaluators charge simulated GPU-hours
  (``L###`` rules); :class:`SchemeRejected` is raised by evaluators when an
  error-severity finding fires.
* **Autodiff anomaly mode** (:func:`detect_anomaly`) — opt-in NaN/Inf
  sanitizer at op boundaries during forward/backward, reporting the
  originating op with its creation context.

``repro analyze`` exposes the verifier and linter on the command line; the
rule catalogue is documented in ``docs/static_analysis.md``.
"""

from .anomaly import AnomalyError, anomaly_enabled, detect_anomaly
from .diagnostics import Diagnostic, Report, Severity, VerificationError
from .graph import GraphNode, GraphTracer, ModelGraph, TensorSpec, trace_model
from .linter import SchemeRejected, lint_scheme
from .verifier import (
    DEFAULT_INPUT_SHAPE,
    assert_valid,
    check_finite_parameters,
    infer_output_spec,
    verify_checkpoint,
    verify_model,
)

__all__ = [
    "AnomalyError",
    "DEFAULT_INPUT_SHAPE",
    "Diagnostic",
    "GraphNode",
    "GraphTracer",
    "ModelGraph",
    "Report",
    "SchemeRejected",
    "Severity",
    "TensorSpec",
    "VerificationError",
    "anomaly_enabled",
    "assert_valid",
    "check_finite_parameters",
    "detect_anomaly",
    "infer_output_spec",
    "lint_scheme",
    "trace_model",
    "verify_checkpoint",
    "verify_model",
]
