"""Static cost model: abstract interpretation of compression schemes.

A :class:`SchemeCostModel` evaluates a
:class:`~repro.space.scheme.CompressionScheme` *symbolically*: starting from
the :func:`~repro.analysis.graph.trace_model` graph of the base model, each
strategy is applied as an *effect signature* — a transformation of abstract
channel counts, factorisation ranks, and weight dtypes that mirrors the
arithmetic of the real surgery in :mod:`repro.compression` without touching a
single weight.  The result is a :class:`CostPrediction` of post-scheme
parameters, FLOPs, peak activation memory, and a latency proxy, obtained in
microseconds instead of the seconds-to-minutes a real surgery+profile costs.

Effect signatures per method (the concrete algorithms they abstract):

====== ===============================================================
method effect on the abstract model
====== ===============================================================
C1     :func:`~repro.compression.surgery.uniform_width_scale`: every
       prunable unit loses ``floor(n * fraction)`` channels, then a
       global top-up closes the residual budget.
C2/C3  global greedy pruning to ``round(HP2 * P(M))`` parameters with
       per-unit floor ``max(1, ceil(n * (1 - HP6)))``; iterated like
       :func:`~repro.compression.surgery.prune_by_scores` (3 rounds,
       2% stop rule).
C4     same with the SFP hard-prune ratio 0.9.
C5     half the budget pruned (ratio 0.9), the rest taken by Tucker-2
       factorisation of the largest kernels using the *exact*
       :func:`~repro.compression.hooi.choose_tucker_ranks` arithmetic.
C6     filter-basis factorisation largest-first with the exact LFB
       basis-size formula.
C7     parameters/FLOPs unchanged; effective weight width becomes
       HP17 bits (weight-memory prediction only).
C8     parameters/FLOPs unchanged; effective weight width becomes 8
       (``HP19="int8"``) or 16 (``HP19="fp16"``) bits, matching the
       executed precision of :func:`repro.nn.quant.quantize_module`.
====== ===============================================================

Channel scores are weight-dependent, but their *order statistics* at init are
not: the abstraction models each criterion's removal order (proportional
interleaving, unit-order drain for tied BN gammas, expensive-units-first for
LeGR's retained-mass fitness — see :func:`_prune_mode`).  Parameter
predictions are budget-driven and tight; FLOPs depend on *which* layers lose
channels, so their tolerance is validated (and pinned) against measured
post-surgery profiles in the golden tests.

:class:`Budget` turns predictions into the ``S###`` feasibility rules used by
:func:`repro.analysis.linter.lint_scheme` and the evaluators:

* ``S001`` params-over-budget   — predicted params exceed ``max_params``;
* ``S002`` flops-over-budget    — predicted FLOPs exceed ``max_flops``;
* ``S003`` act-mem-over-budget  — predicted peak activation memory exceeds
  ``max_act_mem`` bytes;
* ``S004`` latency-over-budget  — the latency proxy exceeds
  ``max_latency_ms``;
* ``S005`` weight-mem-over-budget — predicted weight storage at the
  effective quantized width exceeds ``max_weight_mem`` bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..compression.hooi import choose_tucker_ranks, tucker2_params
from ..space.scheme import CompressionScheme
from .diagnostics import Report
from .graph import ModelGraph, trace_model

#: bytes per activation / weight element at the runtime's native precision
BYTES_PER_ELEMENT = 4
#: native weight width before any quantization step
DEFAULT_WEIGHT_BITS = 32
#: latency proxy: sustained FLOPs per millisecond of the reference device
LATENCY_FLOPS_PER_MS = 1.0e8
#: latency proxy: fixed per-op launch overhead in milliseconds
LATENCY_OP_OVERHEAD_MS = 0.005

#: rule catalogue (mirrored in docs/static_analysis.md)
S_RULES: Dict[str, str] = {
    "S001": "params-over-budget",
    "S002": "flops-over-budget",
    "S003": "act-mem-over-budget",
    "S004": "latency-over-budget",
    "S005": "weight-mem-over-budget",
}

#: FLOPs rules per registered runtime op (checked by repro.analysis.repolint:
#: every op name passed to ``repro.nn.functional._register_op`` must appear
#: here, so a new op cannot silently evade the cost model).
OP_FLOP_RULES: Dict[str, str] = {
    "conv2d": "2*Ho*Wo*F*C*kh*kw + Ho*Wo*F if bias (fused ReLU free)",
    "linear": "2*out*in + out if bias",
    "add_relu": "one FLOP per output element",
    "batch_norm": "2 FLOPs per input element (fused scale-shift)",
    "max_pool2d": "not counted (comparison-only)",
    "avg_pool2d": "not counted",
    "global_avg_pool2d": "not counted",
    "quant_conv2d": "2*Ho*Wo*F*C*kh*kw + Ho*Wo*F if bias (same MACs as conv2d)",
    "quant_linear": "2*out*in + out if bias (same MACs as linear)",
}


# --------------------------------------------------------------------------- #
# Predictions and budgets
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CostPrediction:
    """Statically predicted cost profile of a model after a scheme."""

    params: int
    flops: int
    act_mem: int  # peak activation memory, bytes (batch size 1)
    latency_ms: float
    weight_bits: int = DEFAULT_WEIGHT_BITS

    @property
    def weight_mem(self) -> int:
        """Weight storage in bytes at the effective quantized width."""
        return int(math.ceil(self.params * self.weight_bits / 8))

    def to_payload(self) -> Dict[str, object]:
        return {
            "params": self.params,
            "flops": self.flops,
            "act_mem": self.act_mem,
            "latency_ms": self.latency_ms,
            "weight_bits": self.weight_bits,
        }


@dataclass(frozen=True)
class Budget:
    """Hard resource ceilings a compressed model must satisfy.

    ``None`` fields are unconstrained.  ``max_params``/``max_flops`` are
    absolute counts, ``max_act_mem``/``max_weight_mem`` are bytes,
    ``max_latency_ms`` is the latency ceiling in milliseconds (checked
    statically against the proxy, and — when measured latency is enabled —
    against real wall-clock by the evaluators).
    """

    max_params: Optional[int] = None
    max_flops: Optional[int] = None
    max_act_mem: Optional[int] = None
    max_latency_ms: Optional[float] = None
    max_weight_mem: Optional[int] = None

    @property
    def is_null(self) -> bool:
        return (
            self.max_params is None
            and self.max_flops is None
            and self.max_act_mem is None
            and self.max_latency_ms is None
            and self.max_weight_mem is None
        )

    def violations(self, prediction: CostPrediction) -> List[Tuple[str, str, object, object]]:
        """``(rule, message, expected, actual)`` for every exceeded ceiling."""
        found: List[Tuple[str, str, object, object]] = []
        if self.max_params is not None and prediction.params > self.max_params:
            found.append((
                "S001", "predicted parameter count exceeds the budget",
                f"<= {self.max_params}", prediction.params,
            ))
        if self.max_flops is not None and prediction.flops > self.max_flops:
            found.append((
                "S002", "predicted FLOPs exceed the budget",
                f"<= {self.max_flops}", prediction.flops,
            ))
        if self.max_act_mem is not None and prediction.act_mem > self.max_act_mem:
            found.append((
                "S003", "predicted peak activation memory exceeds the budget",
                f"<= {self.max_act_mem} bytes", prediction.act_mem,
            ))
        if self.max_latency_ms is not None and prediction.latency_ms > self.max_latency_ms:
            found.append((
                "S004", "predicted latency proxy exceeds the budget",
                f"<= {self.max_latency_ms} ms", round(prediction.latency_ms, 4),
            ))
        if self.max_weight_mem is not None and prediction.weight_mem > self.max_weight_mem:
            found.append((
                "S005", "predicted weight storage exceeds the budget",
                f"<= {self.max_weight_mem} bytes", prediction.weight_mem,
            ))
        return found

    def feasible(self, prediction: CostPrediction) -> bool:
        return not self.violations(prediction)

    def to_payload(self) -> Dict[str, object]:
        return {
            "max_params": self.max_params,
            "max_flops": self.max_flops,
            "max_act_mem": self.max_act_mem,
            "max_latency_ms": self.max_latency_ms,
            "max_weight_mem": self.max_weight_mem,
        }

    @classmethod
    def from_payload(cls, payload: Optional[Dict[str, object]]) -> Optional["Budget"]:
        if payload is None:
            return None
        budget = cls(
            max_params=payload.get("max_params"),
            max_flops=payload.get("max_flops"),
            max_act_mem=payload.get("max_act_mem"),
            max_latency_ms=payload.get("max_latency_ms"),
            max_weight_mem=payload.get("max_weight_mem"),
        )
        return None if budget.is_null else budget


# --------------------------------------------------------------------------- #
# Abstract model structure
# --------------------------------------------------------------------------- #
#: op kinds that carry parameters / FLOPs
_COSTED_KINDS = ("conv", "tucker", "basis", "bn", "linear", "add_relu")


@dataclass
class _Op:
    """One abstract layer: enough structure to recompute params and FLOPs."""

    path: str
    kind: str  # conv | tucker | basis | bn | linear | add_relu | zero
    in_ch: int = 0
    out_ch: int = 0
    kernel: int = 1
    stride: int = 1
    padding: int = 0
    bias: bool = False
    r_in: int = 0  # Tucker input rank
    r_out: int = 0  # Tucker output rank
    basis: int = 0  # filter-basis size
    h_in: Optional[int] = None
    w_in: Optional[int] = None
    h_out: Optional[int] = None
    w_out: Optional[int] = None

    # -- accounting -------------------------------------------------------- #
    def params(self) -> int:
        if self.kind == "conv":
            p = self.out_ch * self.in_ch * self.kernel * self.kernel
            return p + (self.out_ch if self.bias else 0)
        if self.kind == "tucker":
            p = tucker2_params(self.out_ch, self.in_ch, self.kernel, self.r_out, self.r_in)
            return p + (self.out_ch if self.bias else 0)
        if self.kind == "basis":
            p = self.basis * self.in_ch * self.kernel * self.kernel + self.out_ch * self.basis
            return p + (self.out_ch if self.bias else 0)
        if self.kind == "bn":
            return 2 * self.out_ch  # gamma + beta; running stats are buffers
        if self.kind == "linear":
            return self.out_ch * self.in_ch + (self.out_ch if self.bias else 0)
        return 0

    def flops(self) -> int:
        """FLOPs at batch size 1, matching the runtime's profiling sink."""
        if self.kind == "conv":
            area = (self.h_out or 1) * (self.w_out or 1)
            macs = area * self.out_ch * self.in_ch * self.kernel * self.kernel
            return 2 * macs + (area * self.out_ch if self.bias else 0)
        if self.kind == "tucker":
            area_in = (self.h_in or 1) * (self.w_in or 1)
            area_out = (self.h_out or 1) * (self.w_out or 1)
            first = area_in * self.r_in * self.in_ch
            core = area_out * self.r_out * self.r_in * self.kernel * self.kernel
            last = area_out * self.out_ch * self.r_out
            return 2 * (first + core + last) + (area_out * self.out_ch if self.bias else 0)
        if self.kind == "basis":
            area_out = (self.h_out or 1) * (self.w_out or 1)
            basis = area_out * self.basis * self.in_ch * self.kernel * self.kernel
            coeff = area_out * self.out_ch * self.basis
            return 2 * (basis + coeff) + (area_out * self.out_ch if self.bias else 0)
        if self.kind == "bn":
            area = (self.h_in or 1) * (self.w_in or 1)
            return 2 * self.out_ch * area
        if self.kind == "linear":
            return 2 * self.out_ch * self.in_ch + (self.out_ch if self.bias else 0)
        if self.kind == "add_relu":
            return self.out_ch * (self.h_out or 1) * (self.w_out or 1)
        return 0

    def input_elements(self) -> int:
        if self.kind == "linear":
            return self.in_ch
        area = (self.h_in or 1) * (self.w_in or 1)
        return self.in_ch * area if self.in_ch else self.out_ch * area

    def output_elements(self) -> int:
        if self.kind == "linear":
            return self.out_ch
        return self.out_ch * (self.h_out or 1) * (self.w_out or 1)

    def input_cost_per_channel(self) -> int:
        """Parameters one *input* channel of this op costs (surgery mirror)."""
        if self.kind == "conv":
            return self.out_ch * self.kernel * self.kernel
        if self.kind == "linear":
            return self.out_ch
        if self.kind == "tucker":
            return self.r_in  # first 1x1 factor loses one column
        if self.kind == "basis":
            return self.basis * self.kernel * self.kernel
        return 0


@dataclass(frozen=True)
class _Unit:
    """Abstract pruning unit: op indices instead of module references."""

    name: str
    producer: int
    bn: Optional[int]
    consumers: Tuple[int, ...]


_KIND_BY_NODE = {
    "Conv2d": "conv",
    "Conv2dReLU": "conv",
    "TuckerConv2d": "tucker",
    "BasisConv2d": "basis",
    "BatchNorm2d": "bn",
    "Linear": "linear",
    "AddReLU": "add_relu",
}


class AbstractModel:
    """Mutable symbolic model: ops in execution order plus pruning units.

    Channel pruning mutates unit-linked channel counts; factorisation
    rewrites an op's kind in place.  Spatial dimensions come from the base
    trace and never change (no compression method alters strides).
    """

    def __init__(
        self,
        ops: List[_Op],
        units: Sequence[_Unit],
        input_elements: int,
        weight_bits: int = DEFAULT_WEIGHT_BITS,
    ):
        self.ops = ops
        self.units = tuple(units)
        self.input_elements = input_elements
        self.weight_bits = weight_bits

    # -- construction ------------------------------------------------------ #
    @classmethod
    def from_model(cls, model, input_shape: Tuple[int, int, int] = (3, 32, 32)) -> "AbstractModel":
        graph = trace_model(model, input_shape=input_shape, report=Report(subject="costmodel"))
        return cls.from_graph(graph, model)

    @classmethod
    def from_graph(cls, graph: ModelGraph, model) -> "AbstractModel":
        ops: List[_Op] = []
        index_of: Dict[int, int] = {}
        for node in graph.nodes:
            ops.append(cls._op_from_node(node))
            index_of.setdefault(id(node.module), len(ops) - 1)

        units: List[_Unit] = []
        for unit in model.pruning_units():
            producer = index_of.get(id(unit.producer))
            if producer is None:
                continue
            consumers = tuple(
                index_of[id(c)] for c in unit.consumers if id(c) in index_of
            )
            bn = index_of.get(id(unit.bn)) if unit.bn is not None else None
            units.append(_Unit(name=unit.name, producer=producer, bn=bn, consumers=consumers))

        channels, height, width = graph.input.channels, graph.input.height, graph.input.width
        input_elements = channels * (height or 1) * (width or 1)
        return cls(ops=ops, units=units, input_elements=input_elements)

    @staticmethod
    def _op_from_node(node) -> _Op:
        kind = _KIND_BY_NODE.get(node.kind, "zero")
        module = node.module
        op = _Op(
            path=node.path,
            kind=kind,
            h_in=node.inputs.height,
            w_in=node.inputs.width,
            h_out=node.output.height,
            w_out=node.output.width,
        )
        if kind in ("conv", "tucker", "basis"):
            op.in_ch = module.in_channels
            op.out_ch = module.out_channels
            op.kernel = int(getattr(module, "kernel_size", 1))
            op.stride = int(getattr(module, "stride", 1))
            op.padding = int(getattr(module, "padding", 0))
            op.bias = getattr(module, "bias", None) is not None
            if kind == "tucker":
                op.r_out, op.r_in = module.ranks
            elif kind == "basis":
                op.basis = module.basis_size
        elif kind == "bn":
            op.out_ch = module.num_features
            op.in_ch = module.num_features
        elif kind == "linear":
            op.in_ch = module.in_features
            op.out_ch = module.out_features
            op.bias = getattr(module, "bias", None) is not None
        elif kind == "add_relu":
            op.in_ch = node.inputs.channels
            op.out_ch = node.output.channels
        else:
            op.in_ch = node.inputs.channels
            op.out_ch = node.output.channels
        return op

    def clone(self) -> "AbstractModel":
        return AbstractModel(
            ops=[replace(op) for op in self.ops],
            units=self.units,
            input_elements=self.input_elements,
            weight_bits=self.weight_bits,
        )

    # -- accounting -------------------------------------------------------- #
    def params(self) -> int:
        return sum(op.params() for op in self.ops)

    def flops(self) -> int:
        return sum(op.flops() for op in self.ops)

    def peak_activation_bytes(self) -> int:
        peak = self.input_elements
        for op in self.ops:
            if op.kind in _COSTED_KINDS:
                peak = max(peak, op.input_elements(), op.output_elements())
        return peak * BYTES_PER_ELEMENT

    def latency_ms(self) -> float:
        costed = sum(1 for op in self.ops if op.kind in _COSTED_KINDS)
        return self.flops() / LATENCY_FLOPS_PER_MS + costed * LATENCY_OP_OVERHEAD_MS

    def predict(self) -> CostPrediction:
        return CostPrediction(
            params=self.params(),
            flops=self.flops(),
            act_mem=self.peak_activation_bytes(),
            latency_ms=self.latency_ms(),
            weight_bits=self.weight_bits,
        )

    # -- pruning-unit helpers ---------------------------------------------- #
    def active_units(self) -> List[_Unit]:
        """Units whose producer is still a plain convolution (surgery mirror)."""
        return [u for u in self.units if self.ops[u.producer].kind == "conv"]

    def unit_channels(self, unit: _Unit) -> int:
        return self.ops[unit.producer].out_ch

    def unit_fan_in(self, unit: _Unit) -> int:
        """Fan-in of the producer's filters (drives init score statistics)."""
        producer = self.ops[unit.producer]
        return producer.in_ch * producer.kernel * producer.kernel

    def params_per_channel(self, unit: _Unit) -> int:
        producer = self.ops[unit.producer]
        cost = producer.in_ch * producer.kernel * producer.kernel
        if producer.bias:
            cost += 1
        if unit.bn is not None:
            cost += 2
        for ci in unit.consumers:
            cost += self.ops[ci].input_cost_per_channel()
        return cost

    def drop_channels(self, unit: _Unit, count: int) -> None:
        if count <= 0:
            return
        self.ops[unit.producer].out_ch -= count
        if unit.bn is not None:
            self.ops[unit.bn].out_ch -= count
            self.ops[unit.bn].in_ch -= count
        for ci in unit.consumers:
            self.ops[ci].in_ch -= count


# --------------------------------------------------------------------------- #
# Effect signatures
# --------------------------------------------------------------------------- #
def _norm_ppf(q: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Absolute error < 1.15e-9 over (0, 1) — far below the width of the score
    distributions it feeds, and dependency-free (``scipy`` is unavailable).
    """
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    q = min(max(q, 1e-12), 1.0 - 1e-12)
    if q < 0.02425:
        u = math.sqrt(-2.0 * math.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / \
            ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0)
    if q > 1.0 - 0.02425:
        u = math.sqrt(-2.0 * math.log(1.0 - q))
        return -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / \
            ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0)
    u = q - 0.5
    t = u * u
    return (((((a[0] * t + a[1]) * t + a[2]) * t + a[3]) * t + a[4]) * t + a[5]) * u / \
        (((((b[0] * t + b[1]) * t + b[2]) * t + b[3]) * t + b[4]) * t + 1.0)


def _blom_positions(n: int) -> List[float]:
    """Blom's plotting positions — E[j-th order statistic] quantiles."""
    return [(j + 1 - 0.375) / (n + 0.25) for j in range(n)]


#: planner modes — the static abstraction of one score criterion's removal
#: order, as expected order statistics of the criterion at init time:
#: ``proportional``    scores are identically distributed across units
#:                     (z-scored, rank-normalised, or scale-invariant
#:                     criteria), so expected removals interleave by quantile;
#: ``drain``           scores are exactly tied (BN gammas initialise to 1),
#:                     so the stable greedy empties units in definition order;
#: ``l2_norm``         filter l2 norms: ``sqrt(sum w^2)`` of ``d`` Kaiming
#:                     weights is ~N(sqrt(2)(1 - 1/(4d)), 1/sqrt(d)) — means
#:                     are nearly fan-in free but spreads shrink with fan-in,
#:                     so small-fan-in units contribute the global low tail;
#: ``l1_norm``         filter l1 norms: ~N(2 sqrt(d/pi), sqrt(2(1 - 2/pi)))
#:                     — means grow with fan-in, draining small-fan-in units;
#: ``drain_expensive`` removal concentrates on the highest params-per-channel
#:                     units first (LeGR's retained-mass proxy prefers
#:                     removing few, expensive channels).
_PLAN_MODES = ("proportional", "drain", "l2_norm", "l1_norm", "drain_expensive")


def _expected_scores(mode: str, n: int, fan_in: int, cost: int) -> List[float]:
    """Ascending expected channel scores for one unit under ``mode``."""
    if mode == "drain":
        return [0.0] * n
    if mode == "drain_expensive":
        return [-float(cost)] * n
    positions = _blom_positions(n)
    if mode == "l2_norm":
        mean = math.sqrt(2.0) * (1.0 - 1.0 / (4.0 * max(fan_in, 1)))
        std = 1.0 / math.sqrt(max(fan_in, 1))
        return [mean + std * _norm_ppf(q) for q in positions]
    if mode == "l1_norm":
        mean = 2.0 * math.sqrt(max(fan_in, 1) / math.pi)
        std = math.sqrt(2.0 * (1.0 - 2.0 / math.pi))
        return [mean + std * _norm_ppf(q) for q in positions]
    return positions  # proportional: common distribution, quantiles suffice


def _plan_removal(
    model: AbstractModel,
    units: Sequence[_Unit],
    budget: int,
    max_ratio: float,
    min_channels: int = 1,
    mode: str = "proportional",
) -> Tuple[List[int], int]:
    """Mirror of ``plan_global_pruning`` over expected score order statistics.

    The real planner removes channels in ascending-score order with frozen
    per-unit costs, per-unit floors, and a stop-at-budget rule; this replays
    exactly that greedy, with each unit's scores replaced by their expected
    order statistics under ``mode`` (see ``_PLAN_MODES``).  Returns per-unit
    drop counts and the planned parameter removal (overshoot bounded by one
    channel, like the greedy).
    """
    n = [model.unit_channels(u) for u in units]
    limits = [
        max(min_channels, int(math.ceil(ni * (1.0 - max_ratio)))) for ni in n
    ]
    costs = [model.params_per_channel(u) for u in units]
    candidates: List[Tuple[float, int]] = []
    for i, unit in enumerate(units):
        fan_in = model.unit_fan_in(unit)
        for score in _expected_scores(mode, n[i], fan_in, costs[i]):
            candidates.append((score, i))
    candidates.sort(key=lambda t: t[0])  # stable: ties keep unit order

    drops = [0] * len(units)
    removed = 0
    for _, i in candidates:
        if removed >= budget:
            break
        if n[i] - drops[i] - 1 < limits[i]:
            continue
        drops[i] += 1
        removed += costs[i]
    return drops, removed


def _abstract_prune(
    model: AbstractModel,
    budget: int,
    max_ratio: float,
    rounds: int = 3,
    mode: str = "proportional",
) -> int:
    """Mirror of ``prune_by_scores``: plan/apply/re-measure up to 3 rounds."""
    if budget <= 0:
        return 0
    start = model.params()
    for _ in range(max(rounds, 1)):
        removed = start - model.params()
        remaining = budget - removed
        if remaining <= max(0.02 * budget, 1):
            break
        units = model.active_units()
        if not units:
            break
        drops, planned = _plan_removal(model, units, remaining, max_ratio, mode=mode)
        if planned == 0:
            break
        for unit, count in zip(units, drops):
            model.drop_channels(unit, count)
    return start - model.params()


def _abstract_uniform_scale(
    model: AbstractModel, budget: int, max_ratio: float = 0.95
) -> int:
    """Mirror of ``uniform_width_scale`` (C1's width shrink)."""
    units = model.active_units()
    if not units or budget <= 0:
        return 0
    total_prunable = sum(
        model.params_per_channel(u) * model.unit_channels(u) for u in units
    )
    fraction = min(max_ratio, budget / max(total_prunable, 1))
    removed = 0
    for unit in units:
        n = model.unit_channels(unit)
        n_drop = min(int(math.floor(n * fraction)), n - 1)
        if n_drop <= 0:
            continue
        cost = model.params_per_channel(unit)
        model.drop_channels(unit, n_drop)
        removed += n_drop * cost
    if removed < budget:
        units = model.active_units()
        drops, planned = _plan_removal(model, units, budget - removed, max_ratio)
        for unit, count in zip(units, drops):
            model.drop_channels(unit, count)
        removed += planned
    return removed


def _conv_candidates(model: AbstractModel, min_out: int, min_in: int) -> List[Tuple[int, _Op]]:
    """Plain convs eligible for factorisation, largest weight first.

    Mirrors the ``named_modules`` iteration + stable size sort of the real
    factorizers (op order follows execution order, which matches module
    declaration order for every zoo architecture).
    """
    candidates = []
    for op in model.ops:
        if op.kind != "conv" or op.kernel < 2:
            continue
        if op.out_ch < min_out or op.in_ch < min_in:
            continue
        size = op.out_ch * op.in_ch * op.kernel * op.kernel
        candidates.append((size, op))
    candidates.sort(key=lambda t: -t[0])
    return candidates


def _abstract_tucker_factorize(model: AbstractModel, budget: int, min_channels: int = 8) -> int:
    """Mirror of HOS ``_factorize``: exact rank-selection arithmetic."""
    if budget <= 0:
        return 0
    saved = 0
    for size, op in _conv_candidates(model, min_channels, min_channels):
        if saved >= budget:
            break
        target = max(size - (budget - saved), size // 8)
        r_out, r_in = choose_tucker_ranks(op.out_ch, op.in_ch, op.kernel, target)
        new_size = tucker2_params(op.out_ch, op.in_ch, op.kernel, r_out, r_in)
        if new_size >= size:
            continue
        op.kind = "tucker"
        op.r_out, op.r_in = r_out, r_in
        saved += size - new_size
    return saved


def _abstract_basis_factorize(model: AbstractModel, budget: int, min_channels: int = 8) -> int:
    """Mirror of LFB ``_factorize``: exact basis-size arithmetic."""
    if budget <= 0:
        return 0
    saved = 0
    for size, op in _conv_candidates(model, min_channels, 1):
        if saved >= budget:
            break
        per_basis = op.in_ch * op.kernel * op.kernel + op.out_ch
        b_max = max(1, size // per_basis - 1)
        needed = budget - saved
        b = (size - needed) // per_basis
        b = max(1, min(int(b), b_max))
        op.kind = "basis"
        op.basis = b
        saved += size - (b * per_basis)
    return saved


_LEGR_POPULATION = 8
_LEGR_SAMPLES = 4
_LEGR_MUTATION = 0.2
_LEGR_MAX_GENERATIONS = 25
#: ``ExecutionContext.pretrain_epochs`` default — resolves HP7's ``*n``
_LEGR_PRETRAIN_EPOCHS = 10.0


def _abstract_legr(
    model: AbstractModel,
    budget: int,
    max_ratio: float,
    criterion: str,
    generations: int,
) -> int:
    """Mirror of LeGR's no-train path on expected score order statistics.

    The real C2 evolves per-unit affine transforms ``alpha * score + kappa``
    whose fitness (with training disabled) is the fraction of criterion mass
    the induced plan retains.  That fitness is computable symbolically from
    the expected scores, so the abstraction replays the same regularised
    evolution — same population size, tournament, mutation scale, and
    generation budget — over the abstract score arrays (with a fixed seed:
    the expectation of the stochastic search, not one draw of it).
    """
    import numpy as np

    units = model.active_units()
    if not units or budget <= 0:
        return 0
    start = model.params()
    mode = "l1_norm" if criterion == "l1_weight" else "l2_norm"
    n = [model.unit_channels(u) for u in units]
    costs = [model.params_per_channel(u) for u in units]
    limits = [max(1, int(math.ceil(ni * (1.0 - max_ratio)))) for ni in n]
    base = [
        np.asarray(
            _expected_scores(mode, n[i], model.unit_fan_in(u), costs[i]),
            dtype=np.float64,
        )
        for i, u in enumerate(units)
    ]
    total_mass = sum(float(s.sum()) for s in base) + 1e-12

    def plan_for(alpha, kappa):
        candidates = []
        for i in range(len(units)):
            for s in alpha[i] * base[i] + kappa[i]:
                candidates.append((float(s), i))
        candidates.sort(key=lambda t: t[0])
        drops = [0] * len(units)
        removed = 0
        for _, i in candidates:
            if removed >= budget:
                break
            if n[i] - drops[i] - 1 < limits[i]:
                continue
            drops[i] += 1
            removed += costs[i]
        # Scores are ascending per unit, so the dropped channels are each
        # unit's lowest — retained mass is the tail sum.
        retained = sum(float(base[i][drops[i]:].sum()) for i in range(len(units)))
        return retained / total_mass, drops

    rng = np.random.default_rng(0)
    population = []
    for _ in range(_LEGR_POPULATION):
        alpha = np.abs(rng.normal(1.0, 0.1, size=len(units)))
        kappa = rng.normal(0.0, 0.05, size=len(units))
        fitness, drops = plan_for(alpha, kappa)
        population.append((fitness, alpha, kappa, drops))
    for _ in range(max(1, min(generations, _LEGR_MAX_GENERATIONS))):
        for _ in range(_LEGR_SAMPLES):
            sample = rng.choice(
                len(population), size=min(3, len(population)), replace=False
            )
            parent = max((population[j] for j in sample), key=lambda t: t[0])
            alpha = np.abs(parent[1] + rng.normal(0, _LEGR_MUTATION, size=len(units)))
            kappa = parent[2] + rng.normal(0, _LEGR_MUTATION / 4, size=len(units))
            fitness, drops = plan_for(alpha, kappa)
            population.append((fitness, alpha, kappa, drops))
            worst = min(range(len(population)), key=lambda j: population[j][0])
            population.pop(worst)
    best = max(population, key=lambda t: t[0])
    for unit, count in zip(units, best[3]):
        model.drop_channels(unit, count)
    # Mirror the real top-up: one-shot plans undershoot on chain topologies.
    removed = start - model.params()
    if removed < 0.98 * budget:
        _abstract_prune(model, budget - removed, max_ratio, mode=mode)
    return start - model.params()


def _prune_mode(label: str, hp: Mapping[str, object]) -> str:
    """Static abstraction of the removal *order* a method's scores induce.

    Derived from the init-time score statistics of ``repro.nn`` (Kaiming
    weights, unit BN gammas) and validated empirically against measured
    post-surgery profiles (see ``tests/test_costmodel.py``):

    - C3 scores ``|bn.gamma|`` which initialise to exact ties, so the stable
      greedy drains units in definition order to their floors;
    - C4 scores filter l2 norms whose order statistics under Kaiming init
      put small-fan-in units in the global low tail (``l2_norm`` model);
    - C5's raw ``P2``+``l1norm`` aggregation has means growing with fan-in
      (``l1_norm`` model); the z-scored/rank-normalised aggregations and the
      scale-free moment criteria interleave uniformly (``proportional``);
    - C2 runs the LeGR evolution itself on the abstract scores (see
      :func:`_abstract_legr`) and is dispatched before this lookup.
    """
    if label == "C3":
        return "drain"
    if label == "C4":
        return "l2_norm"
    if label == "C5" and hp.get("HP11") == "P2" and hp.get("HP12") == "l1norm":
        return "l1_norm"
    return "proportional"


def apply_strategy(model: AbstractModel, strategy, base_params: int) -> None:
    """Apply one strategy's effect signature to ``model`` in place.

    ``base_params`` is P(M) of the *original* model — HP2 budgets are always
    relative to it, exactly like ``ExecutionContext.param_budget``.
    """
    label = strategy.method_label
    hp = strategy.hp
    budget = int(round(float(hp.get("HP2", 0.0)) * base_params))
    mode = _prune_mode(label, hp)
    if label == "C1":
        _abstract_uniform_scale(model, budget)
    elif label == "C2":
        generations = int(
            round(float(hp.get("HP7", 0.5)) * _LEGR_PRETRAIN_EPOCHS)
        )
        _abstract_legr(
            model,
            budget,
            max_ratio=float(hp.get("HP6", 0.9)),
            criterion=str(hp.get("HP8", "l2_weight")),
            generations=generations,
        )
    elif label == "C3":
        _abstract_prune(model, budget, max_ratio=float(hp.get("HP6", 0.9)), mode=mode)
    elif label == "C4":
        _abstract_prune(model, budget, max_ratio=0.9, mode=mode)
    elif label == "C5":
        removed = _abstract_prune(
            model, int(round(budget * 0.5)), max_ratio=0.9, mode=mode
        )
        _abstract_tucker_factorize(model, budget - removed)
    elif label == "C6":
        _abstract_basis_factorize(model, budget)
    elif label == "C7":
        model.weight_bits = int(hp.get("HP17", DEFAULT_WEIGHT_BITS))
    elif label == "C8":
        # Real PTQ: executed precision is exactly the mode's storage width.
        model.weight_bits = 8 if str(hp.get("HP19", "int8")) == "int8" else 16
    else:
        raise ValueError(f"no effect signature for method {label!r}")


# --------------------------------------------------------------------------- #
# The scheme-level cost model
# --------------------------------------------------------------------------- #
class SchemeCostModel:
    """Predict post-scheme cost profiles by abstract interpretation.

    Prefix states are cached by scheme identifier, so scoring thousands of
    one-step extensions of the same parent (the progressive-search hot path)
    costs one strategy application each.
    """

    def __init__(
        self,
        model=None,
        input_shape: Tuple[int, int, int] = (3, 32, 32),
        base: Optional[AbstractModel] = None,
        cache_size: int = 4096,
    ):
        if base is None:
            if model is None:
                raise ValueError("SchemeCostModel needs a model or an AbstractModel")
            base = AbstractModel.from_model(model, input_shape=input_shape)
        self._base = base
        self.base_params = base.params()
        self.base_prediction = base.predict()
        self._cache_size = max(cache_size, 2)
        self._states: Dict[str, AbstractModel] = {"START": base}

    def state(self, scheme: CompressionScheme) -> AbstractModel:
        """The abstract model after ``scheme`` (cached; do not mutate)."""
        identifier = scheme.identifier
        cached = self._states.get(identifier)
        if cached is not None:
            return cached
        parent = self.state(scheme.prefix(scheme.length - 1))
        state = parent.clone()
        apply_strategy(state, scheme.strategies[-1], self.base_params)
        if len(self._states) >= self._cache_size:
            self._evict()
        self._states[identifier] = state
        return state

    def _evict(self) -> None:
        # Drop the longest cached schemes first: short prefixes are the
        # shared ancestors whose reuse pays for the cache.
        victims = sorted(self._states, key=lambda k: -k.count("->"))
        for key in victims[: self._cache_size // 2]:
            if key != "START":
                del self._states[key]

    def predict(self, scheme: CompressionScheme) -> CostPrediction:
        return self.state(scheme).predict()

    def feasible(self, scheme: CompressionScheme, budget: Optional[Budget]) -> bool:
        if budget is None or budget.is_null:
            return True
        return budget.feasible(self.predict(scheme))


def check_budget(
    report: Report,
    scheme: CompressionScheme,
    budget: Budget,
    cost_model: SchemeCostModel,
) -> CostPrediction:
    """Run the S### rules for ``scheme`` against ``budget`` into ``report``."""
    prediction = cost_model.predict(scheme)
    for rule, message, expected, actual in budget.violations(prediction):
        report.error(rule, "budget", message, expected=expected, actual=actual)
    return prediction
