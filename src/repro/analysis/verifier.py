"""The static model verifier: trace + rule checks over a whole model.

:func:`verify_model` is the main entry point for programmatic use, the
``repro analyze`` CLI, and the surgery self-verification hooks.  It combines

* a parameter/buffer sweep (``V009`` nonfinite values), and
* the structural graph trace of :mod:`repro.analysis.graph`
  (channel/shape consistency, residual alignment, factorised-rank sanity),

into one :class:`~repro.analysis.diagnostics.Report`.  Checkpoint archives
get the same treatment via :func:`verify_checkpoint` (``C###`` rules) without
needing the original model structure.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..nn.layers import Module
from .diagnostics import Report
from .graph import ModelGraph, TensorSpec, trace_model

#: CIFAR-style default resolution used when no input shape is given
DEFAULT_INPUT_SHAPE: Tuple[int, int, int] = (3, 32, 32)


def check_finite_parameters(model: Module, report: Report) -> None:
    """Flag NaN/Inf entries in any parameter or buffer (rule ``V009``)."""
    for name, param in model.named_parameters():
        bad = int(np.size(param.data) - np.isfinite(param.data).sum())
        if bad:
            report.error(
                "V009",
                name,
                f"parameter contains {bad} non-finite entries",
                expected="finite values",
                actual=f"{bad} NaN/Inf",
            )
    for name, buf in model.named_buffers():
        bad = int(np.size(buf) - np.isfinite(buf).sum())
        if bad:
            report.error(
                "V009",
                name,
                f"buffer contains {bad} non-finite entries",
                expected="finite values",
                actual=f"{bad} NaN/Inf",
            )


def verify_model(
    model: Module,
    input_shape: Tuple[int, int, int] = DEFAULT_INPUT_SHAPE,
    name: str = "",
) -> Report:
    """Statically verify ``model`` without running a forward pass.

    Returns a report whose ``graph`` attribute holds the traced
    :class:`~repro.analysis.graph.ModelGraph`; ``report.has_errors`` means
    the model is guaranteed to fail (or silently misbehave) at forward time.
    """
    report = Report(subject=name or type(model).__name__)
    check_finite_parameters(model, report)
    graph: ModelGraph = trace_model(model, input_shape=input_shape, report=report)
    report.graph = graph
    if graph.output is not None and not report.has_errors:
        report.note(
            "V000",
            "",
            f"traced {len(graph)} layers; output spec {graph.output}",
        )
    return report


def verify_checkpoint(
    state: Dict[str, np.ndarray],
    model: Optional[Module] = None,
    input_shape: Tuple[int, int, int] = DEFAULT_INPUT_SHAPE,
    name: str = "checkpoint",
) -> Report:
    """Verify a saved state dict, optionally against a target model.

    Rules: ``C001`` — the checkpoint does not load into ``model`` (missing
    keys or shape mismatches); ``C002`` — a stored array contains non-finite
    values.  When loading succeeds the loaded model is verified structurally
    too, and those diagnostics are appended.
    """
    report = Report(subject=name)
    if not state:
        report.error("C001", "", "checkpoint holds no arrays")
        return report
    for key, value in state.items():
        bad = int(np.size(value) - np.isfinite(value).sum())
        if bad:
            report.error(
                "C002",
                key,
                f"stored array contains {bad} non-finite entries",
                expected="finite values",
                actual=f"{bad} NaN/Inf",
            )
    if model is not None:
        try:
            model.load_state_dict(state)
        except (KeyError, ValueError) as exc:
            report.error(
                "C001",
                "",
                f"checkpoint does not load into {type(model).__name__}: {exc}",
            )
            return report
        report.extend(verify_model(model, input_shape=input_shape, name=name))
    return report


def assert_valid(model: Module, input_shape: Tuple[int, int, int] = DEFAULT_INPUT_SHAPE) -> None:
    """Raise :class:`~repro.analysis.diagnostics.VerificationError` on errors."""
    verify_model(model, input_shape=input_shape).raise_on_error()


def infer_output_spec(
    model: Module, input_shape: Tuple[int, int, int] = DEFAULT_INPUT_SHAPE
) -> Optional[TensorSpec]:
    """The statically inferred output spec (None when tracing found errors)."""
    report = verify_model(model, input_shape=input_shape)
    return None if report.has_errors else report.graph.output
