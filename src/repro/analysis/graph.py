"""Static model-graph tracing with shape/channel inference — no forward pass.

The tracer walks a :class:`~repro.nn.layers.Module` tree the same way its
``forward`` would consume a tensor, but propagates a symbolic
:class:`TensorSpec` (channels + optional spatial dims) instead of data.
Every layer visit emits a :class:`GraphNode` and checks the structural
invariants that real structural surgery can break:

* ``V001`` conv-input-mismatch — a convolution's input channels disagree
  with the channels produced upstream;
* ``V002`` bn-feature-mismatch — a batch norm normalises a different number
  of channels than it receives;
* ``V003`` linear-fanin-mismatch — a linear layer's fan-in disagrees with
  the (flattened) feature count reaching it;
* ``V004`` residual-misalignment — a residual block's branch and shortcut
  disagree in channels or spatial resolution at the merge;
* ``V005`` factorized-rank-invalid / ``V006`` factorized-rank-inflated —
  a Tucker/basis factorisation with inconsistent or non-compressing ranks;
* ``V007`` zero-width-layer — a layer with zero output channels/features;
* ``V008`` spatial-collapse — spatial resolution falls below 1x1;
* ``V010`` untraceable-module — an unknown composite the tracer must skip;
* ``V012`` op-needs-spatial-input — a conv/pool applied after flattening;
* ``V013`` unknown-fused-activation — a convolution requests an activation
  fusion the runtime does not implement.

The trace mirrors the *fused* execution path of ``repro.nn``: a residual
merge emits one ``AddReLU`` node (the runtime's ``F.add_relu`` fused op), a
``Conv2d`` whose ``activation`` attribute is ``"relu"`` is recorded as a
single ``Conv2dReLU`` node (``conv2d(..., activation="relu")``), and a
``BatchNorm2d`` is one node for the single fused normalise-scale-shift op
that both the training and eval paths execute.  Cost models built on the
graph therefore see exactly the ops the profiler counts.

Custom modules can opt into tracing by defining
``trace_static(tracer, spec, path) -> TensorSpec``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from ..compression.factorized import BasisConv2d, TuckerConv2d
from ..models.resnet import BasicBlock, Bottleneck, BottleneckResNet, ResNet
from ..models.vgg import VGG
from ..nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from .diagnostics import Report


@dataclass(frozen=True)
class TensorSpec:
    """Symbolic activation shape: channels plus optional spatial dims.

    ``height``/``width`` are ``None`` once the activation is flattened
    (after global pooling or an explicit flatten).
    """

    channels: int
    height: Optional[int] = None
    width: Optional[int] = None

    @property
    def spatial(self) -> bool:
        return self.height is not None and self.width is not None

    @property
    def features(self) -> int:
        """Fan-in a linear layer would see at this point."""
        if self.spatial:
            return self.channels * self.height * self.width
        return self.channels

    def __str__(self) -> str:
        if self.spatial:
            return f"({self.channels}, {self.height}, {self.width})"
        return f"({self.channels},)"


@dataclass
class GraphNode:
    """One traced layer: its path, kind, and inferred input/output specs."""

    path: str
    kind: str
    module: Module
    inputs: TensorSpec
    output: TensorSpec

    def __repr__(self) -> str:
        return f"GraphNode({self.path or '<root>'}: {self.kind} {self.inputs} -> {self.output})"


@dataclass
class ModelGraph:
    """The structural graph produced by one trace."""

    input: TensorSpec
    output: Optional[TensorSpec] = None
    nodes: List[GraphNode] = field(default_factory=list)

    def node(self, path: str) -> GraphNode:
        for n in self.nodes:
            if n.path == path:
                return n
        raise KeyError(f"no traced node at {path!r}")

    def paths(self) -> List[str]:
        return [n.path for n in self.nodes]

    def __len__(self) -> int:
        return len(self.nodes)


def _join(path: str, name: str) -> str:
    return f"{path}.{name}" if path else name


def _conv_spatial(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


class GraphTracer:
    """Walks a module tree, inferring shapes and reporting inconsistencies."""

    def __init__(self, report: Report, input_spec: TensorSpec):
        self.report = report
        self.graph = ModelGraph(input=input_spec)

    # ------------------------------------------------------------------ #
    def trace(self, module: Module, spec: TensorSpec, path: str = "") -> TensorSpec:
        """Infer the output spec of ``module`` applied to ``spec``."""
        custom = getattr(module, "trace_static", None)
        if custom is not None:
            return custom(self, spec, path)
        handler = self._handler_for(module)
        if handler is not None:
            return handler(module, spec, path)
        if getattr(module, "is_conv_like", False):
            return self._generic_conv_like(module, spec, path)
        self.report.warn(
            "V010",
            path,
            f"cannot statically trace {type(module).__name__}; "
            "define trace_static() to include it in verification",
        )
        self._record(module, spec, spec, path)
        return spec

    def _handler_for(self, module: Module):
        # Composite blocks must dispatch before any generic fallbacks.
        for kind, handler in (
            (Sequential, self._sequential),
            (BasicBlock, self._basic_block),
            (Bottleneck, self._bottleneck),
            (ResNet, self._stem_blocks_head),
            (BottleneckResNet, self._stem_blocks_head),
            (VGG, self._vgg),
            (Conv2d, self._conv),
            (TuckerConv2d, self._tucker),
            (BasisConv2d, self._basis),
            (BatchNorm2d, self._bn),
            (Linear, self._linear),
            (MaxPool2d, self._pool),
            (AvgPool2d, self._pool),
            (GlobalAvgPool2d, self._global_pool),
            (Flatten, self._flatten),
            (ReLU, self._passthrough),
            (Identity, self._passthrough),
        ):
            if isinstance(module, kind):
                return handler
        return None

    def _record(
        self,
        module: Module,
        spec: TensorSpec,
        out: TensorSpec,
        path: str,
        kind: Optional[str] = None,
    ) -> None:
        self.graph.nodes.append(
            GraphNode(
                path=path,
                kind=kind if kind is not None else type(module).__name__,
                module=module,
                inputs=spec,
                output=out,
            )
        )

    # ------------------------------------------------------------------ #
    # Leaf layers
    # ------------------------------------------------------------------ #
    def _check_spatial_input(self, module: Module, spec: TensorSpec, path: str) -> bool:
        if spec.spatial:
            return True
        self.report.error(
            "V012",
            path,
            f"{type(module).__name__} requires a spatial (NCHW) input but the "
            "activation was already flattened",
        )
        return False

    def _spatial_after(
        self, spec: TensorSpec, kernel: int, stride: int, padding: int, path: str
    ) -> TensorSpec:
        height = _conv_spatial(spec.height, kernel, stride, padding)
        width = _conv_spatial(spec.width, kernel, stride, padding)
        if height < 1 or width < 1:
            self.report.error(
                "V008",
                path,
                "spatial resolution collapses below 1x1 "
                f"(input {spec.height}x{spec.width}, kernel {kernel}, stride {stride})",
                expected=">= 1x1",
                actual=f"{height}x{width}",
            )
            height = width = 1  # keep tracing with a sane floor
        return replace(spec, height=height, width=width)

    def _conv(self, conv: Conv2d, spec: TensorSpec, path: str) -> TensorSpec:
        if conv.out_channels < 1 or conv.in_channels < 1:
            self.report.error(
                "V007",
                path,
                "convolution has a zero-width channel dimension",
                expected=">= 1",
                actual=f"{conv.in_channels} in / {conv.out_channels} out",
            )
        if conv.in_channels != spec.channels:
            self.report.error(
                "V001",
                path,
                "convolution input channels disagree with the incoming activation",
                expected=spec.channels,
                actual=conv.in_channels,
            )
        out = replace(spec, channels=conv.out_channels)
        if self._check_spatial_input(conv, spec, path):
            out = self._spatial_after(out, conv.kernel_size, conv.stride, conv.padding, path)
        activation = getattr(conv, "activation", None)
        kind = None
        if activation == "relu":
            kind = "Conv2dReLU"
        elif activation is not None:
            self.report.warn(
                "V013",
                path,
                f"convolution requests fused activation {activation!r} which the "
                "runtime does not implement; tracing it as a plain convolution",
            )
        self._record(conv, spec, out, path, kind=kind)
        return out

    def _generic_conv_like(self, module: Module, spec: TensorSpec, path: str) -> TensorSpec:
        """Anything exposing the conv-like protocol (in/out channels, k, s, p)."""
        if module.in_channels != spec.channels:
            self.report.error(
                "V001",
                path,
                f"{type(module).__name__} input channels disagree with the incoming activation",
                expected=spec.channels,
                actual=module.in_channels,
            )
        out = replace(spec, channels=module.out_channels)
        if self._check_spatial_input(module, spec, path):
            out = self._spatial_after(
                out,
                getattr(module, "kernel_size", 1),
                getattr(module, "stride", 1),
                getattr(module, "padding", 0),
                path,
            )
        self._record(module, spec, out, path)
        return out

    def _tucker(self, conv: TuckerConv2d, spec: TensorSpec, path: str) -> TensorSpec:
        r_out, r_in = conv.ranks
        first_rank = conv.first_weight.shape[0]
        last_rank = conv.last_weight.shape[1]
        if r_in < 1 or r_out < 1:
            self.report.error(
                "V005", path, "Tucker factorisation has a non-positive rank",
                expected=">= 1", actual=f"({r_out}, {r_in})",
            )
        if first_rank != r_in or last_rank != r_out:
            self.report.error(
                "V005",
                path,
                "Tucker factor matrices disagree with the core tensor's ranks",
                expected=f"({r_out}, {r_in})",
                actual=f"({last_rank}, {first_rank})",
            )
        if r_in > conv.in_channels or r_out > conv.out_channels:
            self.report.warn(
                "V006",
                path,
                "Tucker ranks exceed the layer's channel counts; the "
                "factorisation stores more parameters than a plain convolution",
                expected=f"<= ({conv.out_channels}, {conv.in_channels})",
                actual=f"({r_out}, {r_in})",
            )
        return self._generic_conv_like(conv, spec, path)

    def _basis(self, conv: BasisConv2d, spec: TensorSpec, path: str) -> TensorSpec:
        basis = conv.basis_size
        coeff_rank = conv.coeff_weight.shape[1]
        if basis < 1:
            self.report.error(
                "V005", path, "filter basis is empty", expected=">= 1", actual=basis
            )
        if coeff_rank != basis:
            self.report.error(
                "V005",
                path,
                "recombination coefficients disagree with the basis size",
                expected=basis,
                actual=coeff_rank,
            )
        if basis >= conv.out_channels > 0:
            self.report.warn(
                "V006",
                path,
                "filter basis is not smaller than the filter count; the "
                "factorisation does not compress this layer",
                expected=f"< {conv.out_channels}",
                actual=basis,
            )
        return self._generic_conv_like(conv, spec, path)

    def _bn(self, bn: BatchNorm2d, spec: TensorSpec, path: str) -> TensorSpec:
        if bn.num_features != spec.channels:
            self.report.error(
                "V002",
                path,
                "batch-norm feature count disagrees with the incoming channels",
                expected=spec.channels,
                actual=bn.num_features,
            )
        if np.any(bn.running_var < 0):
            self.report.warn(
                "V011", path, "batch-norm running variance has negative entries"
            )
        self._record(bn, spec, spec, path)
        return spec

    def _linear(self, linear: Linear, spec: TensorSpec, path: str) -> TensorSpec:
        if linear.out_features < 1:
            self.report.error(
                "V007", path, "linear layer has zero output features",
                expected=">= 1", actual=linear.out_features,
            )
        if linear.in_features != spec.features:
            self.report.error(
                "V003",
                path,
                "linear fan-in disagrees with the flattened feature count",
                expected=spec.features,
                actual=linear.in_features,
            )
        out = TensorSpec(channels=linear.out_features)
        self._record(linear, spec, out, path)
        return out

    def _pool(self, pool: Module, spec: TensorSpec, path: str) -> TensorSpec:
        out = spec
        if self._check_spatial_input(pool, spec, path):
            out = self._spatial_after(spec, pool.kernel_size, pool.stride, 0, path)
        self._record(pool, spec, out, path)
        return out

    def _global_pool(self, pool: Module, spec: TensorSpec, path: str) -> TensorSpec:
        out = TensorSpec(channels=spec.channels)
        self._record(pool, spec, out, path)
        return out

    def _flatten(self, module: Module, spec: TensorSpec, path: str) -> TensorSpec:
        out = TensorSpec(channels=spec.features)
        self._record(module, spec, out, path)
        return out

    def _passthrough(self, module: Module, spec: TensorSpec, path: str) -> TensorSpec:
        self._record(module, spec, spec, path)
        return spec

    # ------------------------------------------------------------------ #
    # Composites
    # ------------------------------------------------------------------ #
    def _sequential(self, seq: Sequential, spec: TensorSpec, path: str) -> TensorSpec:
        for name, child in seq._modules.items():
            spec = self.trace(child, spec, _join(path, name))
        return spec

    def _residual(self, block: Module, branch, spec: TensorSpec, path: str) -> TensorSpec:
        """Trace a main branch and its shortcut, checking merge alignment."""
        main = branch(spec)
        if block.downsample is not None:
            skip = self.trace(block.downsample, spec, _join(path, "downsample"))
        else:
            skip = spec
        if main.channels != skip.channels:
            self.report.error(
                "V004",
                path,
                "residual branch and shortcut disagree in channels at the merge",
                expected=skip.channels,
                actual=main.channels,
            )
        if main.spatial and skip.spatial and (
            main.height != skip.height or main.width != skip.width
        ):
            self.report.error(
                "V004",
                path,
                "residual branch and shortcut disagree in spatial size at the merge",
                expected=f"{skip.height}x{skip.width}",
                actual=f"{main.height}x{main.width}",
            )
        # The merge is a real fused op at runtime (F.add_relu) with its own
        # FLOPs, so it gets a node of its own.
        self._record(block, main, main, _join(path, "add_relu"), kind="AddReLU")
        return main

    def _basic_block(self, block: BasicBlock, spec: TensorSpec, path: str) -> TensorSpec:
        def branch(s: TensorSpec) -> TensorSpec:
            s = self.trace(block.conv1, s, _join(path, "conv1"))
            s = self.trace(block.bn1, s, _join(path, "bn1"))
            s = self.trace(block.conv2, s, _join(path, "conv2"))
            return self.trace(block.bn2, s, _join(path, "bn2"))

        return self._residual(block, branch, spec, path)

    def _bottleneck(self, block: Bottleneck, spec: TensorSpec, path: str) -> TensorSpec:
        def branch(s: TensorSpec) -> TensorSpec:
            s = self.trace(block.conv1, s, _join(path, "conv1"))
            s = self.trace(block.bn1, s, _join(path, "bn1"))
            s = self.trace(block.conv2, s, _join(path, "conv2"))
            s = self.trace(block.bn2, s, _join(path, "bn2"))
            s = self.trace(block.conv3, s, _join(path, "conv3"))
            return self.trace(block.bn3, s, _join(path, "bn3"))

        return self._residual(block, branch, spec, path)

    def _stem_blocks_head(self, model: Module, spec: TensorSpec, path: str) -> TensorSpec:
        spec = self.trace(model.conv1, spec, _join(path, "conv1"))
        spec = self.trace(model.bn1, spec, _join(path, "bn1"))
        spec = self.trace(model.blocks, spec, _join(path, "blocks"))
        spec = self.trace(model.pool, spec, _join(path, "pool"))
        return self.trace(model.classifier, spec, _join(path, "classifier"))

    def _vgg(self, model: VGG, spec: TensorSpec, path: str) -> TensorSpec:
        spec = self.trace(model.features, spec, _join(path, "features"))
        spec = self.trace(model.pool, spec, _join(path, "pool"))
        return self.trace(model.classifier, spec, _join(path, "classifier"))


def trace_model(
    model: Module,
    input_shape=(3, 32, 32),
    report: Optional[Report] = None,
) -> ModelGraph:
    """Trace ``model`` on a symbolic input, returning the structural graph.

    Diagnostics go into ``report`` when given (otherwise they are discarded —
    use :func:`repro.analysis.verify_model` for the checking entry point).
    """
    channels, height, width = input_shape
    spec = TensorSpec(channels=channels, height=height, width=width)
    tracer = GraphTracer(report if report is not None else Report(subject="trace"), spec)
    tracer.graph.output = tracer.trace(model, spec)
    return tracer.graph
