"""Static linting of compression schemes before any evaluator cost is paid.

Search budgets are the scarce resource in AutoMC (simulated GPU-hours), so a
scheme that is *guaranteed* to fail or to waste its steps should be rejected
before `Evaluator` backends charge for it — the AMC-style "reject invalid
actions early" discipline.  :func:`lint_scheme` validates a
:class:`~repro.space.scheme.CompressionScheme` purely from its strategy
metadata (no model, no dataset):

* ``L001`` unknown-method, ``L002`` unknown-hyperparameter,
  ``L003`` missing-hyperparameter — the strategy does not describe any
  executable method (errors);
* ``L005`` invalid-value — a hyperparameter is outside its sane domain,
  e.g. HP2 outside (0, 1) (error); ``L004`` off-grid-value — legal but not a
  Table 1 grid point (warning: still executable, used by the human-baseline
  grids);
* ``L006`` scheme-too-long — exceeds the search-tree depth L (error);
* ``L007`` over-unity-compression — the nominal HP2 targets sum to >= 100%
  of the original parameters, which no execution can satisfy (error);
  ``L008`` aggressive-compression — the sum is above the feasibility bound
  built-in searches enforce (warning);
* ``L009`` duplicate-quantization — a quantizing method (C7 INQ, C8 PTQ)
  applied twice is a guaranteed no-op or an outright execution failure:
  the model is already in quantized form after the first pass (error);
* ``L010`` repeated-strategy — the same strategy twice in a row likely
  re-buys work already done (warning);
* ``L011`` structural-after-quantization — any later strategy retrains or
  rewrites weights and silently destroys the quantized format (warning);
* ``L012`` prune-after-factorization — factorised layers leave the prunable
  set, so later pruning has fewer units to work with (warning).

When a :class:`~repro.analysis.costmodel.Budget` and a
:class:`~repro.analysis.costmodel.SchemeCostModel` are supplied, the linter
additionally runs the ``S###`` budget-feasibility rules (S001 params, S002
FLOPs, S003 activation memory, S004 latency proxy, S005 weight memory at the
effective quantized width): the scheme is abstractly
interpreted and every predicted cost exceeding its ceiling is an error —
still without paying any evaluation cost.

:class:`SchemeRejected` is the exception evaluators raise when a lint error
fires; it carries the full report so searches can log *why* a candidate was
discarded without charging budget.
"""

from __future__ import annotations

from numbers import Number
from typing import TYPE_CHECKING, Optional

from ..space.hyperparams import HP_GRID, METHOD_HPS
from ..space.scheme import MAX_SCHEME_LENGTH, CompressionScheme
from .diagnostics import Report

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .costmodel import Budget, SchemeCostModel

#: nominal total HP2 beyond which built-in searches refuse to extend schemes
AGGRESSIVE_TOTAL_STEP = 0.9
#: factorisation methods whose layers drop out of the prunable set
_FACTORIZING = {"C5", "C6"}
#: pruning methods that consume PrunableUnits
_PRUNING = {"C2", "C3", "C4"}
#: quantizing methods — at most one per scheme, and nothing structural after
_QUANTIZING = {"C7", "C8"}
#: open-interval (0, 1) hyperparameters
_UNIT_INTERVAL_HPS = {"HP1", "HP2", "HP6", "HP7", "HP9", "HP13", "HP18"}
#: strictly positive hyperparameters
_POSITIVE_HPS = {"HP4", "HP5", "HP10", "HP14", "HP15", "HP17", "HP20"}


class SchemeRejected(ValueError):
    """A scheme failed linting and was rejected before evaluation."""

    def __init__(self, scheme: CompressionScheme, report: Report):
        self.scheme = scheme
        self.report = report
        rules = ", ".join(sorted({d.rule for d in report.errors}))
        super().__init__(
            f"scheme {scheme.identifier!r} rejected by linter ({rules})"
        )


def _check_value(report: Report, where: str, name: str, value: object) -> None:
    grid = HP_GRID.get(name)
    if grid is None:
        return  # unknown hp already reported as L002
    if isinstance(grid[0], str):
        if value not in grid:
            report.error(
                "L005", where, f"{name} categorical value is not recognised",
                expected=f"one of {grid}", actual=value,
            )
        return
    if not isinstance(value, Number):
        report.error(
            "L005", where, f"{name} must be numeric", expected="number", actual=value,
        )
        return
    value_f = float(value)
    if name in _UNIT_INTERVAL_HPS and not 0.0 < value_f < 1.0:
        report.error(
            "L005", where, f"{name} must lie strictly inside (0, 1)",
            expected="(0, 1)", actual=value,
        )
        return
    if name in _POSITIVE_HPS and value_f <= 0:
        report.error(
            "L005", where, f"{name} must be positive", expected="> 0", actual=value,
        )
        return
    if not any(
        not isinstance(candidate, str) and float(candidate) == value_f
        for candidate in grid
    ):
        report.warn(
            "L004", where, f"{name} is not a Table 1 grid point",
            expected=f"one of {grid}", actual=value,
        )


def lint_scheme(
    scheme: CompressionScheme,
    max_length: int = MAX_SCHEME_LENGTH,
    name: Optional[str] = None,
    budget: Optional["Budget"] = None,
    cost_model: Optional["SchemeCostModel"] = None,
) -> Report:
    """Statically validate a compression scheme; see the module docstring.

    ``budget`` + ``cost_model`` enable the ``S###`` feasibility rules on top
    of the metadata-only ``L###`` checks.
    """
    report = Report(subject=name or scheme.identifier)
    if scheme.is_empty:
        report.note("L000", "", "empty scheme (START) — nothing to lint")
        return report

    if scheme.length > max_length:
        report.error(
            "L006", "", "scheme exceeds the maximum search depth",
            expected=f"<= {max_length} strategies", actual=scheme.length,
        )

    quantized_at: Optional[int] = None
    factorized_at: Optional[int] = None
    for position, strategy in enumerate(scheme.strategies):
        where = f"step {position + 1} ({strategy.method_label})"
        expected_hps = METHOD_HPS.get(strategy.method_label)
        if expected_hps is None:
            report.error(
                "L001", where, "unknown compression method",
                expected=f"one of {sorted(METHOD_HPS)}", actual=strategy.method_label,
            )
            continue
        hp = strategy.hp
        for hp_name in hp:
            if hp_name not in expected_hps:
                report.error(
                    "L002", where,
                    f"{hp_name} is not a hyperparameter of {strategy.method_label}",
                    expected=f"subset of {list(expected_hps)}", actual=hp_name,
                )
        for hp_name in expected_hps:
            if hp_name not in hp:
                report.error(
                    "L003", where, f"{hp_name} is required but missing",
                    expected=hp_name, actual=None,
                )
        for hp_name, value in hp.items():
            if hp_name in expected_hps:
                _check_value(report, where, hp_name, value)

        if strategy.method_label in _QUANTIZING:
            if quantized_at is not None:
                report.error(
                    "L009", where,
                    "quantization applied twice — the model is already in "
                    "quantized form after the first pass",
                )
            quantized_at = position
        elif quantized_at is not None:
            report.warn(
                "L011", where,
                "strategy after quantization retrains or rewrites weights and "
                f"destroys the quantized format from step {quantized_at + 1}",
            )
        if strategy.method_label in _FACTORIZING:
            factorized_at = position
        elif (
            factorized_at is not None
            and strategy.method_label in _PRUNING
        ):
            report.warn(
                "L012", where,
                "pruning after factorisation: factorised layers are no longer "
                "prunable, so this step works on a reduced unit set",
            )
        if (
            position > 0
            and scheme.strategies[position - 1].identifier == strategy.identifier
        ):
            report.warn(
                "L010", where,
                "identical strategy repeated back-to-back — likely wasted budget",
            )

    total = scheme.total_param_step
    if total >= 1.0:
        report.error(
            "L007", "",
            "nominal HP2 targets remove >= 100% of the original parameters",
            expected="< 1.0", actual=round(total, 3),
        )
    elif total > AGGRESSIVE_TOTAL_STEP:
        report.warn(
            "L008", "",
            "nominal compression target is beyond the feasibility bound "
            "built-in searches enforce",
            expected=f"<= {AGGRESSIVE_TOTAL_STEP}", actual=round(total, 3),
        )

    if budget is not None and cost_model is not None and not budget.is_null:
        # Only S-check schemes that are structurally executable — abstract
        # interpretation needs valid strategies.
        if not report.errors:
            from .costmodel import check_budget

            check_budget(report, scheme, budget, cost_model)
    return report
