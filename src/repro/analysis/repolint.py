"""Repository-convention linter: AST checks ruff cannot express.

Three rules, each born from a real regression class in this codebase:

R001  builtin ``hash()`` is forbidden in ``src/repro``
      Evaluation fingerprints and cache keys must be reproducible across
      processes, but builtin ``hash(str)`` is salted per process via
      ``PYTHONHASHSEED``.  Anything that needs hashing must go through
      :func:`repro.core.evaluator.stable_hash` (CRC-32, process-stable).
      Defining ``__hash__`` is fine — only *calls* to the builtin trip
      the rule.

R002  float64 is forbidden in the ``repro.nn`` hot paths
      The training fast path runs in float32 (see ``repro.nn.tensor``'s
      ``default_dtype``); a single ``np.float64`` literal in a kernel
      silently upcasts every downstream array and halves throughput.
      Checked modules: ``functional.py``, ``layers.py``, ``optim.py``,
      ``train.py``.  Dtype *configuration* (``tensor.py``) and cold paths
      (metrics, losses on teacher logits) may use float64 freely.

R003  every registered runtime op needs a FLOPs rule
      ``repro.nn.functional`` tags tensors with ``_register_op(out, name)``
      so the profiler can attribute cost.  The static cost model
      (:mod:`repro.analysis.costmodel`) must know how to count every such
      op, so each registered name has to appear in
      ``costmodel.OP_FLOP_RULES`` — otherwise abstract predictions
      silently diverge from ``profile_model`` on models using the new op.

R005  every quantized op needs a FLOPs rule
      Same contract as R003, applied to ``repro.nn.quant``: the int8/fp16
      inference kernels register op names for the profiler, and each must
      appear in ``costmodel.OP_FLOP_RULES`` so abstract predictions cover
      quantized models too.

R006  hot-path kernels must allocate through the workspace arena
      The plan/workspace layer (:mod:`repro.nn.workspace`) exists so the
      per-step kernels stop paying the allocator on every call: padded
      inputs, patch matrices and gradient scratch come from the
      thread-local arena (``Workspace.request``/``.zeros``) or the
      ``owned_*`` helpers for arrays that escape the op.  A direct
      ``np.pad``/``np.zeros``/``np.empty`` (or ``*_like``) inside
      ``conv2d``/``_im2col``/``_col2im``/``avg_pool2d`` in
      ``nn/functional.py`` reintroduces exactly the per-call allocation
      the layer removed — and quietly invalidates the committed
      ``BENCH_workspace.json`` numbers.

R004  every ``Solver`` subclass must be registered
      Solvers are looked up by name through the registry in
      :mod:`repro.core.solver` (``AutoMC(solver=...)``, ``repro search
      --solver``, the experiment harnesses).  A ``Solver`` subclass
      without ``@register_solver("name")`` is unreachable from every
      public entry point — dead code that silently drifts from the
      driver contract.  Only *direct* subclasses are checked; refining
      an already-registered solver re-registers under the parent's name
      automatically.

Run as ``python -m repro.analysis.repolint`` (CI runs it next to ruff).
Exit status 1 when any violation is found.
"""

from __future__ import annotations

import ast
import os
import sys
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

#: rule catalogue (mirrors the module docstring)
R_RULES = {
    "R001": "builtin hash() call (use repro.core.evaluator.stable_hash)",
    "R002": "float64 in a repro.nn hot-path module",
    "R003": "registered op missing from costmodel.OP_FLOP_RULES",
    "R004": "Solver subclass without @register_solver",
    "R005": "quantized op missing from costmodel.OP_FLOP_RULES",
    "R006": "direct numpy allocation in a workspace-managed hot-path kernel",
}

#: repro.nn modules whose kernels must stay float32-clean (R002)
NN_HOT_PATH_MODULES = ("functional.py", "layers.py", "optim.py", "train.py")

#: nn/functional.py kernels that must allocate through the arena (R006)
WORKSPACE_KERNELS = ("conv2d", "_im2col", "_col2im", "avg_pool2d")

#: numpy allocators R006 forbids inside those kernels
FORBIDDEN_ALLOCATORS = ("pad", "zeros", "zeros_like", "empty", "empty_like")


@dataclass(frozen=True)
class Violation:
    """One rule breach at a specific source location."""

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _is_float64(node: ast.AST) -> bool:
    """np.float64 / numpy.float64 attribute access or a 'float64' literal."""
    if isinstance(node, ast.Attribute) and node.attr == "float64":
        return True
    if isinstance(node, ast.Constant) and node.value == "float64":
        return True
    return False


def check_hash_calls(tree: ast.AST, path: str) -> List[Violation]:
    """R001: flag every call of the *builtin* ``hash``."""
    found = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
        ):
            found.append(
                Violation(
                    "R001", path, node.lineno,
                    "builtin hash() is PYTHONHASHSEED-salted; use stable_hash",
                )
            )
    return found


def check_float64(tree: ast.AST, path: str) -> List[Violation]:
    """R002: flag float64 usage in a hot-path module."""
    found = []
    for node in ast.walk(tree):
        if _is_float64(node):
            found.append(
                Violation(
                    "R002", path, getattr(node, "lineno", 0),
                    "float64 upcasts the float32 fast path; use the tensor's "
                    "dtype (see repro.nn.tensor.default_dtype)",
                )
            )
    return found


def registered_op_names(tree: ast.AST) -> List[ast.Constant]:
    """All literal op names passed to ``_register_op(out, "name")``."""
    names = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "_register_op"
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
        ):
            names.append(node.args[1])
    return names


def check_flop_rules(tree: ast.AST, path: str, rule: str = "R003") -> List[Violation]:
    """R003/R005: every registered op name must have a FLOPs rule."""
    from .costmodel import OP_FLOP_RULES

    found = []
    for constant in registered_op_names(tree):
        if constant.value not in OP_FLOP_RULES:
            found.append(
                Violation(
                    rule, path, constant.lineno,
                    f"op {constant.value!r} has no entry in "
                    f"repro.analysis.costmodel.OP_FLOP_RULES — the static "
                    f"cost model cannot count it",
                )
            )
    return found


def _is_numpy_allocator(node: ast.AST) -> bool:
    """A call of ``np.pad``/``np.zeros``/``np.empty`` (or ``*_like``)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr in FORBIDDEN_ALLOCATORS
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    )


def check_workspace_allocations(tree: ast.AST, path: str) -> List[Violation]:
    """R006: arena-managed kernels must not call the numpy allocator.

    The walk descends into nested functions, so backward closures defined
    inside a kernel are covered too — they run once per training step,
    which is exactly the per-call allocation the arena exists to remove.
    """
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        if node.name not in WORKSPACE_KERNELS:
            continue
        for inner in ast.walk(node):
            if _is_numpy_allocator(inner):
                found.append(
                    Violation(
                        "R006", path, inner.lineno,
                        f"np.{inner.func.attr} inside {node.name} bypasses "
                        f"the workspace arena; use Workspace.request/.zeros "
                        f"or the owned_* helpers (repro.nn.workspace)",
                    )
                )
    return found


def _base_is_solver(node: ast.AST) -> bool:
    """A base-class expression naming ``Solver`` (bare or attribute)."""
    if isinstance(node, ast.Name):
        return node.id == "Solver"
    if isinstance(node, ast.Attribute):
        return node.attr == "Solver"
    return False


def _is_register_solver(node: ast.AST) -> bool:
    """A decorator of the form ``@register_solver(...)``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "register_solver"
    if isinstance(func, ast.Attribute):
        return func.attr == "register_solver"
    return False


def check_solver_registration(tree: ast.AST, path: str) -> List[Violation]:
    """R004: direct ``Solver`` subclasses must carry ``@register_solver``."""
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not any(_base_is_solver(base) for base in node.bases):
            continue
        if any(_is_register_solver(dec) for dec in node.decorator_list):
            continue
        found.append(
            Violation(
                "R004", path, node.lineno,
                f"class {node.name} subclasses Solver but has no "
                f"@register_solver(...) decorator — it is unreachable from "
                f"the solver registry (repro.core.solver)",
            )
        )
    return found


def python_files(root: str) -> Iterable[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith("__pycache__"))
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def lint_path(path: str) -> List[Violation]:
    """Run every applicable rule on one source file."""
    with open(path, "r") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation("R000", path, exc.lineno or 0, f"syntax error: {exc.msg}")]

    violations = check_hash_calls(tree, path)
    violations.extend(check_solver_registration(tree, path))
    normalized = path.replace(os.sep, "/")
    if "/nn/" in normalized and os.path.basename(path) in NN_HOT_PATH_MODULES:
        violations.extend(check_float64(tree, path))
    if normalized.endswith("nn/functional.py"):
        violations.extend(check_flop_rules(tree, path))
        violations.extend(check_workspace_allocations(tree, path))
    if normalized.endswith("nn/quant.py"):
        violations.extend(check_flop_rules(tree, path, rule="R005"))
    return violations


def run_repolint(root: str = "src/repro") -> List[Violation]:
    """Lint every Python file under ``root``; sorted, deterministic."""
    violations: List[Violation] = []
    for path in python_files(root):
        violations.extend(lint_path(path))
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    root = argv[0] if argv else "src/repro"
    if not os.path.isdir(root):
        print(f"repolint: no such directory {root!r}", file=sys.stderr)
        return 2
    violations = run_repolint(root)
    for violation in violations:
        print(violation.format())
    if violations:
        print(f"repolint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"repolint: clean ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
