"""Structured diagnostics shared by every analysis pass.

A pass (graph verifier, scheme linter, checkpoint checks) reports findings as
:class:`Diagnostic` records — rule id, severity, location, message, and the
expected/actual values that triggered the rule — collected into a
:class:`Report`.  Severities follow a three-level model:

* ``ok``      — informational; the subject passed a check worth mentioning.
* ``warning`` — suspicious but executable (wasted budget, no-op structure).
* ``error``   — the subject is guaranteed to fail or misbehave when run.

Rule ids are stable strings (``V###`` for the model verifier, ``L###`` for
the scheme linter, ``C###`` for checkpoint checks) so tests and tooling can
match on them; the catalogue lives in ``docs/static_analysis.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, List, Optional, Set


class Severity(Enum):
    """Three-level finding severity."""

    OK = "ok"
    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis rule at one location."""

    rule: str
    severity: Severity
    where: str  # dotted module path, scheme step, or "" for the whole subject
    message: str
    expected: Optional[object] = None
    actual: Optional[object] = None

    def format(self) -> str:
        location = f" {self.where}" if self.where else ""
        tail = ""
        if self.expected is not None or self.actual is not None:
            tail = f" (expected {self.expected}, got {self.actual})"
        return f"[{self.severity.value:>7s}] {self.rule}{location}: {self.message}{tail}"

    def __str__(self) -> str:
        return self.format()


class VerificationError(RuntimeError):
    """Raised by ``Report.raise_on_error`` when a report contains errors."""

    def __init__(self, report: "Report"):
        self.report = report
        lines = "\n".join(d.format() for d in report.errors)
        super().__init__(f"{report.subject}: verification failed\n{lines}")


@dataclass
class Report:
    """Ordered collection of diagnostics about one subject."""

    subject: str
    diagnostics: List[Diagnostic] = field(default_factory=list)

    # -- construction ------------------------------------------------------
    def add(
        self,
        rule: str,
        severity: Severity,
        where: str,
        message: str,
        expected: Optional[object] = None,
        actual: Optional[object] = None,
    ) -> Diagnostic:
        diagnostic = Diagnostic(rule, severity, where, message, expected, actual)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def error(self, rule: str, where: str, message: str, **kw) -> Diagnostic:
        return self.add(rule, Severity.ERROR, where, message, **kw)

    def warn(self, rule: str, where: str, message: str, **kw) -> Diagnostic:
        return self.add(rule, Severity.WARNING, where, message, **kw)

    def note(self, rule: str, where: str, message: str, **kw) -> Diagnostic:
        return self.add(rule, Severity.OK, where, message, **kw)

    def extend(self, other: "Report") -> None:
        self.diagnostics.extend(other.diagnostics)

    # -- queries -----------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def is_clean(self) -> bool:
        """No warnings and no errors (informational notes are allowed)."""
        return not self.has_errors and not self.warnings

    @property
    def status(self) -> Severity:
        if self.has_errors:
            return Severity.ERROR
        if self.warnings:
            return Severity.WARNING
        return Severity.OK

    def rules(self) -> Set[str]:
        """The set of rule ids that fired (any severity above ``ok``)."""
        return {d.rule for d in self.diagnostics if d.severity is not Severity.OK}

    def by_rule(self, rule: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    # -- presentation ------------------------------------------------------
    def format(self, verbose: bool = False) -> str:
        shown: Iterable[Diagnostic] = (
            self.diagnostics
            if verbose
            else [d for d in self.diagnostics if d.severity is not Severity.OK]
        )
        lines = [f"{self.subject}: {self.status.value}"]
        lines += [f"  {d.format()}" for d in shown]
        if self.is_clean:
            lines[0] = f"{self.subject}: clean"
        return "\n".join(lines)

    def raise_on_error(self) -> "Report":
        if self.has_errors:
            raise VerificationError(self)
        return self

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __str__(self) -> str:
        return self.format()
