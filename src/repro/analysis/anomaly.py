"""Autodiff anomaly mode — the dynamic counterpart of the static verifier.

The machinery lives in :mod:`repro.nn.tensor` (it must intercept every op
boundary); this module is the analysis-facing surface:

* :func:`detect_anomaly` — context manager; inside it every forward op output
  and every backward gradient is checked for NaN/Inf, and an
  :class:`AnomalyError` names the originating op with the stack where its
  output tensor was created;
* :func:`anomaly_enabled` — whether a context is active (used by tests and
  by code that wants to skip redundant checks);
* :class:`~repro.nn.train.Trainer` accepts ``detect_anomaly=True`` to wrap
  its whole gradient loop in the context.

Typical debugging session::

    from repro.analysis import detect_anomaly, AnomalyError

    with detect_anomaly():
        loss = cross_entropy(model(Tensor(x)), y)
        loss.backward()          # raises AnomalyError at the faulty op
"""

from __future__ import annotations

from ..nn.tensor import AnomalyError, anomaly_enabled, detect_anomaly

__all__ = ["AnomalyError", "anomaly_enabled", "detect_anomaly"]
