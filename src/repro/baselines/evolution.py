"""Multi-objective evolutionary baseline (§4.1), NSGA-II style.

A population of complete schemes evolves under non-dominated sorting with
crowding-distance selection.  Variation operators: strategy replacement,
hyperparameter-neighbour mutation, insertion, deletion, and one-point
crossover.  Every offspring evaluation charges the shared simulated budget.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.pareto import crowding_distance, nondominated_sort
from ..core.search import SearchResult, SearchStrategy
from ..space.scheme import CompressionScheme


class EvolutionSearch(SearchStrategy):
    """NSGA-II over complete compression schemes."""

    name = "Evolution"

    def __init__(
        self,
        *args,
        population_size: int = 16,
        offspring_per_generation: int = 8,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.population_size = population_size
        self.offspring_per_generation = offspring_per_generation

    # ------------------------------------------------------------------ #
    def _mutate(self, scheme: CompressionScheme) -> CompressionScheme:
        strategies = list(scheme.strategies)
        op = self.rng.random()
        if op < 0.35 and strategies:  # replace one strategy entirely
            i = int(self.rng.integers(len(strategies)))
            strategies[i] = self.space[int(self.rng.integers(len(self.space)))]
        elif op < 0.65 and strategies:  # nudge one hyperparameter
            i = int(self.rng.integers(len(strategies)))
            strategies[i] = self.space.neighbor(strategies[i], self.rng)
        elif op < 0.85 and len(strategies) < self.max_length:  # insert
            i = int(self.rng.integers(len(strategies) + 1))
            strategies.insert(i, self.space[int(self.rng.integers(len(self.space)))])
        elif len(strategies) > 1:  # delete
            i = int(self.rng.integers(len(strategies)))
            del strategies[i]
        mutated = CompressionScheme(tuple(strategies))
        if mutated.total_param_step > 0.9 or mutated.is_empty:
            return scheme
        # Statically-infeasible children fall back to the parent, exactly
        # like the nominal-PR guard above — no evaluation cost is charged.
        if not self.feasible(mutated):
            return scheme
        return mutated

    def _crossover(self, a: CompressionScheme, b: CompressionScheme) -> CompressionScheme:
        cut_a = int(self.rng.integers(0, a.length + 1))
        cut_b = int(self.rng.integers(0, b.length + 1))
        child = CompressionScheme(a.strategies[:cut_a] + b.strategies[cut_b:])
        child = child.prefix(self.max_length)
        if child.is_empty or child.total_param_step > 0.9:
            return a
        if not self.feasible(child):
            return a
        return child

    # ------------------------------------------------------------------ #
    def run(self) -> SearchResult:
        # Seed the population, then evaluate it as one batch — variation and
        # selection consume only self.rng, so generating a full generation
        # before submitting it through evaluate_many (and any engine workers
        # behind it) replays the serial trajectory.
        population: List[CompressionScheme] = []
        while len(population) < self.population_size and self.budget_left() > 0:
            scheme = self.random_scheme()
            if not scheme.is_empty:
                population.append(scheme)
        if population:
            self.evaluator.evaluate_many(population)
        self.record()

        generation = 0
        while self.budget_left() > 0 and population:
            with self.tracer.span(
                "search.round",
                algorithm=self.name,
                round=generation,
                population=len(population),
            ) as round_span:
                results = self.evaluator.evaluate_many(population)  # cache hits
                points = np.stack([r.objectives for r in results])

                offspring: List[CompressionScheme] = []
                for _ in range(self.offspring_per_generation):
                    i, j = self.rng.integers(0, len(population), size=2)
                    # Binary tournament on domination rank then crowding.
                    parent = population[int(i)] if self._beats(points, int(i), int(j)) else population[int(j)]
                    if self.rng.random() < 0.3 and len(population) >= 2:
                        other = population[int(self.rng.integers(len(population)))]
                        child = self._crossover(parent, other)
                    else:
                        child = self._mutate(parent)
                    offspring.append(child)
                if offspring:
                    self.evaluator.evaluate_many(offspring)

                merged = population + offspring
                merged_results = self.evaluator.evaluate_many(merged)
                merged_points = np.stack([r.objectives for r in merged_results])
                population = self._environmental_selection(merged, merged_points)
                round_span.set(offspring=len(offspring), survivors=len(population))
                self.record()
            generation += 1

        return self.finish()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _beats(points: np.ndarray, i: int, j: int) -> bool:
        a, b = points[i], points[j]
        if np.all(a >= b) and np.any(a > b):
            return True
        if np.all(b >= a) and np.any(b > a):
            return False
        return bool(a[0] >= b[0])  # tie-break on AR

    def _environmental_selection(
        self, schemes: List[CompressionScheme], points: np.ndarray
    ) -> List[CompressionScheme]:
        selected: List[int] = []
        for front in nondominated_sort(points):
            if len(selected) + len(front) <= self.population_size:
                selected.extend(int(i) for i in front)
            else:
                need = self.population_size - len(selected)
                dist = crowding_distance(points[front])
                order = np.argsort(-dist)[:need]
                selected.extend(int(front[i]) for i in order)
                break
        # Deduplicate by identifier while preserving order.
        seen = set()
        unique: List[CompressionScheme] = []
        for i in selected:
            key = schemes[i].identifier
            if key not in seen:
                seen.add(key)
                unique.append(schemes[i])
        return unique
