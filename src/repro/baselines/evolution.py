"""Multi-objective evolutionary baseline (§4.1), NSGA-II style.

A population of complete schemes evolves under non-dominated sorting with
crowding-distance selection.  Variation operators: strategy replacement,
hyperparameter-neighbour mutation, insertion, deletion, and one-point
crossover.  Every offspring evaluation charges the shared simulated budget.
"""

from __future__ import annotations

import warnings
from typing import Dict, List

import numpy as np

from ..core.evaluator import EvaluationResult
from ..core.pareto import crowding_distance, nondominated_sort
from ..core.search import SearchResult, SearchStrategy
from ..core.solver import Solver, register_solver
from ..space.scheme import CompressionScheme


@register_solver("evolution", label="Evolution")
class EvolutionSolver(Solver):
    """NSGA-II over complete compression schemes.

    Round 0 proposes the random initial population; each later round is one
    generation: binary-tournament parent selection, mutation/crossover
    offspring, then environmental selection over parents + offspring.
    Variation consumes only the strategy rng, so generating the whole
    generation before submitting it through ``evaluate_many`` (and any
    engine workers behind it) replays the serial trajectory.
    """

    def __init__(
        self,
        strategy: SearchStrategy,
        population_size: int = 16,
        offspring_per_generation: int = 8,
    ):
        super().__init__(strategy)
        self.population_size = population_size
        self.offspring_per_generation = offspring_per_generation
        self._population: List[CompressionScheme] = []
        self._offspring: List[CompressionScheme] = []
        self._known: Dict[str, EvaluationResult] = {}
        self._seeded = False

    # ------------------------------------------------------------------ #
    def _mutate(self, scheme: CompressionScheme) -> CompressionScheme:
        strategies = list(scheme.strategies)
        op = self.rng.random()
        if op < 0.35 and strategies:  # replace one strategy entirely
            i = int(self.rng.integers(len(strategies)))
            strategies[i] = self.space[int(self.rng.integers(len(self.space)))]
        elif op < 0.65 and strategies:  # nudge one hyperparameter
            i = int(self.rng.integers(len(strategies)))
            strategies[i] = self.space.neighbor(strategies[i], self.rng)
        elif op < 0.85 and len(strategies) < self.max_length:  # insert
            i = int(self.rng.integers(len(strategies) + 1))
            strategies.insert(i, self.space[int(self.rng.integers(len(self.space)))])
        elif len(strategies) > 1:  # delete
            i = int(self.rng.integers(len(strategies)))
            del strategies[i]
        mutated = CompressionScheme(tuple(strategies))
        if mutated.total_param_step > 0.9 or mutated.is_empty:
            return scheme
        # Statically-infeasible children fall back to the parent, exactly
        # like the nominal-PR guard above — no evaluation cost is charged.
        if not self.strategy.feasible(mutated):
            return scheme
        return mutated

    def _crossover(self, a: CompressionScheme, b: CompressionScheme) -> CompressionScheme:
        cut_a = int(self.rng.integers(0, a.length + 1))
        cut_b = int(self.rng.integers(0, b.length + 1))
        child = CompressionScheme(a.strategies[:cut_a] + b.strategies[cut_b:])
        child = child.prefix(self.max_length)
        if child.is_empty or child.total_param_step > 0.9:
            return a
        if not self.strategy.feasible(child):
            return a
        return child

    # ------------------------------------------------------------------ #
    def propose(self, state: SearchStrategy) -> List[CompressionScheme]:
        if not self._seeded:
            population: List[CompressionScheme] = []
            while len(population) < self.population_size and state.budget_left() > 0:
                scheme = state.random_scheme()
                if not scheme.is_empty:
                    population.append(scheme)
            self._population = population
            self._offspring = []
            return list(population)
        if not self._population:
            return []
        points = np.stack(
            [self._known[s.identifier].objectives for s in self._population]
        )
        offspring: List[CompressionScheme] = []
        for _ in range(self.offspring_per_generation):
            i, j = self.rng.integers(0, len(self._population), size=2)
            # Binary tournament on domination rank then crowding.
            parent = (
                self._population[int(i)]
                if self._beats(points, int(i), int(j))
                else self._population[int(j)]
            )
            if self.rng.random() < 0.3 and len(self._population) >= 2:
                other = self._population[int(self.rng.integers(len(self._population)))]
                child = self._crossover(parent, other)
            else:
                child = self._mutate(parent)
            offspring.append(child)
        self._offspring = offspring
        self._round_attrs = {"population": len(self._population)}
        return offspring

    def observe(self, results: List[EvaluationResult]) -> None:
        for result in results:
            self._known[result.scheme.identifier] = result
        if not self._seeded:
            self._seeded = True
            # keep only members the driver actually evaluated
            self._population = [
                s for s in self._population if s.identifier in self._known
            ]
            return
        survivors = [s for s in self._offspring if s.identifier in self._known]
        merged = self._population + survivors
        if not merged:
            self._population = []
            return
        merged_points = np.stack(
            [self._known[s.identifier].objectives for s in merged]
        )
        self._population = self._environmental_selection(merged, merged_points)
        self._round_attrs.update(
            offspring=len(self._offspring), survivors=len(self._population)
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _beats(points: np.ndarray, i: int, j: int) -> bool:
        a, b = points[i], points[j]
        if np.all(a >= b) and np.any(a > b):
            return True
        if np.all(b >= a) and np.any(b > a):
            return False
        return bool(a[0] >= b[0])  # tie-break on AR

    def _environmental_selection(
        self, schemes: List[CompressionScheme], points: np.ndarray
    ) -> List[CompressionScheme]:
        selected: List[int] = []
        for front in nondominated_sort(points):
            if len(selected) + len(front) <= self.population_size:
                selected.extend(int(i) for i in front)
            else:
                need = self.population_size - len(selected)
                dist = crowding_distance(points[front])
                order = np.argsort(-dist)[:need]
                selected.extend(int(front[i]) for i in order)
                break
        # Deduplicate by identifier while preserving order.
        seen = set()
        unique: List[CompressionScheme] = []
        for i in selected:
            key = schemes[i].identifier
            if key not in seen:
                seen.add(key)
                unique.append(schemes[i])
        return unique


class EvolutionSearch(SearchStrategy):
    """Deprecated facade — use ``get_solver("evolution")`` / ``run_solver``."""

    name = "Evolution"

    # exposed for callers that used the staticmethod off the class
    _beats = staticmethod(EvolutionSolver._beats)

    def __init__(
        self,
        *args,
        population_size: int = 16,
        offspring_per_generation: int = 8,
        **kwargs,
    ):
        warnings.warn(
            "EvolutionSearch is deprecated; use repro.core.solver.run_solver"
            "('evolution', evaluator, space, ...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)
        self._solver = EvolutionSolver(
            self,
            population_size=population_size,
            offspring_per_generation=offspring_per_generation,
        )

    def run(self) -> SearchResult:
        return self._solver.run()

    def __getattr__(self, item):
        solver = self.__dict__.get("_solver")
        if solver is None:
            raise AttributeError(item)
        return getattr(solver, item)
