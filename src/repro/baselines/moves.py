"""Shared scheme-edit neighbourhood for the local-search solvers.

One uniformly-chosen edit of a scheme — replace a strategy, nudge one
hyperparameter to a grid neighbour, insert, or delete — with the same
operator thresholds as the NSGA-II baseline's mutation so neighbourhood
sizes are comparable across solvers.  Edits that would empty the scheme or
push the nominal cumulative PR past ``max_nominal`` return the original
scheme unchanged (a self-loop in the search graph); static budget
feasibility is the solver driver's job, not the move's.
"""

from __future__ import annotations

from ..space.scheme import CompressionScheme
from ..space.strategy import StrategySpace


def mutate_scheme(
    scheme: CompressionScheme,
    space: StrategySpace,
    rng,
    max_length: int,
    max_nominal: float = 0.9,
) -> CompressionScheme:
    """One random edit move; falls back to ``scheme`` when the edit is invalid."""
    strategies = list(scheme.strategies)
    op = rng.random()
    if op < 0.35 and strategies:  # replace one strategy entirely
        i = int(rng.integers(len(strategies)))
        strategies[i] = space[int(rng.integers(len(space)))]
    elif op < 0.65 and strategies:  # nudge one hyperparameter
        i = int(rng.integers(len(strategies)))
        strategies[i] = space.neighbor(strategies[i], rng)
    elif op < 0.85 and len(strategies) < max_length:  # insert
        i = int(rng.integers(len(strategies) + 1))
        strategies.insert(i, space[int(rng.integers(len(space)))])
    elif len(strategies) > 1:  # delete
        i = int(rng.integers(len(strategies)))
        del strategies[i]
    mutated = CompressionScheme(tuple(strategies))
    if mutated.is_empty or mutated.total_param_step > max_nominal:
        return scheme
    return mutated
