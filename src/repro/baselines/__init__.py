"""AutoML baselines compared against AutoMC (§4.1)."""

from .evolution import EvolutionSearch
from .grid import GridSearchOutcome, run_all_human_methods, run_human_method
from .random_search import RandomSearch
from .rl import ControllerRNN, RLSearch

__all__ = [
    "ControllerRNN",
    "EvolutionSearch",
    "GridSearchOutcome",
    "RLSearch",
    "RandomSearch",
    "run_all_human_methods",
    "run_human_method",
]
