"""AutoML baselines compared against AutoMC (§4.1).

Every search algorithm here is a registered :class:`repro.core.solver.Solver`
(``random``, ``evolution``, ``grid``, ``rl``, ``sa``, ``regevo``, ``amc``);
the ``*Search`` classes are deprecated facades kept for import
compatibility.
"""

from .amc import AMCSolver
from .evolution import EvolutionSearch, EvolutionSolver
from .grid import GridSearchOutcome, GridSolver, run_all_human_methods, run_human_method
from .moves import mutate_scheme
from .random_search import RandomSearch, RandomSolver
from .regevo import RegularizedEvolutionSolver
from .rl import ControllerRNN, RLSearch, RLSolver
from .sa import SimulatedAnnealingSolver

__all__ = [
    "AMCSolver",
    "ControllerRNN",
    "EvolutionSearch",
    "EvolutionSolver",
    "GridSearchOutcome",
    "GridSolver",
    "RLSearch",
    "RLSolver",
    "RandomSearch",
    "RandomSolver",
    "RegularizedEvolutionSolver",
    "SimulatedAnnealingSolver",
    "mutate_scheme",
    "run_all_human_methods",
    "run_human_method",
]
