"""AMC-style solver: DDPG-lite layer-by-layer sparsity agent (He et al., 2018).

AMC searches compression *step by step*: at each position the agent observes
a small state vector (position, cumulative nominal PR, remaining headroom,
last action) and emits a continuous sparsity action which is clipped to the
remaining nominal-PR headroom — the paper's budget-clipped action space.
The action is snapped to the nearest strategy in the discrete space by
``param_step``, so every episode produces a valid scheme; a round's episodes
are evaluated as one batch.

The agent is a deterministic actor plus a Q-critic on :mod:`repro.nn`
(DDPG without target networks or a persistent replay across runs — "lite"):
the critic regresses episode rewards (the shared ``AR - 2·max(0, γ-PR)``
scalarisation) on (state, action), and the actor ascends the critic with
annealed Gaussian exploration noise on top.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.evaluator import EvaluationResult
from ..core.search import SearchStrategy
from ..core.solver import Solver, register_solver
from ..nn import Adam, Linear, Module, Tensor
from ..space.scheme import CompressionScheme

#: cap on cumulative nominal PR — matches random_scheme / the GA guard
_MAX_NOMINAL = 0.9


class _Actor(Module):
    """state (4,) -> action in [0, _MAX_NOMINAL]."""

    def __init__(self, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.fc1 = Linear(4, hidden, rng=rng)
        self.fc2 = Linear(hidden, 1, rng=rng)

    def forward(self, state: Tensor) -> Tensor:
        raw = self.fc2(self.fc1(state).tanh()).sigmoid()
        return raw * _MAX_NOMINAL


class _Critic(Module):
    """Q(state, action) -> scalar value."""

    def __init__(self, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.fc_s = Linear(4, hidden, rng=rng)
        self.fc_a = Linear(1, hidden, rng=rng)
        self.out = Linear(hidden, 1, rng=rng)

    def forward(self, state: Tensor, action: Tensor) -> Tensor:
        return self.out((self.fc_s(state) + self.fc_a(action)).tanh())


@register_solver("amc", label="AMC")
class AMCSolver(Solver):
    """Layer-by-layer DDPG-lite sparsity agent over the strategy space."""

    def __init__(
        self,
        strategy: SearchStrategy,
        episodes_per_round: int = 4,
        hidden: int = 16,
        actor_lr: float = 1e-2,
        critic_lr: float = 1e-2,
        noise: float = 0.15,
        noise_decay: float = 0.95,
        replay_size: int = 64,
    ):
        super().__init__(strategy)
        self.episodes_per_round = episodes_per_round
        self.noise_scale = noise
        self.noise_decay = noise_decay
        self.replay_size = replay_size
        net_rng = np.random.default_rng(strategy.seed)
        self.actor = _Actor(hidden, net_rng)
        self.critic = _Critic(hidden, net_rng)
        self.actor_opt = Adam(self.actor.parameters(), lr=actor_lr)
        self.critic_opt = Adam(self.critic.parameters(), lr=critic_lr)
        self._param_steps = np.array(
            [strategy.space[i].param_step for i in range(len(strategy.space))]
        )
        #: (state, clipped action, episode reward) transitions
        self._replay: List[Tuple[np.ndarray, float, float]] = []
        #: the round's (scheme, transitions) episodes awaiting rewards
        self._pending: List[Tuple[CompressionScheme, List[Tuple[np.ndarray, float]]]] = []

    # ------------------------------------------------------------------ #
    def _state_vector(self, position: int, cumulative: float, last: float) -> np.ndarray:
        return np.array(
            [
                position / self.max_length,
                cumulative,
                _MAX_NOMINAL - cumulative,
                last,
            ],
            dtype=np.float32,
        )

    def _rollout(self) -> Tuple[CompressionScheme, List[Tuple[np.ndarray, float]]]:
        """One episode: build a scheme position by position."""
        scheme = CompressionScheme()
        transitions: List[Tuple[np.ndarray, float]] = []
        cumulative = 0.0
        last = 0.0
        for position in range(self.max_length):
            state = self._state_vector(position, cumulative, last)
            action = float(self.actor(Tensor(state[None, :])).data[0, 0])
            action += float(self.rng.normal(0.0, self.noise_scale))
            remaining = _MAX_NOMINAL - cumulative
            # Budget clip: the action can never exceed the remaining
            # nominal-PR headroom (AMC's constrained action space).
            action = float(np.clip(action, 0.0, remaining))
            usable = self._param_steps <= remaining + 1e-9
            if not usable.any():
                break
            distance = np.where(
                usable, np.abs(self._param_steps - action), np.inf
            )
            index = int(np.argmin(distance))
            chosen = self.space[index]
            scheme = scheme.extend(chosen)
            transitions.append((state, action))
            cumulative += chosen.param_step
            last = chosen.param_step
            # stochastic stop: deeper schemes only while headroom remains
            if cumulative >= self.gamma and self.rng.random() < 0.5:
                break
        return scheme, transitions

    # ------------------------------------------------------------------ #
    def propose(self, state: SearchStrategy) -> List[CompressionScheme]:
        episodes = []
        for _ in range(self.episodes_per_round):
            scheme, transitions = self._rollout()
            if scheme.is_empty or not transitions:
                continue
            episodes.append((scheme, transitions))
        self._pending = episodes
        self.noise_scale *= self.noise_decay
        return [scheme for scheme, _ in episodes]

    def observe(self, results: List[EvaluationResult]) -> None:
        by_id = {r.scheme.identifier: r for r in results}
        for scheme, transitions in self._pending:
            result = by_id.get(scheme.identifier)
            if result is None:  # budget-pruned episode: no reward signal
                continue
            reward = self.scalar_reward(result)
            for state, action in transitions:
                self._replay.append((state, action, reward))
        self._replay = self._replay[-self.replay_size:]
        if not self._replay:
            return
        states = Tensor(np.stack([s for s, _, _ in self._replay]))
        actions = Tensor(
            np.array([[a] for _, a, _ in self._replay], dtype=np.float32)
        )
        returns = Tensor(
            np.array([[r] for _, _, r in self._replay], dtype=np.float32)
        )
        # Critic: MSE on the observed episode rewards.
        diff = self.critic(states, actions) - returns
        critic_loss = (diff * diff).mean()
        self.critic_opt.zero_grad()
        self.actor_opt.zero_grad()
        critic_loss.backward()
        self.critic_opt.step()
        # Actor: deterministic policy gradient through the (frozen) critic —
        # only the actor's optimizer steps, so critic weights are untouched.
        actor_loss = self.critic(states, self.actor(states)).mean() * -1.0
        self.critic_opt.zero_grad()
        self.actor_opt.zero_grad()
        actor_loss.backward()
        self.actor_opt.step()
        self._round_attrs = {
            "replay": len(self._replay),
            "noise": round(self.noise_scale, 6),
        }
