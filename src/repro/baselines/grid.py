"""Human-baseline runner: one compression method, grid-searched (§4.1).

The paper applies each of the six methods *directly* at target reduction
rates 0.4 and 0.7 with grid-searched hyperparameters.  Targets outside the
HP2 search grid are allowed here — a human running LeGR is not constrained
by AutoMC's strategy grid — so strategies are constructed ad hoc via
:func:`~repro.space.strategy.make_strategy`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.evaluator import EvaluationResult
from ..core.interface import Evaluator
from ..core.search import SearchStrategy
from ..core.solver import Solver, register_solver
from ..obs import NULL_TRACER
from ..space.hyperparams import HP_GRID, METHOD_HPS
from ..space.scheme import CompressionScheme
from ..space.strategy import make_strategy


@dataclass
class GridSearchOutcome:
    """Best single-method result at a fixed parameter-reduction target."""

    method_label: str
    target_pr: float
    best: EvaluationResult
    evaluations: int
    #: grid points dropped by the static budget filter (never evaluated)
    budget_filtered: int = 0


def run_human_method(
    evaluator: Evaluator,
    method_label: str,
    target_pr: float,
    fine_tune: float = 0.5,
    max_evaluations: Optional[int] = None,
) -> GridSearchOutcome:
    """Grid-search a single method's secondary hyperparameters at ``target_pr``.

    HP2 is pinned to the target; HP1 (and HP9 for SFP) to the most generous
    epoch setting — matching how the paper tunes human baselines before
    comparing against searched schemes.  The whole grid (up to the cap) is
    submitted as one ``evaluate_many`` batch.
    """
    hp_names = METHOD_HPS[method_label]
    fixed: Dict[str, object] = {}
    if "HP2" in hp_names:
        fixed["HP2"] = target_pr
    if "HP1" in hp_names:
        fixed["HP1"] = fine_tune
    if "HP9" in hp_names:
        fixed["HP9"] = fine_tune
    free = [name for name in hp_names if name not in fixed]

    schemes: List[CompressionScheme] = []
    for values in itertools.product(*(HP_GRID[name] for name in free)):
        if max_evaluations is not None and len(schemes) >= max_evaluations:
            break
        hp = dict(fixed)
        hp.update(zip(free, values))
        schemes.append(CompressionScheme((make_strategy(method_label, hp),)))
    if not schemes:
        raise RuntimeError(f"grid search produced no evaluations for {method_label}")

    # Static budget pre-filter: infeasible grid points never reach the
    # evaluator and charge nothing.
    budget_filtered = 0
    check = getattr(evaluator, "is_feasible", None)
    if check is not None and getattr(evaluator, "budget", None) is not None:
        kept = [scheme for scheme in schemes if check(scheme)]
        budget_filtered = len(schemes) - len(kept)
        schemes = kept
    if not schemes:
        raise RuntimeError(
            f"the budget statically rejects every {method_label} grid point "
            f"at target {target_pr}"
        )

    best: Optional[EvaluationResult] = None
    tracer = getattr(evaluator, "tracer", NULL_TRACER)
    with tracer.span(
        "search.round",
        algorithm="Grid",
        method=method_label,
        target_pr=target_pr,
        batch=len(schemes),
    ):
        for result in evaluator.evaluate_many(schemes):
            if best is None or result.accuracy > best.accuracy:
                best = result
    count = len(schemes)
    return GridSearchOutcome(
        method_label=method_label,
        target_pr=target_pr,
        best=best,
        evaluations=count,
        budget_filtered=budget_filtered,
    )


def run_all_human_methods(
    evaluator: Evaluator,
    target_pr: float,
    method_labels: Sequence[str] = ("C1", "C2", "C3", "C4", "C5", "C6"),
    max_evaluations_per_method: Optional[int] = 96,
) -> List[GridSearchOutcome]:
    """Grid-search every human method at one target (a Table 2 column block)."""
    return [
        run_human_method(
            evaluator,
            label,
            target_pr,
            max_evaluations=max_evaluations_per_method,
        )
        for label in method_labels
    ]


@register_solver("grid", label="Grid")
class GridSolver(Solver):
    """Exhaustive single-method grid search on the shared solver loop.

    One round per (method, target-PR) cell: the cell's strategies are the
    grid points of that method whose HP2 is nearest the target, capped at
    ``max_evals_per_round`` and submitted as one batch.  Unlike
    :func:`run_human_method` this stays inside the strategy space (single-
    strategy schemes only), so the run is comparable to the other solvers
    and reuses the driver's budget gate instead of ad-hoc filtering.
    """

    def __init__(
        self,
        strategy: SearchStrategy,
        targets: Sequence[float] = (0.4, 0.7),
        max_evals_per_round: int = 24,
    ):
        super().__init__(strategy)
        self.targets = tuple(targets)
        self.max_evals_per_round = max_evals_per_round
        self._cells: List[Tuple[str, float]] = [
            (label, target)
            for target in self.targets
            for label in strategy.space.method_labels
        ]
        self._cursor = 0

    def done(self) -> bool:
        return self._cursor >= len(self._cells)

    def propose(self, state: SearchStrategy) -> List[CompressionScheme]:
        label, target = self._cells[self._cursor]
        self._cursor += 1
        candidates = self.space.of_method(label)
        if candidates and "HP2" in candidates[0].hp:
            values = sorted({float(s.hp["HP2"]) for s in candidates})
            nearest = min(values, key=lambda v: abs(v - target))
            candidates = [s for s in candidates if float(s.hp["HP2"]) == nearest]
        self._round_attrs = {"method": label, "target_pr": target}
        return [
            CompressionScheme((s,))
            for s in candidates[: self.max_evals_per_round]
        ]
