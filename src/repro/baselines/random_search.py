"""Random Search baseline (§4.1) — uniform schemes from the tree S (L=5)."""

from __future__ import annotations

from ..core.search import SearchResult, SearchStrategy


class RandomSearch(SearchStrategy):
    """Evaluate uniformly random schemes until the budget runs out."""

    name = "Random"

    def __init__(self, *args, record_every: int = 5, **kwargs):
        super().__init__(*args, **kwargs)
        self.record_every = record_every

    def run(self) -> SearchResult:
        self.record()
        round_index = 0
        while self.budget_left() > 0:
            # One batch per trajectory snapshot: generation consumes only
            # self.rng, so batching through evaluate_many (and any engine
            # workers behind it) preserves the serial scheme sequence.
            batch = []
            attempts = 0
            while len(batch) < self.record_every and attempts < 4 * self.record_every:
                scheme = self.random_scheme()
                attempts += 1
                # Statically-infeasible schemes are skipped for free (the
                # draw still consumed self.rng, keeping sequences aligned
                # with an unfiltered run over the surviving schemes).
                if not scheme.is_empty and self.feasible(scheme):
                    batch.append(scheme)
            if not batch:
                break
            with self.tracer.span(
                "search.round", algorithm=self.name, round=round_index, batch=len(batch)
            ):
                self.evaluator.evaluate_many(batch)
                self.record()
            round_index += 1
        self.record()
        return self.finish()
