"""Random Search baseline (§4.1) — uniform schemes from the tree S (L=5)."""

from __future__ import annotations

import warnings
from typing import List

from ..core.search import SearchResult, SearchStrategy
from ..core.solver import Solver, register_solver
from ..space.scheme import CompressionScheme


@register_solver("random", label="Random")
class RandomSolver(Solver):
    """Evaluate uniformly random schemes until the budget runs out.

    One batch of ``record_every`` draws per round / trajectory snapshot:
    generation consumes only the strategy rng, so batching through
    ``evaluate_many`` (and any engine workers behind it) preserves the
    serial scheme sequence.  Statically-infeasible draws are pruned by the
    driver gate for free.
    """

    def __init__(self, strategy: SearchStrategy, record_every: int = 5):
        super().__init__(strategy)
        self.record_every = record_every

    def propose(self, state: SearchStrategy) -> List[CompressionScheme]:
        batch: List[CompressionScheme] = []
        attempts = 0
        while len(batch) < self.record_every and attempts < 4 * self.record_every:
            scheme = state.random_scheme()
            attempts += 1
            if not scheme.is_empty:
                batch.append(scheme)
        return batch


class RandomSearch(SearchStrategy):
    """Deprecated facade — use ``get_solver("random")`` / ``run_solver``."""

    name = "Random"

    def __init__(self, *args, record_every: int = 5, **kwargs):
        warnings.warn(
            "RandomSearch is deprecated; use repro.core.solver.run_solver"
            "('random', evaluator, space, ..., record_every=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)
        self._solver = RandomSolver(self, record_every=record_every)

    def run(self) -> SearchResult:
        return self._solver.run()

    def __getattr__(self, item):
        solver = self.__dict__.get("_solver")
        if solver is None:
            raise AttributeError(item)
        return getattr(solver, item)
