"""Random Search baseline (§4.1) — uniform schemes from the tree S (L=5)."""

from __future__ import annotations

from ..core.search import SearchResult, SearchStrategy


class RandomSearch(SearchStrategy):
    """Evaluate uniformly random schemes until the budget runs out."""

    name = "Random"

    def __init__(self, *args, record_every: int = 5, **kwargs):
        super().__init__(*args, **kwargs)
        self.record_every = record_every

    def run(self) -> SearchResult:
        self.record()
        since_record = 0
        while self.budget_left() > 0:
            scheme = self.random_scheme()
            if scheme.is_empty:
                continue
            self.evaluator.evaluate(scheme)
            since_record += 1
            if since_record >= self.record_every:
                self.record()
                since_record = 0
        self.record()
        return self.finish()
