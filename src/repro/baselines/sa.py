"""Simulated-annealing solver: Metropolis acceptance over scheme edits.

nn-comp style (see SNIPPETS.md): a handful of independent chains each hold a
current scheme; every round each chain proposes one edit-move neighbour, the
whole round is evaluated as a single batch (engine workers / cache apply),
and each chain accepts its candidate with the Metropolis rule on the shared
scalar reward ``AR - 2·max(0, γ - PR)``:

    accept if Δ >= 0, else with probability exp(Δ / T)

The temperature follows a geometric schedule ``T ← max(T_min, T·cooling)``
per round.  Candidates the static budget prunes are treated as rejected
moves (the chain stays put, nothing is charged).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.evaluator import EvaluationResult
from ..core.search import SearchStrategy
from ..core.solver import Solver, register_solver
from ..space.scheme import CompressionScheme
from .moves import mutate_scheme


@register_solver("sa", label="SA")
class SimulatedAnnealingSolver(Solver):
    """Parallel-chain simulated annealing over compression schemes."""

    def __init__(
        self,
        strategy: SearchStrategy,
        chains: int = 4,
        initial_temperature: float = 0.05,
        cooling: float = 0.9,
        min_temperature: float = 1e-4,
    ):
        super().__init__(strategy)
        self.chains = chains
        self.temperature = initial_temperature
        self.cooling = cooling
        self.min_temperature = min_temperature
        #: per-chain (current scheme, current reward); empty until seeded
        self._states: List[Tuple[CompressionScheme, float]] = []
        self._candidates: List[CompressionScheme] = []
        self._seeded = False

    # ------------------------------------------------------------------ #
    def propose(self, state: SearchStrategy) -> List[CompressionScheme]:
        if not self._seeded:
            seeds: List[CompressionScheme] = []
            for _ in range(self.chains):
                for _ in range(10):
                    scheme = state.random_scheme()
                    if not scheme.is_empty:
                        seeds.append(scheme)
                        break
            self._candidates = seeds
            return list(seeds)
        if not self._states:
            return []
        candidates = [
            mutate_scheme(scheme, self.space, self.rng, self.max_length)
            for scheme, _ in self._states
        ]
        self._candidates = candidates
        self._round_attrs = {"temperature": round(self.temperature, 6)}
        return candidates

    def observe(self, results: List[EvaluationResult]) -> None:
        by_id = {r.scheme.identifier: r for r in results}
        if not self._seeded:
            # One chain per evaluated seed; budget-pruned seeds simply make
            # the chain population smaller.
            self._states = [
                (r.scheme, self.scalar_reward(r)) for r in results
            ]
            self._seeded = bool(results)
            return
        next_states: List[Tuple[CompressionScheme, float]] = []
        accepted = 0
        for (scheme, reward), candidate in zip(self._states, self._candidates):
            result = by_id.get(candidate.identifier)
            if result is None:  # pruned by the budget gate: rejected move
                next_states.append((scheme, reward))
                continue
            candidate_reward = self.scalar_reward(result)
            delta = candidate_reward - reward
            if delta >= 0 or self.rng.random() < np.exp(
                delta / max(self.temperature, 1e-12)
            ):
                next_states.append((result.scheme, candidate_reward))
                accepted += 1
            else:
                next_states.append((scheme, reward))
        self._states = next_states
        self.temperature = max(self.min_temperature, self.temperature * self.cooling)
        self._round_attrs.update(accepted=accepted)
