"""Regularized evolution: aging tournament over complete schemes.

Real et al.'s regularized evolution, distinct from the NSGA-II baseline in
two ways: selection is a *tournament* on the shared scalar reward (not
non-dominated sorting), and survival is by *age* — every child enters a
FIFO population and the oldest member dies when the population overflows,
so no individual survives on fitness alone.  Mutation is the shared
single-edit move; each round's children are one ``evaluate_many`` batch.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from ..core.evaluator import EvaluationResult
from ..core.search import SearchStrategy
from ..core.solver import Solver, register_solver
from ..space.scheme import CompressionScheme
from .moves import mutate_scheme


@register_solver("regevo", label="RegEvo")
class RegularizedEvolutionSolver(Solver):
    """Aging evolution with k-way tournament parent selection."""

    def __init__(
        self,
        strategy: SearchStrategy,
        population_size: int = 16,
        tournament_size: int = 4,
        children_per_round: int = 8,
    ):
        super().__init__(strategy)
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.children_per_round = children_per_round
        #: FIFO of (scheme, scalar reward) — left end is the oldest
        self._population: Deque[Tuple[CompressionScheme, float]] = deque()
        self._seeded = False

    # ------------------------------------------------------------------ #
    def propose(self, state: SearchStrategy) -> List[CompressionScheme]:
        if not self._seeded:
            seeds: List[CompressionScheme] = []
            attempts = 0
            while (
                len(seeds) < self.population_size
                and attempts < 4 * self.population_size
            ):
                scheme = state.random_scheme()
                attempts += 1
                if not scheme.is_empty:
                    seeds.append(scheme)
            return seeds
        if not self._population:
            return []
        pool = list(self._population)
        children: List[CompressionScheme] = []
        for _ in range(self.children_per_round):
            k = min(self.tournament_size, len(pool))
            picks = self.rng.choice(len(pool), size=k, replace=False)
            parent = max((pool[int(i)] for i in picks), key=lambda entry: entry[1])[0]
            children.append(
                mutate_scheme(parent, self.space, self.rng, self.max_length)
            )
        return children

    def observe(self, results: List[EvaluationResult]) -> None:
        self._seeded = self._seeded or bool(results)
        for result in results:
            self._population.append((result.scheme, self.scalar_reward(result)))
            while len(self._population) > self.population_size:
                self._population.popleft()  # aging: the oldest dies
        self._round_attrs = {"population": len(self._population)}
