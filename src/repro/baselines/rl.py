"""RL baseline (§4.1): REINFORCE with a recurrent controller.

The controller is a small recurrent network built on :mod:`repro.nn`.  At
each position it consumes the embedding of the previous method, updates its
hidden state, and emits:

* a *continue/stop* head (schemes may be shorter than L);
* a *method* head over the six compression methods;
* one head per hyperparameter of the chosen method over its value grid.

The reward scalarises the two objectives — ``AR - 2 * max(0, γ - PR)`` — and
policy gradients flow through the sampled log-probabilities with a moving
average baseline.  This matches the classic non-progressive RL-NAS setup the
paper compares against: complete schemes are sampled, evaluated and
reinforced; no intermediate information is reused.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..nn import Adam, Linear, Module, Parameter, Tensor
from ..nn import functional as F
from ..space.hyperparams import HP_GRID, METHOD_HPS
from ..space.scheme import CompressionScheme
from ..space.strategy import make_strategy
from ..core.search import SearchResult, SearchStrategy


class ControllerRNN(Module):
    """Vanilla RNN cell with per-decision softmax heads."""

    def __init__(self, method_labels: List[str], hidden: int = 32, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.method_labels = list(method_labels)
        self.hidden_size = hidden
        n_methods = len(self.method_labels)
        # token embeddings: one per method plus a start token
        self.token = Parameter(rng.normal(0, 0.1, size=(n_methods + 1, hidden)))
        self.w_x = Linear(hidden, hidden, rng=rng)
        self.w_h = Linear(hidden, hidden, rng=rng)
        self.stop_head = Linear(hidden, 2, rng=rng)
        self.method_head = Linear(hidden, n_methods, rng=rng)
        self.hp_heads: Dict[str, Linear] = {}
        for label in self.method_labels:
            for hp in METHOD_HPS[label]:
                if hp not in self.hp_heads:
                    head = Linear(hidden, len(HP_GRID[hp]), rng=rng)
                    self.hp_heads[hp] = head
                    self.add_module(f"hp_{hp}", head)

    def step(self, token_index: int, hidden: Tensor) -> Tensor:
        x = self.token[np.array([token_index])]
        return (self.w_x(x) + self.w_h(hidden)).tanh()


class RLSearch(SearchStrategy):
    """Non-progressive REINFORCE over complete schemes."""

    name = "RL"

    def __init__(self, *args, batch_size: int = 4, learning_rate: float = 5e-3, **kwargs):
        super().__init__(*args, **kwargs)
        self.controller = ControllerRNN(self.space.method_labels, seed=self.seed)
        self.optimizer = Adam(self.controller.parameters(), lr=learning_rate)
        self.batch_size = batch_size
        self._baseline = 0.0
        self._baseline_initialised = False

    # ------------------------------------------------------------------ #
    def _sample_scheme(self) -> Tuple[CompressionScheme, List[Tensor]]:
        """Sample one scheme, returning the log-probs of every decision."""
        hidden = Tensor(np.zeros((1, self.controller.hidden_size)))
        token = len(self.controller.method_labels)  # start token
        scheme = CompressionScheme()
        log_probs: List[Tensor] = []
        for position in range(self.max_length):
            hidden = self.controller.step(token, hidden)
            if position > 0:
                stop_logits = self.controller.stop_head(hidden)
                stop_probs = F.softmax(stop_logits, axis=-1)
                stop = int(self.rng.random() < stop_probs.data[0, 1])
                log_probs.append(F.log_softmax(stop_logits, axis=-1)[0, stop])
                if stop:
                    break
            method_logits = self.controller.method_head(hidden)
            probs = F.softmax(method_logits, axis=-1).data[0]
            method_index = int(self.rng.choice(len(probs), p=probs / probs.sum()))
            log_probs.append(F.log_softmax(method_logits, axis=-1)[0, method_index])
            label = self.controller.method_labels[method_index]

            hp: Dict[str, object] = {}
            for name in METHOD_HPS[label]:
                head = self.controller.hp_heads[name]
                logits = head(hidden)
                hp_probs = F.softmax(logits, axis=-1).data[0]
                value_index = int(self.rng.choice(len(hp_probs), p=hp_probs / hp_probs.sum()))
                log_probs.append(F.log_softmax(logits, axis=-1)[0, value_index])
                hp[name] = HP_GRID[name][value_index]

            strategy = self.space.by_identifier(make_strategy(label, hp).identifier)
            if scheme.total_param_step + strategy.param_step > 0.9:
                break
            scheme = scheme.extend(strategy)
            token = method_index
        return scheme, log_probs

    def _reward(self, result) -> float:
        return result.ar - 2.0 * max(0.0, self.gamma - result.pr)

    # ------------------------------------------------------------------ #
    def run(self) -> SearchResult:
        self.record()
        round_index = 0
        while self.budget_left() > 0:
            # Sample the whole controller batch first (the controller is
            # only updated after the batch, so sampling is independent of
            # the evaluations), then submit it through evaluate_many so an
            # engine can evaluate the batch in parallel.
            sampled: List[Tuple[CompressionScheme, List[Tensor]]] = []
            for _ in range(self.batch_size):
                scheme, log_probs = self._sample_scheme()
                if scheme.is_empty or not log_probs:
                    continue
                # Statically-infeasible samples are dropped for free — the
                # controller still consumed its decisions, but no evaluation
                # cost is charged and no gradient flows from the sample.
                if not self.feasible(scheme):
                    continue
                sampled.append((scheme, log_probs))
            if not sampled:
                break
            round_span = (
                self.tracer.start(
                    "search.round",
                    algorithm=self.name,
                    round=round_index,
                    batch=len(sampled),
                )
                if self.tracer.enabled
                else None
            )
            try:
                results = self.evaluator.evaluate_many([s for s, _ in sampled])
                batch: List[Tuple[List[Tensor], float]] = [
                    (log_probs, self._reward(result))
                    for (_, log_probs), result in zip(sampled, results)
                ]
                rewards = np.array([r for _, r in batch])
                if not self._baseline_initialised:
                    self._baseline = float(rewards.mean())
                    self._baseline_initialised = True
                # REINFORCE with moving-average baseline.
                loss = None
                for log_probs, reward in batch:
                    advantage = reward - self._baseline
                    total_logp = log_probs[0]
                    for lp in log_probs[1:]:
                        total_logp = total_logp + lp
                    term = total_logp * (-advantage)
                    loss = term if loss is None else loss + term
                loss = loss * (1.0 / len(batch))
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                self._baseline = 0.9 * self._baseline + 0.1 * float(rewards.mean())
                self.record()
                if round_span is not None:
                    round_span.set(mean_reward=float(rewards.mean()))
            finally:
                if round_span is not None:
                    self.tracer.finish(round_span)
            round_index += 1
        return self.finish()
