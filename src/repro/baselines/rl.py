"""RL baseline (§4.1): REINFORCE with a recurrent controller.

The controller is a small recurrent network built on :mod:`repro.nn`.  At
each position it consumes the embedding of the previous method, updates its
hidden state, and emits:

* a *continue/stop* head (schemes may be shorter than L);
* a *method* head over the six compression methods;
* one head per hyperparameter of the chosen method over its value grid.

The reward scalarises the two objectives — ``AR - 2 * max(0, γ - PR)`` — and
policy gradients flow through the sampled log-probabilities with a moving
average baseline.  This matches the classic non-progressive RL-NAS setup the
paper compares against: complete schemes are sampled, evaluated and
reinforced; no intermediate information is reused.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Tuple

import numpy as np

from ..nn import Adam, Linear, Module, Parameter, Tensor
from ..nn import functional as F
from ..space.hyperparams import HP_GRID, METHOD_HPS
from ..space.scheme import CompressionScheme
from ..space.strategy import make_strategy
from ..core.evaluator import EvaluationResult
from ..core.search import SearchResult, SearchStrategy
from ..core.solver import Solver, register_solver


class ControllerRNN(Module):
    """Vanilla RNN cell with per-decision softmax heads."""

    def __init__(self, method_labels: List[str], hidden: int = 32, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.method_labels = list(method_labels)
        self.hidden_size = hidden
        n_methods = len(self.method_labels)
        # token embeddings: one per method plus a start token
        self.token = Parameter(rng.normal(0, 0.1, size=(n_methods + 1, hidden)))
        self.w_x = Linear(hidden, hidden, rng=rng)
        self.w_h = Linear(hidden, hidden, rng=rng)
        self.stop_head = Linear(hidden, 2, rng=rng)
        self.method_head = Linear(hidden, n_methods, rng=rng)
        self.hp_heads: Dict[str, Linear] = {}
        for label in self.method_labels:
            for hp in METHOD_HPS[label]:
                if hp not in self.hp_heads:
                    head = Linear(hidden, len(HP_GRID[hp]), rng=rng)
                    self.hp_heads[hp] = head
                    self.add_module(f"hp_{hp}", head)

    def step(self, token_index: int, hidden: Tensor) -> Tensor:
        x = self.token[np.array([token_index])]
        return (self.w_x(x) + self.w_h(hidden)).tanh()


@register_solver("rl", label="RL")
class RLSolver(Solver):
    """Non-progressive REINFORCE over complete schemes.

    The controller is only updated after each batch, so sampling the whole
    batch first is independent of the evaluations and an engine can fan the
    batch out across workers.
    """

    def __init__(
        self,
        strategy: SearchStrategy,
        batch_size: int = 4,
        learning_rate: float = 5e-3,
    ):
        super().__init__(strategy)
        self.controller = ControllerRNN(self.space.method_labels, seed=self.seed)
        self.optimizer = Adam(self.controller.parameters(), lr=learning_rate)
        self.batch_size = batch_size
        self._baseline = 0.0
        self._baseline_initialised = False
        self._pending: List[Tuple[CompressionScheme, List[Tensor]]] = []

    # ------------------------------------------------------------------ #
    def _sample_scheme(self) -> Tuple[CompressionScheme, List[Tensor]]:
        """Sample one scheme, returning the log-probs of every decision."""
        hidden = Tensor(np.zeros((1, self.controller.hidden_size)))
        token = len(self.controller.method_labels)  # start token
        scheme = CompressionScheme()
        log_probs: List[Tensor] = []
        for position in range(self.max_length):
            hidden = self.controller.step(token, hidden)
            if position > 0:
                stop_logits = self.controller.stop_head(hidden)
                stop_probs = F.softmax(stop_logits, axis=-1)
                stop = int(self.rng.random() < stop_probs.data[0, 1])
                log_probs.append(F.log_softmax(stop_logits, axis=-1)[0, stop])
                if stop:
                    break
            method_logits = self.controller.method_head(hidden)
            probs = F.softmax(method_logits, axis=-1).data[0]
            method_index = int(self.rng.choice(len(probs), p=probs / probs.sum()))
            log_probs.append(F.log_softmax(method_logits, axis=-1)[0, method_index])
            label = self.controller.method_labels[method_index]

            hp: Dict[str, object] = {}
            for name in METHOD_HPS[label]:
                head = self.controller.hp_heads[name]
                logits = head(hidden)
                hp_probs = F.softmax(logits, axis=-1).data[0]
                value_index = int(self.rng.choice(len(hp_probs), p=hp_probs / hp_probs.sum()))
                log_probs.append(F.log_softmax(logits, axis=-1)[0, value_index])
                hp[name] = HP_GRID[name][value_index]

            strategy = self.space.by_identifier(make_strategy(label, hp).identifier)
            if scheme.total_param_step + strategy.param_step > 0.9:
                break
            scheme = scheme.extend(strategy)
            token = method_index
        return scheme, log_probs

    def _reward(self, result: EvaluationResult) -> float:
        return self.scalar_reward(result)

    # ------------------------------------------------------------------ #
    def propose(self, state: SearchStrategy) -> List[CompressionScheme]:
        sampled: List[Tuple[CompressionScheme, List[Tensor]]] = []
        for _ in range(self.batch_size):
            scheme, log_probs = self._sample_scheme()
            if scheme.is_empty or not log_probs:
                continue
            sampled.append((scheme, log_probs))
        self._pending = sampled
        return [scheme for scheme, _ in sampled]

    def observe(self, results: List[EvaluationResult]) -> None:
        # Statically-infeasible samples were dropped by the driver for free —
        # the controller still consumed its decisions, but no evaluation cost
        # was charged and no gradient flows from the sample.
        by_id = {r.scheme.identifier: r for r in results}
        batch: List[Tuple[List[Tensor], float]] = [
            (log_probs, self._reward(by_id[scheme.identifier]))
            for scheme, log_probs in self._pending
            if scheme.identifier in by_id
        ]
        if not batch:
            return
        rewards = np.array([r for _, r in batch])
        if not self._baseline_initialised:
            self._baseline = float(rewards.mean())
            self._baseline_initialised = True
        # REINFORCE with moving-average baseline.
        loss = None
        for log_probs, reward in batch:
            advantage = reward - self._baseline
            total_logp = log_probs[0]
            for lp in log_probs[1:]:
                total_logp = total_logp + lp
            term = total_logp * (-advantage)
            loss = term if loss is None else loss + term
        loss = loss * (1.0 / len(batch))
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        self._baseline = 0.9 * self._baseline + 0.1 * float(rewards.mean())
        self._round_attrs = {"mean_reward": float(rewards.mean())}


class RLSearch(SearchStrategy):
    """Deprecated facade — use ``get_solver("rl")`` / ``run_solver``."""

    name = "RL"

    def __init__(self, *args, batch_size: int = 4, learning_rate: float = 5e-3, **kwargs):
        warnings.warn(
            "RLSearch is deprecated; use repro.core.solver.run_solver"
            "('rl', evaluator, space, ..., batch_size=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)
        self._solver = RLSolver(
            self, batch_size=batch_size, learning_rate=learning_rate
        )

    def run(self) -> SearchResult:
        return self._solver.run()

    def __getattr__(self, item):
        solver = self.__dict__.get("_solver")
        if solver is None:
            raise AttributeError(item)
        return getattr(solver, item)
