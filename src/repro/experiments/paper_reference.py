"""The paper's reported numbers, as data.

Table 2 and Table 3 of the paper transcribed verbatim so harness outputs can
be diffed against them programmatically — :func:`compare_table2` renders a
side-by-side paper-vs-measured report used by the benchmarks and
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .table2 import Table2Result

#: Table 2 rows: (experiment, block, algorithm) ->
#: (params_m, pr_pct, flops_g, fr_pct, acc_pct, inc_pct)
PAPER_TABLE2: Dict[Tuple[str, str, str], Tuple[float, float, float, float, float, float]] = {
    ("Exp1", "base", "baseline"): (0.90, 0.0, 0.27, 0.0, 91.04, 0.0),
    ("Exp1", "~40", "LMA"): (0.53, 41.74, 0.15, 42.93, 79.61, -12.56),
    ("Exp1", "~40", "LeGR"): (0.54, 40.02, 0.20, 25.76, 90.69, -0.38),
    ("Exp1", "~40", "NS"): (0.54, 40.02, 0.12, 55.68, 89.19, -2.03),
    ("Exp1", "~40", "SFP"): (0.55, 38.52, 0.17, 36.54, 88.24, -3.07),
    ("Exp1", "~40", "HOS"): (0.53, 40.97, 0.15, 42.55, 90.18, -0.95),
    ("Exp1", "~40", "LFB"): (0.54, 40.19, 0.14, 46.12, 89.99, -1.15),
    ("Exp1", "~40", "Evolution"): (0.45, 49.87, 0.14, 48.83, 91.77, 0.80),
    ("Exp1", "~40", "AutoMC"): (0.55, 39.17, 0.18, 31.61, 92.61, 1.73),
    ("Exp1", "~40", "RL"): (0.20, 77.69, 0.07, 75.09, 87.23, -4.18),
    ("Exp1", "~40", "Random"): (0.22, 75.95, 0.06, 77.18, 79.50, -12.43),
    ("Exp1", "~70", "LMA"): (0.27, 70.40, 0.08, 72.09, 75.25, -17.35),
    ("Exp1", "~70", "LeGR"): (0.27, 70.03, 0.16, 41.56, 85.88, -5.67),
    ("Exp1", "~70", "NS"): (0.27, 70.05, 0.06, 78.77, 85.73, -5.83),
    ("Exp1", "~70", "SFP"): (0.29, 68.07, 0.09, 67.24, 86.94, -4.51),
    ("Exp1", "~70", "HOS"): (0.28, 68.88, 0.10, 63.31, 89.28, -1.93),
    ("Exp1", "~70", "LFB"): (0.27, 70.03, 0.08, 71.96, 90.35, -0.76),
    ("Exp1", "~70", "Evolution"): (0.44, 51.47, 0.10, 63.66, 89.21, -2.01),
    ("Exp1", "~70", "AutoMC"): (0.28, 68.43, 0.10, 62.44, 92.18, 1.25),
    ("Exp1", "~70", "RL"): (0.44, 51.52, 0.10, 63.15, 88.30, -3.01),
    ("Exp1", "~70", "Random"): (0.43, 51.98, 0.13, 52.53, 88.36, -2.94),
    ("Exp2", "base", "baseline"): (14.77, 0.0, 0.63, 0.0, 70.03, 0.0),
    ("Exp2", "~40", "LMA"): (8.85, 40.11, 0.38, 40.26, 42.11, -39.87),
    ("Exp2", "~40", "LeGR"): (8.87, 39.99, 0.56, 11.55, 69.97, -0.08),
    ("Exp2", "~40", "NS"): (8.87, 40.00, 0.42, 33.71, 70.01, -0.03),
    ("Exp2", "~40", "SFP"): (8.90, 39.73, 0.38, 39.31, 69.62, -0.58),
    ("Exp2", "~40", "HOS"): (8.87, 39.99, 0.38, 39.51, 64.34, -8.12),
    ("Exp2", "~40", "LFB"): (9.40, 36.21, 0.04, 93.00, 60.94, -13.04),
    ("Exp2", "~40", "Evolution"): (8.11, 45.11, 0.36, 42.54, 69.03, -1.43),
    ("Exp2", "~40", "AutoMC"): (8.18, 44.67, 0.42, 33.23, 70.73, 0.99),
    ("Exp2", "~40", "RL"): (8.11, 45.11, 0.44, 29.94, 63.23, -9.70),
    ("Exp2", "~40", "Random"): (8.10, 45.15, 0.33, 47.80, 68.45, -2.25),
    ("Exp2", "~70", "LMA"): (4.44, 69.98, 0.19, 69.90, 41.51, -40.73),
    ("Exp2", "~70", "LeGR"): (4.43, 69.99, 0.45, 28.35, 69.06, -1.38),
    ("Exp2", "~70", "NS"): (4.43, 70.01, 0.27, 56.77, 68.98, -1.50),
    ("Exp2", "~70", "SFP"): (4.47, 69.72, 0.19, 69.22, 68.15, -2.68),
    ("Exp2", "~70", "HOS"): (4.43, 70.05, 0.22, 64.29, 62.66, -10.52),
    ("Exp2", "~70", "LFB"): (6.27, 57.44, 0.03, 95.20, 57.88, -17.35),
    ("Exp2", "~70", "Evolution"): (4.14, 72.01, 0.22, 64.30, 60.47, -13.64),
    ("Exp2", "~70", "AutoMC"): (4.19, 71.67, 0.32, 49.31, 70.10, 0.11),
    ("Exp2", "~70", "RL"): (4.20, 71.60, 0.19, 69.08, 51.20, -27.13),
    ("Exp2", "~70", "Random"): (5.03, 65.94, 0.28, 55.37, 51.76, -25.87),
}

#: Table 3 rows: (algorithm, model) -> (pr_pct, fr_pct, acc_pct)
PAPER_TABLE3: Dict[Tuple[str, str], Tuple[float, float, float]] = {
    ("LMA", "resnet20"): (41.74, 42.84, 77.61),
    ("LMA", "resnet56"): (41.74, 42.93, 79.61),
    ("LMA", "resnet164"): (41.74, 42.96, 58.21),
    ("LMA", "vgg13"): (40.07, 40.29, 47.16),
    ("LMA", "vgg16"): (40.11, 40.26, 42.11),
    ("LMA", "vgg19"): (40.12, 40.25, 40.02),
    ("LeGR", "resnet20"): (39.86, 21.20, 89.20),
    ("LeGR", "resnet56"): (40.02, 25.76, 90.69),
    ("LeGR", "resnet164"): (39.99, 33.11, 83.93),
    ("LeGR", "vgg13"): (40.00, 12.15, 70.80),
    ("LeGR", "vgg16"): (39.99, 11.55, 69.97),
    ("LeGR", "vgg19"): (39.99, 11.66, 69.64),
    ("NS", "resnet20"): (40.05, 44.12, 88.78),
    ("NS", "resnet56"): (40.02, 55.68, 89.19),
    ("NS", "resnet164"): (39.98, 51.13, 83.84),
    ("NS", "vgg13"): (40.01, 31.19, 70.48),
    ("NS", "vgg16"): (40.00, 33.71, 70.01),
    ("NS", "vgg19"): (40.00, 41.34, 69.34),
    ("SFP", "resnet20"): (38.30, 35.49, 87.81),
    ("SFP", "resnet56"): (38.52, 36.54, 88.24),
    ("SFP", "resnet164"): (38.58, 36.88, 82.06),
    ("SFP", "vgg13"): (39.68, 39.16, 70.69),
    ("SFP", "vgg16"): (39.73, 39.31, 69.62),
    ("SFP", "vgg19"): (39.76, 39.40, 69.42),
    ("HOS", "resnet20"): (40.12, 39.66, 88.81),
    ("HOS", "resnet56"): (40.97, 42.55, 90.18),
    ("HOS", "resnet164"): (41.16, 43.50, 84.12),
    ("HOS", "vgg13"): (40.06, 39.36, 64.13),
    ("HOS", "vgg16"): (39.99, 39.51, 64.34),
    ("HOS", "vgg19"): (40.01, 39.13, 63.37),
    ("LFB", "resnet20"): (40.38, 45.80, 91.57),
    ("LFB", "resnet56"): (40.19, 46.12, 89.99),
    ("LFB", "resnet164"): (40.09, 76.76, 24.17),
    ("LFB", "vgg13"): (37.82, 92.92, 63.04),
    ("LFB", "vgg16"): (36.21, 93.00, 60.94),
    ("LFB", "vgg19"): (35.46, 93.05, 56.27),
    ("Evolution", "resnet20"): (49.50, 46.66, 89.95),
    ("Evolution", "resnet56"): (49.87, 48.83, 91.77),
    ("Evolution", "resnet164"): (49.95, 49.44, 87.69),
    ("Evolution", "vgg13"): (45.15, 35.58, 62.95),
    ("Evolution", "vgg16"): (45.11, 42.54, 69.03),
    ("Evolution", "vgg19"): (45.19, 36.64, 63.30),
    ("Random", "resnet20"): (75.94, 74.44, 78.38),
    ("Random", "resnet56"): (75.95, 77.18, 79.50),
    ("Random", "resnet164"): (75.91, 78.08, 59.37),
    ("Random", "vgg13"): (45.18, 24.04, 62.02),
    ("Random", "vgg16"): (45.15, 47.80, 68.45),
    ("Random", "vgg19"): (45.11, 33.06, 68.81),
    ("RL", "resnet20"): (77.87, 69.05, 84.28),
    ("RL", "resnet56"): (77.69, 75.09, 87.23),
    ("RL", "resnet164"): (77.23, 83.27, 74.21),
    ("RL", "vgg13"): (45.20, 26.00, 62.36),
    ("RL", "vgg16"): (45.11, 29.94, 63.23),
    ("RL", "vgg19"): (45.14, 38.78, 68.31),
    ("AutoMC", "resnet20"): (38.73, 30.00, 91.42),
    ("AutoMC", "resnet56"): (39.17, 31.61, 92.61),
    ("AutoMC", "resnet164"): (39.30, 40.76, 88.50),
    ("AutoMC", "vgg13"): (44.60, 34.43, 71.77),
    ("AutoMC", "vgg16"): (44.67, 33.23, 70.73),
    ("AutoMC", "vgg19"): (44.68, 35.09, 70.56),
}


@dataclass
class ComparisonRow:
    experiment: str
    block: str
    algorithm: str
    paper_acc: float
    measured_acc: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        if self.measured_acc is None:
            return None
        return self.measured_acc - self.paper_acc


def compare_table2(table2: Table2Result) -> List[ComparisonRow]:
    """Per-row paper-vs-measured accuracy deltas for Table 2."""
    rows = []
    for (exp, block, algorithm), reference in PAPER_TABLE2.items():
        if block == "base":
            continue
        measured = table2.lookup(exp, block, algorithm)
        rows.append(
            ComparisonRow(
                experiment=exp,
                block=block,
                algorithm=algorithm,
                paper_acc=reference[4],
                measured_acc=100 * measured.accuracy if measured else None,
            )
        )
    return rows


def format_comparison(rows: List[ComparisonRow]) -> str:
    """Readable paper-vs-measured accuracy report."""
    lines = ["Paper vs measured accuracy (%, Table 2 rows)"]
    lines.append(f"{'exp':<5s}{'block':<7s}{'algorithm':<11s}{'paper':>8s}{'ours':>8s}{'delta':>8s}")
    for row in rows:
        ours = f"{row.measured_acc:8.2f}" if row.measured_acc is not None else "      --"
        delta = f"{row.delta:+8.2f}" if row.delta is not None else "      --"
        lines.append(
            f"{row.experiment:<5s}{row.block:<7s}{row.algorithm:<11s}"
            f"{row.paper_acc:8.2f}{ours}{delta}"
        )
    return "\n".join(lines)
