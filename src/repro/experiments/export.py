"""Exporting experiment results as JSON artifacts.

Benchmarks write both human-readable text (``benchmarks/out/*.txt``) and
machine-readable JSON via these helpers, so downstream analysis does not
have to re-parse formatted tables.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from ..core.evaluator import EvaluationResult
from ..core.search import SearchResult


def result_to_dict(result: Optional[EvaluationResult]) -> Optional[Dict]:
    """JSON-serialisable summary of one scheme evaluation."""
    if result is None:
        return None
    return {
        "scheme": result.scheme.identifier,
        "length": result.scheme.length,
        "params": int(result.params),
        "flops": int(result.flops),
        "accuracy": float(result.accuracy),
        "pr": float(result.pr),
        "fr": float(result.fr),
        "ar": float(result.ar),
    }


def search_to_dict(search: SearchResult) -> Dict:
    """JSON-serialisable summary of one search run."""
    return {
        "algorithm": search.algorithm,
        "gamma": search.gamma,
        "evaluations": search.evaluations,
        "total_cost": search.total_cost,
        "best": result_to_dict(search.best),
        "pareto": [result_to_dict(r) for r in search.pareto],
        "trajectory": [
            {
                "cost": p.cost,
                "evaluations": p.evaluations,
                "best_accuracy": p.best_accuracy,
                "hypervolume": p.hypervolume,
            }
            for p in search.trajectory
        ],
    }


def table2_to_dict(table2) -> Dict:
    """JSON-serialisable Table 2 (rows + baselines)."""
    return {
        "baselines": {
            exp: result_to_dict(result) for exp, result in table2.base.items()
        },
        "rows": [
            {
                "experiment": row.experiment,
                "block": row.block,
                "algorithm": row.algorithm,
                "result": result_to_dict(row.result),
            }
            for row in table2.rows
        ],
    }


def table3_to_dict(table3) -> Dict:
    """JSON-serialisable Table 3 (cells)."""
    return {
        "cells": [
            {
                "algorithm": cell.algorithm,
                "model": cell.model,
                "experiment": cell.experiment,
                "result": result_to_dict(cell.result),
            }
            for cell in table3.cells
        ]
    }


def write_json(payload: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
