"""One-shot reproduction runner: every table and figure from one set of runs.

``run_full_report`` shares the expensive searches across the harnesses
(Table 2's search runs feed Table 3, Figure 4 and Figure 6) and writes all
text and JSON artifacts into a directory.  This powers
``python -m repro report``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.search import SearchResult
from .common import EXPERIMENTS, ExperimentConfig
from .export import table2_to_dict, table3_to_dict, write_json
from .figure4 import Figure4Result, run_figure4
from .figure5 import Figure5Result, run_figure5
from .figure6 import Figure6Result, run_figure6
from .paper_reference import compare_table2, format_comparison
from .table2 import Table2Result, run_table2
from .table3 import Table3Result, run_table3


@dataclass
class FullReport:
    """All regenerated artifacts from one reproduction run."""

    table2: Table2Result
    table3: Table3Result
    figure4: Figure4Result
    figure6: Figure6Result
    figure5: Optional[Figure5Result] = None
    artifacts: Dict[str, str] = field(default_factory=dict)

    def summary(self) -> str:
        lines = ["Full reproduction report"]
        for name, path in sorted(self.artifacts.items()):
            lines.append(f"  {name:<22s} -> {path}")
        return "\n".join(lines)


def format_attribution(search_results: Dict[str, Dict[str, SearchResult]]) -> str:
    """Timing / cost attribution across the shared search runs.

    One row per (experiment, algorithm): wall-clock seconds, evaluation
    count, simulated GPU-hours, and — when the run went through an
    :class:`~repro.core.engine.EvaluationEngine` — the cache-hit split.
    Runs with a static budget also report the candidates the cost model
    pruned for free and its predicted-vs-measured drift.
    """
    lines = [
        "Search attribution (wall-clock vs simulated cost)",
        "",
        f"{'experiment':<8s} {'algorithm':<10s} {'wall[s]':>9s} {'evals':>7s} "
        f"{'sim[h]':>8s} {'sec/eval':>9s} {'pruned':>7s} {'dP%':>6s} {'dF%':>6s} "
        f"{'dA%':>6s}  engine",
        "-" * 79,
    ]
    any_budget = False
    for exp_name in sorted(search_results):
        for algo in sorted(search_results[exp_name]):
            result = search_results[exp_name][algo]
            per_eval = result.wall_seconds / max(result.evaluations, 1)
            stats = result.engine_stats or {}
            if "workers" in stats:
                engine = (
                    f"{stats.get('workers', 0)}w "
                    f"{stats.get('cache_hits', 0)} cached / "
                    f"{stats.get('fresh_evaluations', 0)} fresh"
                )
            else:
                engine = "-"
            if "budget_pruned" in stats:
                any_budget = True
                pruned = str(
                    stats.get("budget_pruned", 0)
                    + stats.get("budget_filtered", 0)
                    + stats.get("budget_rejects", 0)
                )
                drift_p = f"{stats.get('drift_params_pct', 0.0):.2f}"
                drift_f = f"{stats.get('drift_flops_pct', 0.0):.2f}"
                drift_a = (
                    f"{stats.get('drift_act_mem_pct', 0.0):.2f}"
                    if stats.get("act_mem_evals")
                    else "-"
                )
            else:
                pruned, drift_p, drift_f, drift_a = "-", "-", "-", "-"
            lines.append(
                f"{exp_name:<8s} {algo:<10s} {result.wall_seconds:>9.2f} "
                f"{result.evaluations:>7d} {result.total_cost:>8.2f} "
                f"{per_eval:>9.4f} {pruned:>7s} {drift_p:>6s} {drift_f:>6s} "
                f"{drift_a:>6s}  {engine}"
            )
    lines.append("")
    lines.append(
        "sec/eval = wall-clock per evaluated scheme; sim[h] is the simulated "
        "GPU-hour budget actually charged (Evaluator.total_cost)."
    )
    if any_budget:
        lines.append(
            "pruned = candidates eliminated by the static cost model at zero "
            "cost; dP%/dF% = mean absolute predicted-vs-measured drift of the "
            "cost model on evaluated schemes (params / FLOPs); dA% = drift of "
            "the predicted activation memory vs the measured kernel-workspace "
            "peak during the latency probe."
        )
    return "\n".join(lines)


def run_full_report(
    config: Optional[ExperimentConfig] = None,
    output_dir: str = "reports",
    include_ablations: bool = False,
) -> FullReport:
    """Regenerate Tables 2-3 and Figures 4/6 (plus 5 when requested).

    Search runs are shared: the four algorithms run once per experiment and
    every downstream harness reads those results.  Ablations (Figure 5) are
    opt-in because they add ten more searches.
    """
    config = config or ExperimentConfig()
    os.makedirs(output_dir, exist_ok=True)

    table2 = run_table2(config)
    table3 = run_table3(config, table2=table2)
    figure4 = run_figure4(config, searches=table2.search_results)
    figure6 = run_figure6(
        config,
        searches={exp: table2.search_results[exp]["AutoMC"] for exp in EXPERIMENTS},
    )
    figure5 = run_figure5(config) if include_ablations else None

    report = FullReport(
        table2=table2, table3=table3, figure4=figure4, figure6=figure6,
        figure5=figure5,
    )

    def emit(name: str, text: str) -> None:
        path = os.path.join(output_dir, name)
        with open(path, "w") as handle:
            handle.write(text + "\n")
        report.artifacts[name] = path

    emit("table2.txt", table2.format())
    emit("table2_vs_paper.txt", format_comparison(compare_table2(table2)))
    emit("table3.txt", table3.format())
    emit("figure4.txt", figure4.format())
    emit("figure6.txt", figure6.format())
    emit("attribution.txt", format_attribution(table2.search_results))
    if figure5 is not None:
        emit("figure5.txt", figure5.format())

    write_json(table2_to_dict(table2), os.path.join(output_dir, "table2.json"))
    report.artifacts["table2.json"] = os.path.join(output_dir, "table2.json")
    write_json(table3_to_dict(table3), os.path.join(output_dir, "table3.json"))
    report.artifacts["table3.json"] = os.path.join(output_dir, "table3.json")
    return report
