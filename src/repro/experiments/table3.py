"""Table 3 reproduction — the §4.4 transfer study.

Schemes searched on ResNet-56/CIFAR-10 are re-applied, unchanged, to
ResNet-20 and ResNet-164; schemes from VGG-16/CIFAR-100 go to VGG-13 and
VGG-19.  Human methods are grid-searched directly on every target model at
the 40% target.  Each cell reports PR / FR / Acc, like the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..baselines.grid import run_all_human_methods
from ..core.evaluator import EvaluationResult
from ..space.scheme import CompressionScheme
from .common import (
    EXPERIMENTS,
    TRANSFER_MODELS,
    ExperimentConfig,
    pick_block,
    run_algorithm,
    transfer_evaluator,
)
from .table2 import AUTOML_ALGORITHMS, HUMAN_METHODS, HUMAN_NAMES, Table2Result


@dataclass
class Table3Cell:
    algorithm: str
    model: str
    experiment: str
    result: Optional[EvaluationResult]

    def format(self) -> str:
        if self.result is None:
            return "      --       "
        r = self.result
        return f"{100*r.pr:5.2f}/{100*r.fr:5.2f}/{100*r.accuracy:5.2f}"


@dataclass
class Table3Result:
    cells: List[Table3Cell] = field(default_factory=list)

    def lookup(self, algorithm: str, model: str) -> Optional[EvaluationResult]:
        for cell in self.cells:
            if (cell.algorithm, cell.model) == (algorithm, model):
                return cell.result
        return None

    def format(self) -> str:
        models = TRANSFER_MODELS["Exp1"] + TRANSFER_MODELS["Exp2"]
        algorithms = [HUMAN_NAMES[m] for m in HUMAN_METHODS] + list(AUTOML_ALGORITHMS)
        lines = [
            "Table 3 — transfer study, target PR 40% (PR% / FR% / Acc%)",
            f"{'Algorithm':<12s}" + "".join(f"{m:>20s}" for m in models),
        ]
        for algorithm in algorithms:
            row = f"{algorithm:<12s}"
            for model in models:
                found = next(
                    (c for c in self.cells if c.algorithm == algorithm and c.model == model),
                    None,
                )
                row += f"{found.format() if found else '--':>20s}"
            lines.append(row)
        return "\n".join(lines)


def run_table3(
    config: Optional[ExperimentConfig] = None,
    table2: Optional[Table2Result] = None,
) -> Table3Result:
    """Regenerate Table 3, reusing Table 2's search runs when provided."""
    config = config or ExperimentConfig()
    table = Table3Result()

    for exp_name in EXPERIMENTS:
        # Headline scheme per AutoML algorithm on the source model.
        schemes: Dict[str, Optional[CompressionScheme]] = {}
        for algorithm in AUTOML_ALGORITHMS:
            if table2 is not None and algorithm in table2.search_results.get(exp_name, {}):
                search = table2.search_results[exp_name][algorithm]
            else:
                search = run_algorithm(algorithm, exp_name, config)
            chosen = pick_block(search.all_results, 0.30, 0.55) or pick_block(
                search.all_results, 0.30, 0.95
            )
            schemes[algorithm] = chosen.scheme if chosen else None

        for model_name in TRANSFER_MODELS[exp_name]:
            evaluator = transfer_evaluator(exp_name, model_name, seed=config.seed)
            # Human methods: grid-searched directly on the target model.
            for outcome in run_all_human_methods(
                evaluator,
                0.4,
                method_labels=HUMAN_METHODS,
                max_evaluations_per_method=config.grid_evals_per_method,
            ):
                table.cells.append(
                    Table3Cell(
                        algorithm=HUMAN_NAMES[outcome.method_label],
                        model=model_name,
                        experiment=exp_name,
                        result=outcome.best,
                    )
                )
            # AutoML schemes: transferred verbatim.
            for algorithm, scheme in schemes.items():
                result = evaluator.evaluate(scheme) if scheme is not None else None
                table.cells.append(
                    Table3Cell(
                        algorithm=algorithm,
                        model=model_name,
                        experiment=exp_name,
                        result=result,
                    )
                )
    return table
