"""Figure 5 reproduction — ablation study (§4.5).

Runs AutoMC and its four variants (AutoMC-KG, AutoMC-NNexp,
AutoMC-MultipleSource, AutoMC-ProgressiveSearch) on Exp1 and Exp2 under the
shared budget and reports each variant's trajectory and final Pareto front.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.ablation import VARIANTS, build_variant
from ..core.search import SearchResult
from .common import EXPERIMENTS, ExperimentConfig, make_evaluator
from .plotting import ascii_scatter


@dataclass
class Figure5Series:
    experiment: str
    variant: str
    best_accuracy: float       # best feasible accuracy at the end (fraction)
    hypervolume: float
    front: List[Tuple[float, float]]  # (PR%, Acc%)


@dataclass
class Figure5Result:
    series: List[Figure5Series] = field(default_factory=list)
    searches: Dict[str, Dict[str, SearchResult]] = field(default_factory=dict)

    def of(self, experiment: str, variant: str) -> Optional[Figure5Series]:
        for s in self.series:
            if (s.experiment, s.variant) == (experiment, variant):
                return s
        return None

    def format(self) -> str:
        lines = ["Figure 5 — ablation study Pareto results"]
        for exp_name in EXPERIMENTS:
            lines.append("")
            lines.append(f"== {exp_name} ==")
            lines.append(f"{'variant':<26s}{'best acc(%)':>12s}{'hypervolume':>13s}{'front':>7s}")
            for s in self.series:
                if s.experiment != exp_name:
                    continue
                lines.append(
                    f"{s.variant:<26s}{100 * s.best_accuracy:>12.2f}"
                    f"{s.hypervolume:>13.4f}{len(s.front):>7d}"
                )
            front_series = {
                s.variant: s.front for s in self.series if s.experiment == exp_name
            }
            lines.append("")
            lines.append(ascii_scatter(front_series, x_label="PR (%)", y_label="Acc (%)"))
        return "\n".join(lines)


def run_figure5(config: Optional[ExperimentConfig] = None) -> Figure5Result:
    """Regenerate Figure 5's data (5 variants x 2 experiments)."""
    config = config or ExperimentConfig()
    figure = Figure5Result()
    for exp_name, (model_name, dataset_name, task) in EXPERIMENTS.items():
        figure.searches[exp_name] = {}
        for variant in VARIANTS:
            evaluator = make_evaluator(model_name, dataset_name, task, seed=config.seed)
            searcher = build_variant(
                variant,
                evaluator,
                gamma=0.3,
                budget_hours=config.budget_hours,
                seed=config.seed,
                embedding_rounds=config.embedding_rounds,
                progressive_config=config.progressive_config(),
            )
            search = searcher.run()
            figure.searches[exp_name][variant] = search
            last = search.trajectory[-1] if search.trajectory else None
            figure.series.append(
                Figure5Series(
                    experiment=exp_name,
                    variant=variant,
                    best_accuracy=last.best_accuracy if last else 0.0,
                    hypervolume=last.hypervolume if last else 0.0,
                    front=[(100 * r.pr, 100 * r.accuracy) for r in search.front],
                )
            )
    return figure
