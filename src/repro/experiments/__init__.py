"""Experiment harnesses regenerating every table and figure of §4."""

from .common import (
    EXPERIMENTS,
    TRANSFER_MODELS,
    ExperimentConfig,
    make_evaluator,
    pick_block,
    run_algorithm,
    transfer_evaluator,
)
from .figure4 import Figure4Result, Figure4Series, run_figure4
from .paper_reference import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    ComparisonRow,
    compare_table2,
    format_comparison,
)
from .figure5 import Figure5Result, Figure5Series, run_figure5
from .figure6 import Figure6Result, Figure6Scheme, run_figure6
from .table2 import Table2Result, Table2Row, run_table2
from .table3 import Table3Cell, Table3Result, run_table3

__all__ = [
    "ComparisonRow",
    "EXPERIMENTS",
    "ExperimentConfig",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "compare_table2",
    "format_comparison",
    "Figure4Result",
    "Figure4Series",
    "Figure5Result",
    "Figure5Series",
    "Figure6Result",
    "Figure6Scheme",
    "TRANSFER_MODELS",
    "Table2Result",
    "Table2Row",
    "Table3Cell",
    "Table3Result",
    "make_evaluator",
    "pick_block",
    "run_algorithm",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_table2",
    "run_table3",
    "transfer_evaluator",
]
