"""Figure 6 reproduction — the compression schemes AutoMC found.

The paper's Figure 6 lists the best scheme per experiment as a strategy
sequence with settings.  This harness runs (or reuses) the AutoMC searches
and pretty-prints each experiment's Pareto-best scheme step by step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.evaluator import EvaluationResult
from ..core.search import SearchResult
from .common import EXPERIMENTS, ExperimentConfig, run_algorithm


@dataclass
class Figure6Scheme:
    experiment: str
    result: EvaluationResult

    def format(self) -> str:
        r = self.result
        lines = [
            f"{self.experiment}: PR {100 * r.pr:.2f}%  FR {100 * r.fr:.2f}%  "
            f"Acc {100 * r.accuracy:.2f}%"
        ]
        for i, strategy in enumerate(r.scheme.strategies, 1):
            hp = ", ".join(f"{k}={v}" for k, v in strategy.hp_items)
            lines.append(f"  step {i}: {strategy.method.name:<5s} ({hp})")
        return "\n".join(lines)


@dataclass
class Figure6Result:
    schemes: List[Figure6Scheme] = field(default_factory=list)
    searches: Dict[str, SearchResult] = field(default_factory=dict)

    def format(self) -> str:
        out = ["Figure 6 — best compression schemes searched by AutoMC", ""]
        for scheme in self.schemes:
            out.append(scheme.format())
            out.append("")
        return "\n".join(out)


def run_figure6(
    config: Optional[ExperimentConfig] = None,
    searches: Optional[Dict[str, SearchResult]] = None,
) -> Figure6Result:
    """Regenerate Figure 6 (AutoMC's best schemes on Exp1 and Exp2)."""
    config = config or ExperimentConfig()
    figure = Figure6Result()
    for exp_name in EXPERIMENTS:
        if searches is not None and exp_name in searches:
            search = searches[exp_name]
        else:
            search = run_algorithm("AutoMC", exp_name, config)
        figure.searches[exp_name] = search
        best = search.best
        if best is not None:
            figure.schemes.append(Figure6Scheme(experiment=exp_name, result=best))
    return figure
