"""Shared plumbing for the Table/Figure reproduction harnesses.

Each experiment gets a fresh :class:`SurrogateEvaluator` per algorithm so
simulated budgets are independent (the paper "controls the running time of
each AutoML algorithm to be the same").  ``ExperimentConfig`` concentrates
the knobs benchmarks use to trade fidelity for runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.costmodel import Budget
from ..core.config import EvaluatorConfig
from ..core.engine import EvaluationEngine
from ..core.evaluator import EvaluationResult, SurrogateEvaluator
from ..core.progressive import ProgressiveConfig
from ..core.search import SearchResult
from ..core.solver import get_solver, make_solver
from ..obs import RunJournal, Tracer, attach_tracer
from ..data.tasks import EXP1, EXP2, CompressionTask, transfer_task
from ..knowledge.embedding import EmbeddingConfig, StrategyEmbeddings, learn_embeddings
from ..models import create_model
from ..space.strategy import StrategySpace


@dataclass
class ExperimentConfig:
    """Runtime/fidelity knobs shared by all experiment harnesses."""

    budget_hours: float = 30.0        # simulated GPU-hours per algorithm
    grid_evals_per_method: int = 48   # human-baseline grid-search cap
    embedding_rounds: int = 2
    transr_epochs_per_round: int = 2
    nn_exp_epochs_per_round: int = 15
    sample_size: int = 8
    evals_per_round: int = 8
    candidate_subsample: int = 4230   # score the full strategy space
    seed: int = 0
    workers: int = 0                  # evaluation worker processes (0 = serial)
    cache_dir: Optional[str] = None   # persistent cross-run result cache
    snapshot_dir: Optional[str] = None  # shared prefix-model snapshot store
    snapshot_budget_mb: Optional[float] = None  # store size cap (default 256)
    journal: Optional[str] = None     # JSONL run-journal path (repro.obs)
    # Solver selection (repro.core.solver): None keeps the algorithm name
    # passed to run_algorithm; a registry name overrides it.  solver_kwargs
    # are forwarded to the solver constructor verbatim.
    solver: Optional[str] = None
    solver_kwargs: Optional[Dict[str, object]] = None
    # Static budget constraints (repro.analysis.costmodel) — candidates the
    # abstract interpreter proves over budget are rejected before any
    # evaluation cost is charged.
    max_params: Optional[int] = None      # S001: post-scheme parameter cap
    max_flops: Optional[int] = None       # S002: post-scheme FLOPs cap
    max_act_mem: Optional[int] = None     # S003: peak activation bytes cap
    max_latency_ms: Optional[float] = None  # S004: latency-proxy cap
    max_weight_mem: Optional[int] = None  # S005: weight storage bytes cap
    # Measured latency: batch size for the wall-clock inference timing
    # attached to each result (None disables the extra column).
    latency_batch: Optional[int] = None

    def budget(self) -> Optional[Budget]:
        """The static :class:`Budget`, or ``None`` when no cap is set."""
        budget = Budget(
            max_params=self.max_params,
            max_flops=self.max_flops,
            max_act_mem=self.max_act_mem,
            max_latency_ms=self.max_latency_ms,
            max_weight_mem=self.max_weight_mem,
        )
        return None if budget.is_null else budget

    def embedding_config(self) -> EmbeddingConfig:
        return EmbeddingConfig(
            rounds=self.embedding_rounds,
            transr_epochs_per_round=self.transr_epochs_per_round,
            nn_exp_epochs_per_round=self.nn_exp_epochs_per_round,
            seed=self.seed,
        )

    def progressive_config(self) -> ProgressiveConfig:
        return ProgressiveConfig(
            sample_size=self.sample_size,
            evals_per_round=self.evals_per_round,
            candidate_subsample=self.candidate_subsample,
        )


#: the two experiments of §4.1
EXPERIMENTS: Dict[str, Tuple[str, str, CompressionTask]] = {
    "Exp1": ("resnet56", "cifar10", EXP1),
    "Exp2": ("vgg16", "cifar100", EXP2),
}

#: transfer targets of §4.4 (source experiment -> sibling models)
TRANSFER_MODELS: Dict[str, List[str]] = {
    "Exp1": ["resnet20", "resnet56", "resnet164"],
    "Exp2": ["vgg13", "vgg16", "vgg19"],
}


def make_evaluator(
    model_name: str,
    dataset_name: str,
    task: CompressionTask,
    seed: int = 0,
    latency_batch: Optional[int] = None,
) -> SurrogateEvaluator:
    """A fresh paper-scale evaluator for one (model, dataset) task."""
    return SurrogateEvaluator(
        lambda: create_model(model_name, num_classes=task.num_classes),
        model_name,
        dataset_name,
        task,
        config=EvaluatorConfig(seed=seed, latency_batch=latency_batch),
    )


def transfer_evaluator(exp_name: str, model_name: str, seed: int = 0) -> SurrogateEvaluator:
    """Evaluator for a §4.4 transfer target model on the source dataset."""
    source_model, dataset_name, source_task = EXPERIMENTS[exp_name]
    task = transfer_task(source_task, model_name, 0.0, 0.0, source_task.model_accuracy)
    return make_evaluator(model_name, dataset_name, task, seed=seed)


#: legacy algorithm names accepted by run_algorithm / the CLI --algorithm flag
LEGACY_SOLVER_NAMES: Dict[str, str] = {
    "AutoMC": "progressive",
    "Random": "random",
    "Evolution": "evolution",
    "RL": "rl",
    "Grid": "grid",
}


def run_algorithm(
    name: str,
    exp_name: str,
    config: ExperimentConfig,
    embeddings: Optional[StrategyEmbeddings] = None,
    space: Optional[StrategySpace] = None,
) -> SearchResult:
    """Run one AutoML algorithm on Exp1/Exp2 under the shared budget.

    ``name`` is a solver registry name (``progressive``, ``random``,
    ``evolution``, ``grid``, ``rl``, ``sa``, ``regevo``, ``amc``) or a
    legacy algorithm label (``AutoMC``/``Random``/``Evolution``/``RL``);
    ``config.solver`` overrides it when set.

    With ``config.workers`` / ``config.cache_dir`` set, the evaluator is
    wrapped in an :class:`EvaluationEngine` — candidate batches fan out
    across worker processes and/or persist to the cross-run disk cache.
    With ``config.journal`` set, the whole run streams spans/events to a
    JSONL journal (summarise with ``repro trace summarize``, which groups
    multiple journals by their solver name).
    """
    solver_name = config.solver or LEGACY_SOLVER_NAMES.get(name, name)
    get_solver(solver_name)  # fail fast on unknown names, before any setup
    model_name, dataset_name, task = EXPERIMENTS[exp_name]
    evaluator = make_evaluator(
        model_name, dataset_name, task,
        seed=config.seed, latency_batch=config.latency_batch,
    )
    budget = config.budget()
    if budget is not None:
        evaluator.set_budget(budget)
    if config.snapshot_dir is not None:
        evaluator.set_snapshot_dir(
            config.snapshot_dir, budget_mb=config.snapshot_budget_mb
        )
    if config.workers > 0 or config.cache_dir is not None:
        evaluator = EvaluationEngine(
            evaluator, workers=config.workers, cache_dir=config.cache_dir
        )
    tracer = None
    if config.journal is not None:
        tracer = Tracer(
            journal=RunJournal(
                config.journal,
                run={
                    "algorithm": name,
                    "solver": solver_name,
                    "experiment": exp_name,
                    "seed": config.seed,
                },
            )
        )
        attach_tracer(evaluator, tracer)
    space = space or StrategySpace()
    solver_kwargs: Dict[str, object] = dict(config.solver_kwargs or {})
    if solver_name == "progressive":
        from ..knowledge.experience import default_experience

        if embeddings is None:
            embeddings = learn_embeddings(space, config=config.embedding_config())
        solver_kwargs.setdefault("embeddings", embeddings)
        solver_kwargs.setdefault("config", config.progressive_config())
        solver_kwargs.setdefault("experience", default_experience())
    solver = make_solver(
        solver_name, evaluator, space,
        gamma=0.3, budget_hours=config.budget_hours, max_length=5,
        seed=config.seed, **solver_kwargs,
    )
    try:
        result = solver.run()
        if isinstance(evaluator, EvaluationEngine):
            result.engine_stats = {
                "workers": evaluator.workers,
                "cache_hits": evaluator.cache_hits,
                "cache_foreign_hits": evaluator.cache_foreign_hits,
                "fresh_evaluations": evaluator.fresh_evaluations,
                "steps_replayed": evaluator.steps_replayed,
                "snapshot_hits": evaluator.snapshot_hits,
                "snapshot_steps_saved": evaluator.snapshot_steps_saved,
            }
        if config.latency_batch is not None:
            stats = result.engine_stats or {}
            stats["latency_violations"] = evaluator.latency_violations
            result.engine_stats = stats
        if budget is not None:
            stats = result.engine_stats or {}
            # Static-analysis accounting: candidates pruned at generation
            # time, schemes the engine filtered or S-rejected, plus the
            # cost model's drift against measured (params, flops).
            stats["budget_pruned"] = solver.strategy.budget_pruned
            stats["budget_filtered"] = evaluator.budget_filtered
            stats["budget_rejects"] = evaluator.budget_rejects
            stats.update(evaluator.prediction_drift())
            result.engine_stats = stats
        return result
    finally:
        if isinstance(evaluator, EvaluationEngine):
            evaluator.close()
        if tracer is not None:
            tracer.close()


def pick_block(
    results: List[EvaluationResult], low: float, high: float,
    fallback: bool = True,
) -> Optional[EvaluationResult]:
    """Best-accuracy Pareto scheme whose PR falls in [low, high).

    The paper reports AutoML rows even when the algorithm's Pareto picks
    land far from the nominal block (RL sits at PR 77 in the "~40" block of
    Table 2); with ``fallback`` the best feasible scheme with PR >= low is
    reported when the strict range is empty.
    """
    in_range = [r for r in results if low <= r.pr < high]
    if in_range:
        return max(in_range, key=lambda r: r.accuracy)
    if fallback:
        feasible = [r for r in results if r.pr >= low]
        if feasible:
            return max(feasible, key=lambda r: r.accuracy)
    return None


def format_row(
    label: str, result: Optional[EvaluationResult], base_acc: float
) -> str:
    """One Table 2-style row: Params/PR, FLOPs/FR, Acc/Inc."""
    if result is None:
        return f"{label:<12s}  (no scheme in range)"
    inc = 100 * result.accuracy - 100 * base_acc
    return (
        f"{label:<12s} {result.params / 1e6:5.2f}M /{100 * result.pr:6.2f}%   "
        f"{result.flops / 1e9:5.3f}G /{100 * result.fr:6.2f}%   "
        f"{100 * result.accuracy:5.2f} /{inc:+6.2f}"
    )
