"""Terminal plotting for the figure harnesses.

The paper's Figures 4 and 5 are scatter/line plots; with no display in this
environment the harnesses render them as compact ASCII charts so the bench
output is directly comparable to the paper figures.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

_MARKERS = "ox+*#@%&"


def ascii_scatter(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) point series as an ASCII scatter plot.

    Each series gets a marker from ``o x + * ...``; overlapping points show
    the most recently drawn series.
    """
    points = [(x, y) for pts in series.values() for (x, y) in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, pts) in zip(_MARKERS, series.items()):
        for x, y in pts:
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((y - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    lines.append(f"{y_hi:8.2f} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:8.2f} +" + "-" * width + "+")
    lines.append(
        " " * 10 + f"{x_lo:<10.2f}{x_label:^{max(width - 20, 1)}}{x_hi:>10.2f}"
    )
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series)
    )
    lines.append(" " * 10 + f"[{y_label}]  " + legend)
    return "\n".join(lines)


def ascii_lines(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 14,
    x_label: str = "time",
    y_label: str = "value",
) -> str:
    """Line-ish chart: scatter of trajectory samples (monotone x assumed)."""
    return ascii_scatter(series, width=width, height=height,
                         x_label=x_label, y_label=y_label)
