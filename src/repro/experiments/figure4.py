"""Figure 4 reproduction — Pareto-front trajectories of the AutoML algorithms.

For Exp1 and Exp2, every algorithm runs under the same simulated budget; the
harness emits (a) the best-feasible-accuracy trajectory over simulated time
and (b) the final Pareto front points (PR%, Acc%) — the two panels of the
paper's figure, as data series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.search import SearchResult
from .common import EXPERIMENTS, ExperimentConfig, run_algorithm
from .plotting import ascii_scatter
from .table2 import AUTOML_ALGORITHMS


@dataclass
class Figure4Series:
    experiment: str
    algorithm: str
    trajectory: List[Tuple[float, float, float]]  # (cost, best_acc%, hypervolume)
    front: List[Tuple[float, float]]  # (PR%, Acc%) of final Pareto points


@dataclass
class Figure4Result:
    series: List[Figure4Series] = field(default_factory=list)
    searches: Dict[str, Dict[str, SearchResult]] = field(default_factory=dict)

    def of(self, experiment: str, algorithm: str) -> Optional[Figure4Series]:
        for s in self.series:
            if (s.experiment, s.algorithm) == (experiment, algorithm):
                return s
        return None

    def format(self) -> str:
        lines = ["Figure 4 — Pareto-optimal results over search time"]
        for exp_name in EXPERIMENTS:
            lines.append("")
            lines.append(f"== {exp_name} ==")
            lines.append("best feasible accuracy (%) at budget fractions 25/50/75/100:")
            for s in self.series:
                if s.experiment != exp_name or not s.trajectory:
                    continue
                total = s.trajectory[-1][0] or 1.0
                samples = []
                for frac in (0.25, 0.5, 0.75, 1.0):
                    point = max(
                        (p for p in s.trajectory if p[0] <= frac * total + 1e-9),
                        key=lambda p: p[0],
                        default=s.trajectory[0],
                    )
                    samples.append(f"{100 * point[1]:6.2f}")
                lines.append(f"  {s.algorithm:<10s}" + " ".join(samples))
            lines.append("final Pareto fronts (PR%, Acc%):")
            for s in self.series:
                if s.experiment != exp_name:
                    continue
                pts = ", ".join(f"({pr:.1f}, {acc:.2f})" for pr, acc in sorted(s.front))
                lines.append(f"  {s.algorithm:<10s}{pts}")
            front_series = {
                s.algorithm: s.front for s in self.series if s.experiment == exp_name
            }
            lines.append("")
            lines.append(ascii_scatter(front_series, x_label="PR (%)", y_label="Acc (%)"))
        return "\n".join(lines)


def run_figure4(config: Optional[ExperimentConfig] = None,
                searches: Optional[Dict[str, Dict[str, SearchResult]]] = None) -> Figure4Result:
    """Regenerate Figure 4's data, optionally reusing Table 2 search runs."""
    config = config or ExperimentConfig()
    figure = Figure4Result()
    for exp_name in EXPERIMENTS:
        figure.searches[exp_name] = {}
        for algorithm in AUTOML_ALGORITHMS:
            if searches is not None and algorithm in searches.get(exp_name, {}):
                search = searches[exp_name][algorithm]
            else:
                search = run_algorithm(algorithm, exp_name, config)
            figure.searches[exp_name][algorithm] = search
            figure.series.append(
                Figure4Series(
                    experiment=exp_name,
                    algorithm=algorithm,
                    trajectory=[
                        (p.cost, p.best_accuracy, p.hypervolume) for p in search.trajectory
                    ],
                    front=[
                        (100 * r.pr, 100 * r.accuracy) for r in search.front
                    ],
                )
            )
    return figure
