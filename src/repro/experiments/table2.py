"""Table 2 reproduction — compression results on Exp1 and Exp2.

For each experiment, two PR blocks (≈40 and ≈70):

* six human methods, grid-searched at the exact target (0.4 / 0.7);
* four AutoML algorithms (AutoMC / Evolution / RL / Random) run once under
  the shared budget; the ≈40 row picks each algorithm's best-accuracy Pareto
  scheme with PR in [0.30, 0.55), the ≈70 row the best with PR in
  [0.55, 0.90).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..baselines.grid import run_all_human_methods
from ..core.evaluator import EvaluationResult
from ..core.search import SearchResult
from .common import (
    EXPERIMENTS,
    ExperimentConfig,
    format_row,
    make_evaluator,
    pick_block,
    run_algorithm,
)

HUMAN_METHODS = ("C1", "C2", "C3", "C4", "C5", "C6")
HUMAN_NAMES = {"C1": "LMA", "C2": "LeGR", "C3": "NS", "C4": "SFP", "C5": "HOS", "C6": "LFB"}
AUTOML_ALGORITHMS = ("Evolution", "AutoMC", "RL", "Random")
BLOCKS = {"~40": (0.30, 0.55, 0.4), "~70": (0.55, 0.90, 0.7)}


@dataclass
class Table2Row:
    block: str
    experiment: str
    algorithm: str
    result: Optional[EvaluationResult]


@dataclass
class Table2Result:
    rows: List[Table2Row] = field(default_factory=list)
    search_results: Dict[str, Dict[str, SearchResult]] = field(default_factory=dict)
    base: Dict[str, EvaluationResult] = field(default_factory=dict)

    def lookup(self, experiment: str, block: str, algorithm: str) -> Optional[EvaluationResult]:
        for row in self.rows:
            if (row.experiment, row.block, row.algorithm) == (experiment, block, algorithm):
                return row.result
        return None

    def format(self) -> str:
        lines = ["Table 2 — compression results (reproduction)"]
        for exp_name in EXPERIMENTS:
            model, dataset, _ = EXPERIMENTS[exp_name]
            base = self.base[exp_name]
            lines.append("")
            lines.append(f"== {exp_name}: {model} on {dataset} ==")
            lines.append(
                f"{'PR(%)':<6s}{'Algorithm':<13s}{'Params(M)/PR(%)':<20s}"
                f"{'FLOPs(G)/FR(%)':<20s}{'Acc./Inc.(%)'}"
            )
            lines.append("      " + format_row("baseline", base, base.base_accuracy))
            for block in BLOCKS:
                for row in self.rows:
                    if row.experiment == exp_name and row.block == block:
                        lines.append(
                            f"{block:<6s}"
                            + format_row(row.algorithm, row.result, base.accuracy)
                        )
        return "\n".join(lines)


def run_table2(config: Optional[ExperimentConfig] = None) -> Table2Result:
    """Regenerate Table 2 (both experiments, both PR blocks)."""
    config = config or ExperimentConfig()
    table = Table2Result()

    for exp_name, (model_name, dataset_name, task) in EXPERIMENTS.items():
        base_eval = make_evaluator(model_name, dataset_name, task, seed=config.seed)
        from ..space.scheme import CompressionScheme

        table.base[exp_name] = base_eval.evaluate(CompressionScheme())

        # Human methods, grid-searched at each exact target.
        for block, (_, __, target) in BLOCKS.items():
            outcomes = run_all_human_methods(
                base_eval,
                target,
                method_labels=HUMAN_METHODS,
                max_evaluations_per_method=config.grid_evals_per_method,
            )
            for outcome in outcomes:
                table.rows.append(
                    Table2Row(
                        block=block,
                        experiment=exp_name,
                        algorithm=HUMAN_NAMES[outcome.method_label],
                        result=outcome.best,
                    )
                )

        # AutoML algorithms, one budgeted run each; both blocks read from
        # the same run's Pareto front.
        table.search_results[exp_name] = {}
        for algorithm in AUTOML_ALGORITHMS:
            search = run_algorithm(algorithm, exp_name, config)
            table.search_results[exp_name][algorithm] = search
            for block, (low, high, _) in BLOCKS.items():
                table.rows.append(
                    Table2Row(
                        block=block,
                        experiment=exp_name,
                        algorithm=algorithm,
                        result=pick_block(search.all_results, low, high),
                    )
                )
    return table
