"""Compression schemes — sequences of strategies (§3.2).

The search space S is the tree of all strategy sequences with length <= L;
each path from the START node is one scheme.  Schemes are immutable value
objects, hashable by their strategy identifiers, so search history can live
in sets and dicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from .strategy import CompressionStrategy

#: the paper's maximum scheme length (§4.1 sets L=5 for all searches)
MAX_SCHEME_LENGTH = 5


@dataclass(frozen=True)
class CompressionScheme:
    """An ordered sequence of compression strategies, executed left to right."""

    strategies: Tuple[CompressionStrategy, ...] = ()

    @property
    def length(self) -> int:
        return len(self.strategies)

    @property
    def is_empty(self) -> bool:
        return not self.strategies

    @property
    def identifier(self) -> str:
        if self.is_empty:
            return "START"
        return " -> ".join(s.identifier for s in self.strategies)

    @property
    def total_param_step(self) -> float:
        """Sum of HP2 fractions — the nominal parameter reduction target."""
        return sum(s.param_step for s in self.strategies)

    def extend(self, strategy: CompressionStrategy) -> "CompressionScheme":
        """The child scheme in the search tree."""
        return CompressionScheme(strategies=self.strategies + (strategy,))

    def prefix(self, length: int) -> "CompressionScheme":
        return CompressionScheme(strategies=self.strategies[:length])

    def __iter__(self) -> Iterator[CompressionStrategy]:
        return iter(self.strategies)

    def __len__(self) -> int:
        return len(self.strategies)

    def __str__(self) -> str:
        return self.identifier


START = CompressionScheme()


def tree_size(num_strategies: int, max_length: int = MAX_SCHEME_LENGTH) -> int:
    """|S| = sum_{l=0..L} n^l — the number of schemes in the search tree."""
    return sum(num_strategies ** level for level in range(max_length + 1))
