"""Compression strategies — method + concrete hyperparameter setting (§3.2).

A :class:`CompressionStrategy` is one atom of the search space; the full
:class:`StrategySpace` enumerates the cartesian product of Table 1's grids
(4,230 strategies with our HP2 reconstruction).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..compression import EXTENSION_METHODS, METHODS, CompressionMethod
from .hyperparams import HP_GRID, METHOD_HPS


def _num_eq(raw: str, candidate: object) -> bool:
    """True when ``raw`` parses to the same number as ``candidate``."""
    try:
        return float(raw) == float(candidate)
    except (TypeError, ValueError):
        return False


@dataclass(frozen=True)
class CompressionStrategy:
    """One compression method under one specific hyperparameter setting."""

    method_label: str
    hp_items: Tuple[Tuple[str, object], ...]  # sorted (name, value) pairs
    index: int = -1  # position inside the owning StrategySpace

    @property
    def hp(self) -> Dict[str, object]:
        return dict(self.hp_items)

    @property
    def method(self) -> CompressionMethod:
        if self.method_label in METHODS:
            return METHODS[self.method_label]
        return EXTENSION_METHODS[self.method_label]

    @property
    def identifier(self) -> str:
        inner = ",".join(f"{k}={v}" for k, v in self.hp_items)
        return f"{self.method_label}[{inner}]"

    @property
    def param_step(self) -> float:
        """The HP2 value (fraction of P(M) this strategy removes), or 0."""
        return float(self.hp.get("HP2", 0.0))

    def __str__(self) -> str:
        return self.identifier


def make_strategy(method_label: str, hp: Dict[str, object], index: int = -1) -> CompressionStrategy:
    """Construct a strategy with validated, canonically ordered hyperparameters."""
    expected = METHOD_HPS[method_label]
    missing = [name for name in expected if name not in hp]
    if missing:
        raise ValueError(f"{method_label} missing hyperparameters {missing}")
    items = tuple((name, hp[name]) for name in expected)
    return CompressionStrategy(method_label=method_label, hp_items=items, index=index)


class StrategySpace:
    """The enumerated set C of compression strategies (Table 1).

    Iteration order is deterministic: methods in label order, grids in the
    order declared in :data:`~repro.space.hyperparams.METHOD_HPS`.
    """

    def __init__(
        self,
        method_labels: Optional[Sequence[str]] = None,
        include_quantization: bool = False,
    ):
        if method_labels is None:
            method_labels = sorted(METHODS)
            if include_quantization:
                method_labels = method_labels + sorted(EXTENSION_METHODS)
        self.method_labels = list(method_labels)
        self._strategies: List[CompressionStrategy] = []
        self._by_id: Dict[str, CompressionStrategy] = {}
        for label in self.method_labels:
            hp_names = METHOD_HPS[label]
            for values in itertools.product(*(HP_GRID[name] for name in hp_names)):
                strategy = CompressionStrategy(
                    method_label=label,
                    hp_items=tuple(zip(hp_names, values)),
                    index=len(self._strategies),
                )
                self._strategies.append(strategy)
                self._by_id[strategy.identifier] = strategy

    def __len__(self) -> int:
        return len(self._strategies)

    def __iter__(self) -> Iterator[CompressionStrategy]:
        return iter(self._strategies)

    def __getitem__(self, index: int) -> CompressionStrategy:
        return self._strategies[index]

    def by_identifier(self, identifier: str) -> CompressionStrategy:
        return self._by_id[identifier]

    def of_method(self, label: str) -> List[CompressionStrategy]:
        return [s for s in self._strategies if s.method_label == label]

    def restrict(self, method_labels: Sequence[str]) -> "StrategySpace":
        """A smaller space over the given methods (AutoMC-MultipleSource)."""
        return StrategySpace(method_labels=list(method_labels))

    def parse_strategy(self, text: str) -> CompressionStrategy:
        """Parse a strategy identifier like ``C2[HP1=0.3,HP2=0.2,...]``.

        Values are matched against the grids, so ``0.3`` and ``0.30`` both
        resolve; raises ``KeyError`` for strategies outside this space.
        """
        from .hyperparams import HP_GRID

        text = text.strip()
        if "[" not in text or not text.endswith("]"):
            raise ValueError(f"malformed strategy identifier {text!r}")
        label, inner = text[:-1].split("[", 1)
        label = label.strip()
        hp: Dict[str, object] = {}
        for item in inner.split(","):
            name, _, raw = item.partition("=")
            name = name.strip()
            raw = raw.strip()
            if name not in HP_GRID:
                raise ValueError(f"unknown hyperparameter {name!r} in {text!r}")
            for candidate in HP_GRID[name]:
                if str(candidate) == raw or (
                    not isinstance(candidate, str)
                    and _num_eq(raw, candidate)
                ):
                    hp[name] = candidate
                    break
            else:
                raise ValueError(f"value {raw!r} not in grid of {name}")
        return self.by_identifier(make_strategy(label, hp).identifier)

    def parse_scheme(self, text: str):
        """Parse a scheme identifier (strategies joined by ``->``)."""
        from .scheme import CompressionScheme

        text = text.strip()
        if text in ("", "START"):
            return CompressionScheme()
        parts = [part for part in text.split("->") if part.strip()]
        return CompressionScheme(tuple(self.parse_strategy(p) for p in parts))

    def neighbor(self, strategy: CompressionStrategy, rng) -> CompressionStrategy:
        """A strategy one grid step away in a random hyperparameter.

        Used by the evolutionary baseline's mutation operator; falls back to
        the input strategy when no move is possible.
        """
        from .hyperparams import HP_GRID

        hp = strategy.hp
        names = list(hp)
        rng.shuffle(names)
        for name in names:
            grid = HP_GRID[name]
            position = grid.index(hp[name])
            moves = [p for p in (position - 1, position + 1) if 0 <= p < len(grid)]
            if not moves:
                continue
            new_hp = dict(hp)
            new_hp[name] = grid[int(rng.choice(moves))]
            candidate = make_strategy(strategy.method_label, new_hp)
            found = self._by_id.get(candidate.identifier)
            if found is not None:
                return found
        return strategy

    def __repr__(self) -> str:
        return f"StrategySpace({len(self)} strategies over {self.method_labels})"
