"""Search space on compression schemes (§3.2)."""

from .hyperparams import HP_DESCRIPTIONS, HP_GRID, METHOD_HPS, grid_size
from .scheme import MAX_SCHEME_LENGTH, START, CompressionScheme, tree_size
from .strategy import CompressionStrategy, StrategySpace, make_strategy

__all__ = [
    "CompressionScheme",
    "CompressionStrategy",
    "HP_DESCRIPTIONS",
    "HP_GRID",
    "MAX_SCHEME_LENGTH",
    "METHOD_HPS",
    "START",
    "StrategySpace",
    "grid_size",
    "make_strategy",
    "tree_size",
]
