"""Hyperparameter grids of Table 1.

The published table's HP2 cell is corrupted; the legible values are
``x0.04, x0.12, x0.2, x0.36, x0.4`` with further unreadable entries.  We
reconstruct HP2 as six evenly-patterned values — this yields 4,230 strategies
against the paper's reported 4,525 (documented in DESIGN.md).  The grids are
data, so changing a list here changes the whole search space consistently.

``*n`` hyperparameters (HP1, HP7, HP9, HP13) are multipliers of the original
model's pre-training epoch count; HP2 ``x γ`` removes ``γ · P(M)`` parameters
(relative to the *original* model M).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: value grid for every hyperparameter id
HP_GRID: Dict[str, List[object]] = {
    "HP1": [0.1, 0.2, 0.3, 0.4, 0.5],                 # fine-tune epochs (*n)
    "HP2": [0.04, 0.12, 0.2, 0.28, 0.36, 0.44],       # param decrease (x gamma)
    "HP4": [1, 3, 6, 10],                             # distillation temperature
    "HP5": [0.05, 0.3, 0.5, 0.99],                    # distillation alpha
    "HP6": [0.7, 0.9],                                # max per-unit prune ratio
    "HP7": [0.4, 0.5, 0.6, 0.7],                      # LeGR evolution epochs (*n)
    "HP8": ["l1_weight", "l2_weight", "l2_bn_param"],  # LeGR filter criterion
    "HP9": [0.1, 0.2, 0.3, 0.4, 0.5],                 # SFP back-prop epochs (*n)
    "HP10": [1, 3, 5],                                # SFP update frequency
    "HP11": ["P1", "P2", "P3"],                       # HOS global aggregation
    "HP12": ["l1norm", "k34", "skew_kur"],            # HOS local criterion
    "HP13": [0.3, 0.4, 0.5],                          # HOS optimization epochs (*n)
    "HP14": [1, 3, 5],                                # HOS MSE loss factor
    "HP15": [0.5, 1, 1.5, 3, 5],                      # LFB auxiliary loss factor
    "HP16": ["NLL", "CE", "MSE"],                     # LFB auxiliary loss kind
    # Extension (C7 INQ quantization, not part of the paper's space):
    "HP17": [3, 5, 7],                                # quantization bits
    "HP18": [0.3, 0.5, 0.7],                          # portion per INQ iteration
    # Extension (C8 post-training quantization, real int8/fp16 execution):
    "HP19": ["int8", "fp16"],                         # PTQ mode
    "HP20": [1, 2, 4],                                # calibration batches
}

#: hyperparameters used by each method (order fixes strategy enumeration)
METHOD_HPS: Dict[str, Tuple[str, ...]] = {
    "C1": ("HP1", "HP2", "HP4", "HP5"),
    "C2": ("HP1", "HP2", "HP6", "HP7", "HP8"),
    "C3": ("HP1", "HP2", "HP6"),
    "C4": ("HP2", "HP9", "HP10"),
    "C5": ("HP1", "HP2", "HP11", "HP12", "HP13", "HP14"),
    "C6": ("HP1", "HP2", "HP15", "HP16"),
    "C7": ("HP1", "HP17", "HP18"),
    "C8": ("HP19", "HP20"),
}

#: human-readable descriptions used as knowledge-graph attributes
HP_DESCRIPTIONS: Dict[str, str] = {
    "HP1": "fine tune epochs",
    "HP2": "decrease ratio of parameters",
    "HP4": "temperature factor",
    "HP5": "alpha factor",
    "HP6": "channel's maximum pruning ratio",
    "HP7": "evolution epochs",
    "HP8": "filter's evaluation criteria",
    "HP9": "back-propagation epochs",
    "HP10": "update frequency",
    "HP11": "global evaluation criteria",
    "HP12": "local evaluation criteria",
    "HP13": "optimization epochs",
    "HP14": "MSE loss's factor",
    "HP15": "auxiliary MSE loss's factor",
    "HP16": "auxiliary loss",
    "HP17": "quantization bits",
    "HP18": "quantization portion per iteration",
    "HP19": "post-training quantization mode",
    "HP20": "activation calibration batches",
}


def grid_size(method_label: str) -> int:
    """Number of strategies a method contributes to the search space."""
    size = 1
    for hp in METHOD_HPS[method_label]:
        size *= len(HP_GRID[hp])
    return size
