"""Calibration anchors for the paper-scale accuracy surrogate.

Training ResNet-56/VGG-16 on CIFAR for the paper's 3-GPU-day searches is not
possible in this environment, so scheme *accuracy* at paper scale comes from
a response-surface model anchored to the paper's own measurements:

* Table 2 — each human method's best (grid-searched) accuracy at PR ≈ 40 and
  PR ≈ 70 on ResNet-56/CIFAR-10 and VGG-16/CIFAR-100;
* Table 3 — the PR = 40 transfer rows for ResNet-20/164 and VGG-13/19.

Anchors are stored as exact (pr, accuracy%) pairs.  Everything else
(parameters, FLOPs) is *measured* on the really-compressed numpy models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: baseline accuracies (%); ResNet-56 / VGG-16 are from Table 2, the others
#: are inferred from the transfer rows of Table 3 (see DESIGN.md).
BASELINE_ACCURACY: Dict[Tuple[str, str], float] = {
    ("resnet20", "cifar10"): 91.30,
    ("resnet56", "cifar10"): 91.04,
    ("resnet164", "cifar10"): 89.50,
    ("vgg13", "cifar100"): 70.90,
    ("vgg16", "cifar100"): 70.03,
    ("vgg19", "cifar100"): 69.90,
}

#: Table 2 anchors: (method, model, dataset) -> ((pr40, acc40), (pr70, acc70))
TABLE2_ANCHORS: Dict[Tuple[str, str, str], Tuple[Tuple[float, float], Tuple[float, float]]] = {
    ("C1", "resnet56", "cifar10"): ((0.4174, 79.61), (0.7040, 75.25)),
    ("C2", "resnet56", "cifar10"): ((0.4002, 90.69), (0.7003, 85.88)),
    ("C3", "resnet56", "cifar10"): ((0.4002, 89.19), (0.7005, 85.73)),
    ("C4", "resnet56", "cifar10"): ((0.3852, 88.24), (0.6807, 86.94)),
    ("C5", "resnet56", "cifar10"): ((0.4097, 90.18), (0.6888, 89.28)),
    ("C6", "resnet56", "cifar10"): ((0.4019, 89.99), (0.7003, 90.35)),
    ("C1", "vgg16", "cifar100"): ((0.4011, 42.11), (0.6998, 41.51)),
    ("C2", "vgg16", "cifar100"): ((0.3999, 69.97), (0.6999, 69.06)),
    ("C3", "vgg16", "cifar100"): ((0.4000, 70.01), (0.7001, 68.98)),
    ("C4", "vgg16", "cifar100"): ((0.3973, 69.62), (0.6972, 68.15)),
    ("C5", "vgg16", "cifar100"): ((0.3999, 64.34), (0.7005, 62.66)),
    ("C6", "vgg16", "cifar100"): ((0.3621, 60.94), (0.5744, 57.88)),
}

#: Table 3 anchors (PR = 40 transfer rows): (method, model, dataset) -> acc40
TABLE3_ACC40: Dict[Tuple[str, str, str], float] = {
    ("C1", "resnet20", "cifar10"): 77.61,
    ("C2", "resnet20", "cifar10"): 89.20,
    ("C3", "resnet20", "cifar10"): 88.78,
    ("C4", "resnet20", "cifar10"): 87.81,
    ("C5", "resnet20", "cifar10"): 88.81,
    ("C6", "resnet20", "cifar10"): 91.57,
    ("C1", "resnet164", "cifar10"): 58.21,
    ("C2", "resnet164", "cifar10"): 83.93,
    ("C3", "resnet164", "cifar10"): 83.84,
    ("C4", "resnet164", "cifar10"): 82.06,
    ("C5", "resnet164", "cifar10"): 84.12,
    ("C6", "resnet164", "cifar10"): 24.17,
    ("C1", "vgg13", "cifar100"): 47.16,
    ("C2", "vgg13", "cifar100"): 70.80,
    ("C3", "vgg13", "cifar100"): 70.48,
    ("C4", "vgg13", "cifar100"): 70.69,
    ("C5", "vgg13", "cifar100"): 64.13,
    ("C6", "vgg13", "cifar100"): 63.04,
    ("C1", "vgg19", "cifar100"): 40.02,
    ("C2", "vgg19", "cifar100"): 69.64,
    ("C3", "vgg19", "cifar100"): 69.34,
    ("C4", "vgg19", "cifar100"): 69.42,
    ("C5", "vgg19", "cifar100"): 63.37,
    ("C6", "vgg19", "cifar100"): 56.27,
}

#: how much above baseline a well-composed scheme can climb (percentage
#: points).  AutoMC reaches +1.57pp on Exp1 and +0.70pp on Exp2 (Table 2).
ACCURACY_HEADROOM: Dict[Tuple[str, str], float] = {
    ("resnet20", "cifar10"): 1.6,
    ("resnet56", "cifar10"): 2.0,
    ("resnet164", "cifar10"): 1.4,
    ("vgg13", "cifar100"): 1.4,
    ("vgg16", "cifar100"): 1.2,
    ("vgg19", "cifar100"): 1.2,
}


@dataclass(frozen=True)
class MethodCurve:
    """Cumulative accuracy-damage curve D(pr) = a*pr + b*pr^3 (in % points).

    Fit exactly through the two Table 2 anchors (or the Table 3 anchor plus a
    scaled second point for transfer models).  D is the damage of the
    method's *best-tuned single-shot* compression at that cumulative PR.

    Beyond the calibrated range (pr > 0.7) the cubic is an extrapolation and
    can even turn negative (LFB's anchors are concave); a steep quadratic
    penalty takes over there — pushing past ~80% reduction collapses any
    CIFAR model in practice.
    """

    a: float
    b: float

    _ANCHOR_LIMIT = 0.71  # just above the largest Table 2 anchor (0.7040)

    def damage(self, pr: float) -> float:
        limit = self._ANCHOR_LIMIT
        if pr <= limit:
            return self.a * pr + self.b * pr ** 3
        at_limit = self.a * limit + self.b * limit ** 3
        slope = max(self.a + 3 * self.b * limit ** 2, 8.0)
        extra = pr - limit
        return at_limit + slope * extra + 250.0 * extra ** 2


def _fit_curve(pr1: float, d1: float, pr2: float, d2: float) -> MethodCurve:
    """Solve a*pr + b*pr^3 through two (pr, damage) points."""
    import numpy as np

    matrix = np.array([[pr1, pr1 ** 3], [pr2, pr2 ** 3]])
    rhs = np.array([d1, d2])
    a, b = np.linalg.solve(matrix, rhs)
    return MethodCurve(a=float(a), b=float(b))


def method_curve(method: str, model: str, dataset: str) -> MethodCurve:
    """The calibrated damage curve for (method, model, dataset).

    For ResNet-56/VGG-16 both Table 2 anchors are used.  For transfer models
    the Table 3 PR=40 anchor is combined with a second point scaled from the
    reference model's 40->70 damage ratio.
    """
    base = BASELINE_ACCURACY[(model, dataset)]
    key = (method, model, dataset)
    if key in TABLE2_ANCHORS:
        (pr1, acc1), (pr2, acc2) = TABLE2_ANCHORS[key]
        return _fit_curve(pr1, base - acc1, pr2, base - acc2)
    if key in TABLE3_ACC40:
        reference_model = "resnet56" if dataset == "cifar10" else "vgg16"
        ref_base = BASELINE_ACCURACY[(reference_model, dataset)]
        (rp1, ra1), (rp2, ra2) = TABLE2_ANCHORS[(method, reference_model, dataset)]
        # Only the reference ratio needs guarding against ~zero damage; the
        # target's own anchor may legitimately be negative (LFB *gains*
        # accuracy on ResNet-20 at PR 40 in Table 3).
        ref_d1 = max(ref_base - ra1, 1e-3)
        ref_d2 = max(ref_base - ra2, 1e-3)
        d1 = base - TABLE3_ACC40[key]
        d2 = d1 * (ref_d2 / ref_d1)
        return _fit_curve(0.40, d1, 0.70, d2)
    raise KeyError(f"no calibration anchors for {key}")


def supported_tasks() -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(BASELINE_ACCURACY))
