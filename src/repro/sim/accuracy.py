"""The calibrated accuracy response surface for paper-scale experiments.

:class:`AccuracyModel` answers one question: *given the current simulated
accuracy, what does executing one compression strategy do to it?*  The model
combines

* the per-(method, model, dataset) damage curves fitted to the paper's
  Table 2/3 anchors (:mod:`repro.sim.calibration`);
* a fine-tuning recovery factor — the anchors correspond to generous
  fine-tuning (HP1 = 0.5); skimping on epochs inflates damage;
* secondary-hyperparameter modifiers — each non-budget HP has a
  task-dependent preferred value; wrong settings multiply damage;
* a step-granularity factor — many small steps damage slightly less than
  one equivalent big step (the paper's §4.2 observation (1));
* a method-diversity factor — following a *different* method's step removes
  a different kind of redundancy and damages less (observation (2));
* a recovery bonus — small, well-fine-tuned steps can push accuracy *above*
  the baseline, capped by a per-task headroom (AutoMC's +1.57pp on Exp1);
* seeded Gaussian evaluation noise.

Parameters and FLOPs are never modelled here — they are measured on the
really-compressed models.
"""

from __future__ import annotations

import hashlib
from collections import Counter, defaultdict
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..space.hyperparams import HP_GRID
from .calibration import (
    ACCURACY_HEADROOM,
    BASELINE_ACCURACY,
    MethodCurve,
    method_curve,
)

_DATASET_CLASSES = {"cifar10": 10, "cifar100": 100}

#: hyperparameters that modulate damage (everything but the budget/epochs)
_MODIFIER_HPS = {
    "C1": ("HP4", "HP5"),
    "C2": ("HP6", "HP8"),
    "C3": ("HP6",),
    "C4": ("HP10",),
    "C5": ("HP11", "HP12", "HP13", "HP14"),
    "C6": ("HP15", "HP16"),
}

_MODIFIER_WEIGHT = 0.06  # max extra damage per misconfigured hyperparameter
_FT_PENALTY = 0.9        # damage inflation at zero fine-tuning
_STEP_REF = 0.35         # reference single-shot step size (PR ~ 40)
_BONUS_SCALE = 0.5       # recovery-bonus strength per step
_BONUS_DECAY = 0.08      # bonus decays with step size: exp(-pr_step / this)
_NOISE_STD = 0.10        # evaluation noise (percentage points)


@lru_cache(maxsize=1)
def _experience_preferences() -> Dict[Tuple[str, str, str], object]:
    """Modal hyperparameter values in the source papers' reported results.

    This is the link that makes *domain knowledge pay off*: the surrogate's
    preferred settings are exactly the settings the six papers report using,
    i.e. the information AutoMC's experience records carry.  Keys are
    (method, hp, dataset-family) with ``"*"`` as the any-dataset fallback.
    """
    from ..knowledge.experience import default_experience

    votes: Dict[Tuple[str, str, str], Counter] = defaultdict(Counter)
    for record in default_experience():
        family = record.task.name.split("-")[0]
        for name, value in record.hp:
            votes[(record.method_label, name, family)][value] += 1
            votes[(record.method_label, name, "*")][value] += 1
    return {key: counter.most_common(1)[0][0] for key, counter in votes.items()}


def _preferred_value(method: str, hp: str, model: str, dataset: str, grid) -> object:
    """Task-dependent optimum for a secondary hyperparameter.

    Settings reported by the source papers (the experience table) win; for
    hyperparameters the papers never report, a deterministic hash picks a
    hidden optimum the search must discover empirically.
    """
    preferences = _experience_preferences()
    for key in ((method, hp, dataset), (method, hp, "*")):
        if key in preferences and preferences[key] in grid:
            return preferences[key]
    digest = hashlib.sha256(f"{method}|{hp}|{model}|{dataset}".encode()).digest()
    return grid[digest[0] % len(grid)]


@dataclass
class StepEffect:
    """Decomposition of one simulated accuracy change (percentage points)."""

    damage: float
    bonus: float
    noise: float

    @property
    def delta(self) -> float:
        return -self.damage + self.bonus + self.noise


class AccuracyModel:
    """Response surface for one (model, dataset) compression task."""

    def __init__(self, model_name: str, dataset_name: str, seed: int = 0):
        key = (model_name, dataset_name)
        if key not in BASELINE_ACCURACY:
            raise KeyError(
                f"no calibration for {key}; supported: {sorted(BASELINE_ACCURACY)}"
            )
        self.model_name = model_name
        self.dataset_name = dataset_name
        self.baseline = BASELINE_ACCURACY[key]
        self.headroom = ACCURACY_HEADROOM[key]
        self.floor = 100.0 / _DATASET_CLASSES[dataset_name]
        self.seed = seed
        self._curves: Dict[str, MethodCurve] = {}

    # ------------------------------------------------------------------ #
    def curve(self, method_label: str) -> MethodCurve:
        if method_label not in self._curves:
            self._curves[method_label] = method_curve(
                method_label, self.model_name, self.dataset_name
            )
        return self._curves[method_label]

    def hp_modifier(self, method_label: str, hp: Dict[str, object]) -> float:
        """Multiplicative damage factor >= 1 from secondary hyperparameters."""
        factor = 1.0
        for name in _MODIFIER_HPS.get(method_label, ()):
            if name not in hp:
                continue
            grid = HP_GRID[name]
            best = _preferred_value(method_label, name, self.model_name, self.dataset_name, grid)
            if hp[name] == best:
                continue
            if isinstance(hp[name], str):
                factor += _MODIFIER_WEIGHT
            else:
                numeric = [float(v) for v in grid]
                span = (max(numeric) - min(numeric)) or 1.0
                factor += _MODIFIER_WEIGHT * abs(float(hp[name]) - float(best)) / span
        return factor

    # ------------------------------------------------------------------ #
    def step(
        self,
        accuracy: float,
        pr_before: float,
        pr_after: float,
        method_label: str,
        hp: Dict[str, object],
        ft_norm: float,
        previous_methods: Sequence[str] = (),
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[float, StepEffect]:
        """Accuracy (in %) after executing one strategy.

        ``pr_before`` / ``pr_after`` are the cumulative parameter-reduction
        fractions measured on the real model; ``ft_norm`` is the fine-tuning
        epochs as a fraction of the pre-training epochs (the HP1 scale).
        """
        rng = rng or np.random.default_rng(self.seed)
        pr_step = max(pr_after - pr_before, 0.0)

        if method_label == "C7":  # quantization extension: no param change
            damage = 0.3 * self.hp_modifier(method_label, hp)
        elif method_label == "C8":  # real PTQ: int8 hurts slightly, fp16 barely
            base = 0.25 if str(hp.get("HP19", "int8")) == "int8" else 0.02
            # More calibration batches tighten activation scales a little.
            batches = float(hp.get("HP20", 2))
            damage = base * (1.0 + 0.1 * max(0.0, 2.0 - batches))
        else:
            curve = self.curve(method_label)
            damage = curve.damage(pr_after) - curve.damage(pr_before)
            # Fine-tuning recovery: anchors assume HP1 = 0.5.
            ft = float(np.clip(ft_norm, 0.0, 0.5))
            damage *= 1.0 + _FT_PENALTY * (0.5 - ft) / 0.5
            # Secondary hyperparameters.
            damage *= self.hp_modifier(method_label, hp)
            # Step granularity: smaller steps are gentler per unit PR.
            if pr_step > 1e-9:
                damage *= float(np.clip((pr_step / _STEP_REF) ** 0.2, 0.8, 1.15))
            # Method diversity: switching methods attacks fresh redundancy.
            if previous_methods and method_label not in previous_methods:
                damage *= 0.9

        # Recovery bonus: small well-tuned steps climb above the baseline.
        # "Well-tuned" is strict — the bonus decays exponentially with the
        # secondary-hyperparameter penalty, so randomly-configured schemes
        # rarely harvest it while knowledge-guided search can.
        ceiling = self.baseline + self.headroom
        headroom_left = float(np.clip(ceiling - accuracy, 0.0, self.headroom))
        quality = float(np.exp(-8.0 * (self.hp_modifier(method_label, hp) - 1.0)))
        bonus = (
            _BONUS_SCALE
            * quality
            * (float(np.clip(ft_norm, 0.0, 0.5)) / 0.5)
            * float(np.exp(-pr_step / _BONUS_DECAY))
            * headroom_left
            / max(self.headroom, 1e-9)
        )
        noise = float(rng.normal(0.0, _NOISE_STD))

        effect = StepEffect(damage=damage, bonus=bonus, noise=noise)
        new_accuracy = float(np.clip(accuracy + effect.delta, self.floor, ceiling))
        return new_accuracy, effect

    def __repr__(self) -> str:
        return (
            f"AccuracyModel({self.model_name}/{self.dataset_name}, "
            f"baseline={self.baseline:.2f}%)"
        )
