"""Paper-scale accuracy surrogate calibrated to the paper's tables."""

from .accuracy import AccuracyModel, StepEffect
from .calibration import (
    ACCURACY_HEADROOM,
    BASELINE_ACCURACY,
    TABLE2_ANCHORS,
    TABLE3_ACC40,
    MethodCurve,
    method_curve,
    supported_tasks,
)

__all__ = [
    "ACCURACY_HEADROOM",
    "AccuracyModel",
    "BASELINE_ACCURACY",
    "MethodCurve",
    "StepEffect",
    "TABLE2_ANCHORS",
    "TABLE3_ACC40",
    "method_curve",
    "supported_tasks",
]
