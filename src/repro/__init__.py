"""AutoMC reproduction: automated model compression with domain knowledge
and a progressive search strategy (Wang, Wang, Shi — ICDE 2024).

Subpackages
-----------
``repro.nn``           numpy autodiff + neural-network substrate
``repro.models``       CIFAR-style ResNets/VGGs with pruning graphs
``repro.data``         synthetic datasets and task descriptors
``repro.compression``  the six compression methods of Table 1 (+ INQ ext.)
``repro.space``        the 4,230-strategy search space
``repro.knowledge``    knowledge graph, TransR, experience, NN_exp
``repro.sim``          calibrated paper-scale accuracy surrogate
``repro.core``         evaluators, F_mo, progressive search, AutoMC facade
``repro.baselines``    Random / Evolution / RL searches, human-method grids
``repro.experiments``  Table 2/3 and Figure 4/5/6 reproduction harnesses
"""

from .core.api import AutoMC
from .core.search import SearchResult
from .space import CompressionScheme, CompressionStrategy, StrategySpace

__version__ = "1.0.0"

__all__ = [
    "AutoMC",
    "CompressionScheme",
    "CompressionStrategy",
    "SearchResult",
    "StrategySpace",
    "__version__",
]
