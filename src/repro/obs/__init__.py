"""repro.obs — structured tracing, metrics and run journaling.

Zero-dependency observability for the search/engine/training stack:

* :class:`Tracer` / :data:`NULL_TRACER` — hierarchical spans
  (``search.round`` → ``engine.batch`` → ``evaluate`` → ``train.epoch``)
  with wall-time and simulated-GPU-hour attribution; the null tracer makes
  uninstrumented hot paths cost a single attribute check.
* :class:`Metrics` — counters / gauges / histograms, snapshot-able to JSON.
* :class:`RunJournal` / :func:`read_journal` / :func:`summarize_journal` —
  a crash-safe JSONL stream of every span and event, replayable post-hoc
  via ``repro trace summarize``.

See ``docs/observability.md`` for the span taxonomy and journal schema.
"""

from .journal import JOURNAL_SCHEMA_VERSION, RunJournal, read_journal
from .metrics import NULL_METRICS, Counter, Gauge, Histogram, Metrics, NullMetrics
from .summary import JournalSummary, summarize_journal
from .tracing import NULL_TRACER, NullTracer, Span, Tracer, attach_tracer

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JournalSummary",
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NullMetrics",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullTracer",
    "RunJournal",
    "Span",
    "Tracer",
    "attach_tracer",
    "read_journal",
    "summarize_journal",
]
