"""JSONL run journal: a crash-safe stream of every span and search event.

A journal is an append-only file of one JSON object per line.  The first
line is a ``meta`` record carrying the schema version and free-form run
information; every subsequent record is a ``span`` or ``event``.  Records
are flushed per line, so a journal from an interrupted ``repro search`` is
readable up to the last completed evaluation and can be summarised post-hoc
with :func:`~repro.obs.summary.summarize_journal`.

Schema (version 1) — every record carries ``"v": 1``:

``meta``   ``{"v", "type": "meta", "schema", "created", "run": {...}}``
``span``   ``{"v", "type": "span", "name", "id", "parent", "t", "dur",
           "cost", "attrs"}`` — ``t`` is wall-clock seconds since the epoch
           at span start, ``dur`` wall seconds, ``cost`` simulated GPU-hours
           attributed to the span (0.0 for all but ``evaluate`` spans).
``event``  ``{"v", "type": "event", "name", "parent", "t", "attrs"}``

``evaluate`` spans may carry kernel-runtime attributes in ``attrs`` —
``plan_cache_hits`` / ``plan_cache_misses`` (shape-specialized plan cache
traffic during that evaluation) and ``workspace_bytes_peak`` (the arena
high-water mark measured by the latency probe), plus ``predicted_act_mem``
/ ``drift_act_mem_pct`` when the cost model made an activation-memory
prediction.  These are ordinary attrs under the existing forward-compat
contract; no schema bump is needed.

Forward compatibility: readers must ignore record types and fields they do
not recognise, and must skip unparseable lines rather than fail — a newer
writer or a truncated final line should never make an old journal
unreadable.  :func:`read_journal` implements exactly that contract.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

#: bump when a record type or field changes meaning (readers skip unknowns)
JOURNAL_SCHEMA_VERSION = 1


class RunJournal:
    """Line-buffered JSONL writer for one run.

    Values inside ``attrs`` must be JSON-serialisable; anything exotic is
    stringified rather than raised on, because losing one attribute is
    better than losing the journal mid-run.
    """

    def __init__(self, path: Union[str, Path], run: Optional[dict] = None):
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # buffering=1 == line buffered: every record survives a crash.
        self._handle = open(self.path, "w", buffering=1)
        self.records_written = 0
        self.write(
            {
                "type": "meta",
                "schema": JOURNAL_SCHEMA_VERSION,
                "created": time.time(),
                "run": run or {},
            }
        )

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def write(self, record: dict) -> None:
        if self._handle.closed:
            return
        record = {"v": JOURNAL_SCHEMA_VERSION, **record}
        self._handle.write(json.dumps(record, default=str) + "\n")
        self.records_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(
    path: Union[str, Path],
    on_skip: Optional[Callable[[int, str], None]] = None,
) -> Iterator[dict]:
    """Yield every parseable record of a journal, skipping corruption.

    Blank lines, truncated/garbage JSON and non-object lines are skipped
    (``on_skip(line_number, raw_line)`` is invoked for each, when given) —
    the graceful-degradation contract fuzz tests pin down.  Raises ``OSError``
    only when the file itself cannot be opened.
    """
    with open(path, "r", errors="replace") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                if on_skip is not None:
                    on_skip(line_number, line)
                continue
            if not isinstance(record, dict):
                if on_skip is not None:
                    on_skip(line_number, line)
                continue
            yield record
