"""Post-hoc journal summarisation — where did the simulated GPU-hours go?

``repro trace summarize run.jsonl`` renders the answer for any journal,
including one cut short by an interrupted run: per-span wall/cost
attribution, the cache-hit / lint-reject / fresh-evaluation breakdown, and
the final recorded trajectory point (hypervolume, front size, best
accuracy).

The cost invariant this module checks against: summing ``evaluate`` span
costs in journal order replays the exact float additions the evaluator's
``total_cost`` accumulator performed, so ``JournalSummary.sim_cost_total``
equals ``Evaluator.total_cost`` bit-for-bit for a complete journal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from .journal import JOURNAL_SCHEMA_VERSION, read_journal


@dataclass
class JournalSummary:
    """Aggregated view of one run journal."""

    path: str
    schema: Optional[int] = None
    run: dict = field(default_factory=dict)
    records: int = 0
    skipped_lines: int = 0
    #: per-span-name aggregates
    span_counts: Dict[str, int] = field(default_factory=dict)
    span_wall: Dict[str, float] = field(default_factory=dict)
    span_cost: Dict[str, float] = field(default_factory=dict)
    event_counts: Dict[str, int] = field(default_factory=dict)
    #: simulated GPU-hours summed over ``evaluate`` spans in journal order
    sim_cost_total: float = 0.0
    fresh_evaluations: int = 0
    cache_hits_memory: int = 0
    cache_hits_disk: int = 0
    lint_rejects: int = 0
    worker_failures: int = 0
    rounds: int = 0
    train_epochs: int = 0
    #: kernel-plan cache traffic summed over ``evaluate`` span attrs
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: largest workspace-arena footprint any evaluation reported (bytes)
    workspace_bytes_peak: int = 0
    #: last ``search.trajectory`` event seen, if any
    final_trajectory: Optional[dict] = None

    @property
    def solver(self) -> Optional[str]:
        """The solver registry name recorded in the run header, if any."""
        value = self.run.get("solver")
        return value if isinstance(value, str) else None

    @property
    def evaluation_outcomes(self) -> int:
        """Schemes that produced a result or a rejection, however cheaply."""
        return (
            self.fresh_evaluations
            + self.cache_hits_memory
            + self.cache_hits_disk
            + self.lint_rejects
        )

    def format(self) -> str:
        # An empty or headerless journal has no schema to report; a crashed
        # run may leave exactly that behind, and the summary must stay usable.
        schema = "unknown" if self.schema is None else f"v{self.schema}"
        lines = [f"journal {self.path} (schema {schema})"]
        if self.records == 0:
            lines.append(
                "  empty journal"
                + (
                    f" ({self.skipped_lines} unparseable lines skipped)"
                    if self.skipped_lines
                    else " (no records)"
                )
            )
        if self.run:
            run = ", ".join(f"{k}={v}" for k, v in sorted(self.run.items()))
            lines.append(f"  run: {run}")
        lines.append(
            f"  {self.records} records"
            + (f", {self.skipped_lines} unparseable lines skipped" if self.skipped_lines else "")
        )
        lines.append(
            f"  evaluations: {self.fresh_evaluations} fresh, "
            f"{self.cache_hits_memory} memory hits, {self.cache_hits_disk} disk hits, "
            f"{self.lint_rejects} lint-rejected, {self.worker_failures} worker failures"
        )
        lines.append(
            f"  simulated cost: {self.sim_cost_total:.4f} GPU-hours over "
            f"{self.rounds} search rounds"
        )
        if self.train_epochs:
            lines.append(f"  training: {self.train_epochs} epochs")
        if self.plan_cache_hits or self.plan_cache_misses:
            total = self.plan_cache_hits + self.plan_cache_misses
            peak = (
                f", workspace peak {self.workspace_bytes_peak / 1024.0:.0f} KiB"
                if self.workspace_bytes_peak
                else ""
            )
            lines.append(
                f"  kernel plans: {self.plan_cache_hits}/{total} cache hits{peak}"
            )
        if self.final_trajectory:
            t = self.final_trajectory
            lines.append(
                "  final trajectory: "
                f"HV {t.get('hypervolume', 0.0):.4f}, front {t.get('front_size', 0)}, "
                f"best acc {100 * t.get('best_accuracy', 0.0):.2f}%"
            )
        if self.span_counts:
            lines.append("  wall-time attribution:")
            for name in sorted(self.span_wall, key=lambda n: -self.span_wall[n]):
                cost = self.span_cost.get(name, 0.0)
                cost_part = f", {cost:.4f} sim-h" if cost else ""
                lines.append(
                    f"    {name:<14s} {self.span_counts[name]:>6d} spans  "
                    f"{self.span_wall[name]:8.3f}s wall{cost_part}"
                )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "schema": self.schema,
            "run": self.run,
            "solver": self.solver,
            "records": self.records,
            "skipped_lines": self.skipped_lines,
            "span_counts": self.span_counts,
            "span_wall": self.span_wall,
            "span_cost": self.span_cost,
            "event_counts": self.event_counts,
            "sim_cost_total": self.sim_cost_total,
            "fresh_evaluations": self.fresh_evaluations,
            "cache_hits_memory": self.cache_hits_memory,
            "cache_hits_disk": self.cache_hits_disk,
            "lint_rejects": self.lint_rejects,
            "worker_failures": self.worker_failures,
            "rounds": self.rounds,
            "train_epochs": self.train_epochs,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "workspace_bytes_peak": self.workspace_bytes_peak,
            "final_trajectory": self.final_trajectory,
        }


def summarize_journal(path: Union[str, Path]) -> JournalSummary:
    """Fold a journal (possibly truncated/corrupted) into a summary.

    Unknown record types and span/event names are counted but otherwise
    ignored — the forward-compatibility contract of the journal schema.
    """
    summary = JournalSummary(path=str(path))

    def on_skip(line_number: int, raw: str) -> None:
        summary.skipped_lines += 1

    for record in read_journal(path, on_skip=on_skip):
        summary.records += 1
        kind = record.get("type")
        if kind == "meta":
            if summary.schema is None:
                summary.schema = record.get("schema", JOURNAL_SCHEMA_VERSION)
            # Merge every meta record's run dict in journal order: solvers
            # annotate the run after the header is written (annotate_run),
            # and later annotations extend/override earlier ones.
            run = record.get("run")
            if isinstance(run, dict):
                merged = dict(summary.run)
                merged.update(run)
                summary.run = merged
            continue
        name = record.get("name")
        if not isinstance(name, str):
            continue
        if kind == "span":
            summary.span_counts[name] = summary.span_counts.get(name, 0) + 1
            duration = record.get("dur")
            if isinstance(duration, (int, float)):
                summary.span_wall[name] = summary.span_wall.get(name, 0.0) + duration
            cost = record.get("cost")
            if isinstance(cost, (int, float)) and cost:
                summary.span_cost[name] = summary.span_cost.get(name, 0.0) + cost
            if name == "evaluate":
                summary.fresh_evaluations += 1
                if isinstance(cost, (int, float)):
                    # journal order == charge order: same floats, same sum
                    summary.sim_cost_total += cost
                attrs = record.get("attrs")
                attrs = attrs if isinstance(attrs, dict) else {}
                hits = attrs.get("plan_cache_hits")
                if isinstance(hits, (int, float)):
                    summary.plan_cache_hits += int(hits)
                misses = attrs.get("plan_cache_misses")
                if isinstance(misses, (int, float)):
                    summary.plan_cache_misses += int(misses)
                peak = attrs.get("workspace_bytes_peak")
                if isinstance(peak, (int, float)) and peak > summary.workspace_bytes_peak:
                    summary.workspace_bytes_peak = int(peak)
            elif name == "search.round":
                summary.rounds += 1
            elif name == "train.epoch":
                summary.train_epochs += 1
        elif kind == "event":
            summary.event_counts[name] = summary.event_counts.get(name, 0) + 1
            attrs = record.get("attrs")
            attrs = attrs if isinstance(attrs, dict) else {}
            if name == "cache_hit":
                if attrs.get("source") == "disk":
                    summary.cache_hits_disk += 1
                else:
                    summary.cache_hits_memory += 1
            elif name == "lint_reject":
                summary.lint_rejects += 1
            elif name == "worker_failed":
                summary.worker_failures += 1
            elif name == "search.trajectory":
                summary.final_trajectory = attrs
    return summary
