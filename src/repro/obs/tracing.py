"""Hierarchical span tracing with wall-time and simulated-cost attribution.

A :class:`Tracer` produces nested :class:`Span` records::

    search.round                 one optimisation round / generation / batch
      engine.batch               one evaluate_many submission
        evaluate                 one charged evaluation (carries sim_cost)
          train.fit              one gradient-training run
            train.epoch          one epoch inside it
        cache_hit / lint_reject / worker_failed     (events, not spans)

Spans record wall-clock duration and — for ``evaluate`` — the simulated
GPU-hours charged, so a journal can attribute *exactly* where a search
budget went: the sum of ``evaluate`` span costs in journal order equals
``Evaluator.total_cost`` bit-for-bit (same floats, same addition order).

The default tracer on every instrumented object is the shared
:data:`NULL_TRACER`: ``enabled`` is ``False`` and every method is a no-op,
so uninstrumented hot paths pay a single attribute check
(``if self.tracer.enabled``).  Tracers are single-threaded by design; engine
worker processes never trace (spans are emitted by the parent at merge
time).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, List, Optional

from .journal import RunJournal
from .metrics import NULL_METRICS, Metrics


class Span:
    """One timed, attributed region of work."""

    __slots__ = ("name", "span_id", "parent_id", "wall_start", "_t0", "duration", "sim_cost", "attrs")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int], attrs: dict):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.wall_start = time.time()
        self._t0 = time.perf_counter()
        self.duration = 0.0
        self.sim_cost = 0.0
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def add_cost(self, hours: float) -> None:
        """Attribute simulated GPU-hours to this span."""
        self.sim_cost += hours

    def to_record(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "t": self.wall_start,
            "dur": self.duration,
            "cost": self.sim_cost,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects spans/events into metrics, memory and (optionally) a journal.

    ``keep_spans`` bounds in-memory retention — journals are the medium for
    long runs, but tests and ``AutoMC(trace=True)`` users want ``.spans``
    inspectable without touching disk.
    """

    enabled = True

    def __init__(
        self,
        journal: Optional[RunJournal] = None,
        metrics: Optional[Metrics] = None,
        keep_spans: int = 100_000,
    ):
        self.journal = journal
        self.metrics = metrics if metrics is not None else Metrics()
        self.keep_spans = keep_spans
        self.spans: List[Span] = []
        self.events: List[dict] = []
        self.run_info: dict = {}
        self._stack: List[Span] = []
        self._next_id = 1

    # -- span lifecycle ----------------------------------------------------
    def start(self, name: str, **attrs) -> Span:
        """Open a span manually (pair with :meth:`finish`); prefer :meth:`span`."""
        span = Span(name, self._next_id, self._stack[-1].span_id if self._stack else None, attrs)
        self._next_id += 1
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        span.duration = time.perf_counter() - span._t0
        # Tolerate out-of-order finishes (an exception unwinding through
        # nested manual spans): pop up to and including this span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self.metrics.counter(f"span.{span.name}").inc()
        self.metrics.histogram(f"dur.{span.name}").observe(span.duration)
        if span.sim_cost:
            self.metrics.counter(f"sim_hours.{span.name}").add(span.sim_cost)
        if len(self.spans) < self.keep_spans:
            self.spans.append(span)
        if self.journal is not None:
            self.journal.write(span.to_record())

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        span = self.start(name, **attrs)
        try:
            yield span
        finally:
            self.finish(span)

    # -- run metadata ------------------------------------------------------
    def annotate_run(self, **fields) -> None:
        """Append run-level metadata (e.g. the solver name) to the journal.

        Written as an extra ``meta`` record; readers merge the ``run`` dicts
        of every meta record in order, so later annotations extend (and can
        override) the header the journal was opened with.  Kept in
        ``self.run_info`` for in-memory tracers.
        """
        self.run_info.update(fields)
        if self.journal is not None:
            from .journal import JOURNAL_SCHEMA_VERSION

            self.journal.write(
                {
                    "type": "meta",
                    "schema": JOURNAL_SCHEMA_VERSION,
                    "run": dict(fields),
                }
            )

    # -- events ------------------------------------------------------------
    def event(self, name: str, **attrs) -> None:
        """Record an instantaneous occurrence (cache hit, rejection, ...)."""
        self.metrics.counter(f"event.{name}").inc()
        record = {
            "type": "event",
            "name": name,
            "parent": self._stack[-1].span_id if self._stack else None,
            "t": time.time(),
            "attrs": attrs,
        }
        if len(self.events) < self.keep_spans:
            self.events.append(record)
        if self.journal is not None:
            self.journal.write(record)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Flush and close the journal, if any (idempotent)."""
        if self.journal is not None:
            self.journal.close()


class _NullSpan:
    """Shared inert span: accepts `set`/`add_cost`, records nothing."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    duration = 0.0
    sim_cost = 0.0
    attrs: dict = {}

    def set(self, **attrs) -> None:
        pass

    def add_cost(self, hours: float) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


def _null_tracer() -> "NullTracer":
    return NULL_TRACER


class NullTracer:
    """Do-nothing tracer; the default on every instrumented object.

    ``span()`` hands back a shared no-op context manager and ``metrics`` is
    the shared :data:`~repro.obs.metrics.NULL_METRICS`, so even unguarded
    instrumentation costs a couple of attribute lookups.  Copying or
    pickling yields the singleton, so evaluators that get deep-copied keep
    sharing one instance.
    """

    enabled = False
    journal = None
    metrics = NULL_METRICS
    spans: List[Span] = []
    events: List[dict] = []
    run_info: dict = {}

    def start(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def finish(self, span) -> None:
        pass

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def annotate_run(self, **fields) -> None:
        pass

    def close(self) -> None:
        pass

    def __deepcopy__(self, memo) -> "NullTracer":
        return self

    def __copy__(self) -> "NullTracer":
        return self

    def __reduce__(self):
        return (_null_tracer, ())


NULL_TRACER = NullTracer()


def attach_tracer(evaluator, tracer) -> None:
    """Point an evaluator stack (engine → backend → trainer) at ``tracer``.

    Walks ``.evaluator`` wrappers (the :class:`~repro.core.engine.
    EvaluationEngine` chain) and any ``.trainer`` each level owns, setting
    ``tracer`` on every object so spans from all layers interleave into one
    journal.  Duck-typed on purpose: anything with a ``tracer`` slot joins
    in, anything without silently gains the attribute.
    """
    seen = set()
    target = evaluator
    while target is not None and id(target) not in seen:
        seen.add(id(target))
        target.tracer = tracer
        trainer = getattr(target, "trainer", None)
        if trainer is not None:
            trainer.tracer = tracer
        target = getattr(target, "evaluator", None)
