"""In-process metrics registry: counters, gauges and histograms.

Everything is plain Python on purpose (the repo's zero-dependency rule):
instruments are tiny mutable objects handed out by a :class:`Metrics`
registry, and :meth:`Metrics.snapshot` renders the whole registry as a JSON-
serialisable dict — the payload attached to ``SearchResult.obs`` and printed
by ``repro trace summarize``.

The registry is deliberately not thread-safe: every producer in this
codebase (searches, evaluators, the engine's *parent* process) runs on one
thread, and worker processes never touch a tracer.  A no-op twin
(:class:`NullMetrics`) backs the :class:`~repro.obs.tracing.NullTracer` so
unguarded ``tracer.metrics.counter(...).inc()`` calls are harmless when
tracing is off.
"""

from __future__ import annotations

from typing import Dict, Optional


class Counter:
    """Monotonically increasing value (ints or simulated GPU-hours)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    # alias that reads better for non-unit increments (cost accumulation)
    add = inc


class Gauge:
    """Last-written value (front size, hypervolume, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observed values (count/sum/min/max).

    Bucketed percentiles are overkill for the span durations and batch sizes
    tracked here; min/mean/max is what the attribution report prints.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Metrics:
    """Registry of named instruments (get-or-create semantics)."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram()
        return instrument

    def snapshot(self) -> dict:
        """JSON-serialisable dump of every instrument."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min,
                    "max": h.max,
                    "mean": h.mean,
                }
                for name, h in sorted(self.histograms.items())
            },
        }


class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    __slots__ = ()
    value = None
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    add = inc

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Registry twin that hands out shared no-op instruments."""

    __slots__ = ()
    counters: Dict[str, Counter] = {}
    gauges: Dict[str, Gauge] = {}
    histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()
