"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 517 editable
installs (which need ``bdist_wheel``) fail.  Keeping a ``setup.py`` and no
``[build-system]`` table in ``pyproject.toml`` makes ``pip install -e .``
take the legacy ``setup.py develop`` path, which works offline.
"""

from setuptools import setup

setup()
