"""The C7 quantization extension (the paper's future-work direction).

The paper's search space contains no quantization method, but names
enriching the space as future work (§5).  This example enables the INQ-style
C7 extension, quantizes a really-trained tiny model to power-of-two weights,
and shows (a) the accuracy effect and (b) what the enlarged search space
looks like.

Run:  python examples/quantization_extension.py        (~1 minute)
"""

import copy

import numpy as np

from repro.compression import EXTENSION_METHODS, ExecutionContext
from repro.data import tiny_dataset
from repro.models import resnet8
from repro.nn import Trainer, evaluate_accuracy
from repro.space import StrategySpace


def main() -> None:
    data = tiny_dataset(num_classes=4, num_samples=160, image_size=8, seed=0)
    train, val = data.split(0.75, seed=1)

    model = resnet8(num_classes=4)
    trainer = Trainer(lr=0.05, batch_size=32, seed=0)
    trainer.fit(model, train, epochs=3)
    base_acc = evaluate_accuracy(model, val)

    for bits in (7, 5, 3):
        quantized = copy.deepcopy(model)
        ctx = ExecutionContext(
            original_params=model.num_parameters(),
            pretrain_epochs=3,
            dataset=train,
            val_dataset=val,
            trainer=Trainer(lr=0.01, batch_size=32, seed=0),
        )
        report = EXTENSION_METHODS["C7"].apply(
            quantized, {"HP1": 0.3, "HP17": bits, "HP18": 0.5}, ctx
        )
        acc = evaluate_accuracy(quantized, val)
        weights = np.concatenate(
            [p.data.ravel() for p in quantized.parameters() if p.ndim >= 2]
        )
        nonzero = weights[np.abs(weights) > 1e-12]
        distinct = len(np.unique(np.abs(nonzero)))
        print(
            f"INQ {bits}-bit: accuracy {base_acc:.3f} -> {acc:.3f}, "
            f"{distinct} distinct weight magnitudes, "
            f"effective {report.details['effective_bits']:.0f} bits/weight"
        )

    # The enlarged search space simply gains the C7 strategies:
    default = StrategySpace()
    extended = StrategySpace(include_quantization=True)
    print()
    print(f"search space: {len(default)} strategies -> {len(extended)} with C7")


if __name__ == "__main__":
    main()
