"""Using the compression methods directly (no search).

The library doubles as a compression toolbox: each of the six methods can be
applied to a model with hand-picked hyperparameters, exactly like the
paper's human baselines.  This example prunes a small VGG with Network
Slimming and LeGR, distils it with LMA, and compares the outcomes — all with
real training on a synthetic dataset.

Run:  python examples/single_method_compression.py        (~1-2 minutes)
"""

import copy

from repro.compression import ExecutionContext, get_method
from repro.data import tiny_dataset
from repro.models import vgg8_tiny
from repro.nn import Trainer, evaluate_accuracy, profile_model


def main() -> None:
    data = tiny_dataset(num_classes=4, num_samples=160, image_size=8, seed=0)
    train, val = data.split(0.75, seed=1)

    base = vgg8_tiny(num_classes=4)
    trainer = Trainer(lr=0.05, batch_size=32, seed=0)
    trainer.fit(base, train, epochs=3)
    base_profile = profile_model(base, (3, 8, 8))
    base_acc = evaluate_accuracy(base, val)
    print(f"baseline: {base_profile}, accuracy {base_acc:.3f}")
    print()

    recipes = {
        "NS":   {"HP1": 0.4, "HP2": 0.3, "HP6": 0.9},
        "LeGR": {"HP1": 0.4, "HP2": 0.3, "HP6": 0.9, "HP7": 0.5, "HP8": "l2_weight"},
        "LMA":  {"HP1": 0.5, "HP2": 0.3, "HP4": 3, "HP5": 0.5},
        "HOS":  {"HP1": 0.4, "HP2": 0.3, "HP11": "P1", "HP12": "k34",
                 "HP13": 0.3, "HP14": 1},
    }
    for name, hp in recipes.items():
        model = copy.deepcopy(base)
        ctx = ExecutionContext(
            original_params=base_profile.params,
            pretrain_epochs=3,
            dataset=train,
            val_dataset=val,
            trainer=Trainer(lr=0.05, batch_size=32, seed=0),
        )
        report = get_method(name).apply(model, hp, ctx)
        profile = profile_model(model, (3, 8, 8))
        acc = evaluate_accuracy(model, val)
        pr = 100 * report.params_removed / base_profile.params
        print(
            f"{name:<5s} removed {pr:5.1f}% params -> {profile}, "
            f"accuracy {acc:.3f} ({acc - base_acc:+.3f})"
        )


if __name__ == "__main__":
    main()
