"""Paper-scale search: ResNet-56 on CIFAR-10 (the paper's Exp1).

The model is a real 0.86M-parameter numpy ResNet-56 and every strategy in
the searched schemes performs real structural surgery on it — parameters and
FLOPs in the output are measured.  Accuracy comes from the calibrated
response surface (training ResNet-56 for real would need the paper's
3 GPU-days; see DESIGN.md).

Run:  python examples/compress_resnet56.py        (~2-4 minutes)
"""

from repro import AutoMC
from repro.core.progressive import ProgressiveConfig
from repro.knowledge.embedding import EmbeddingConfig


def main() -> None:
    automc = AutoMC.paper_scale(
        "resnet56",
        "cifar10",
        gamma=0.3,           # the paper's Exp1 target
        budget_hours=15.0,   # simulated GPU-hours (paper: 3 GPU-days)
        embedding_config=EmbeddingConfig(rounds=2),
        progressive_config=ProgressiveConfig(sample_size=6, evals_per_round=6),
    )
    result = automc.search()

    print(result.summary())
    print()
    print("Pareto front (schemes with PR >= 30%):")
    for r in sorted(result.pareto, key=lambda r: r.pr):
        print(f"  {r}")

    best = result.best
    if best is not None:
        print()
        print("Best scheme step by step:")
        for i, strategy in enumerate(best.scheme.strategies, 1):
            print(f"  {i}. {strategy.method.name:<5s} {dict(strategy.hp_items)}")


if __name__ == "__main__":
    main()
