"""Quickstart: fully-real automatic compression of a small CNN.

Everything in this example is real computation: the model is trained with
the numpy substrate, every compression strategy performs actual surgery and
gradient fine-tuning, and accuracy is measured on a held-out split.

Run:  python examples/quickstart.py        (~1-2 minutes on a laptop CPU)
"""

from repro import AutoMC, StrategySpace
from repro.core.progressive import ProgressiveConfig
from repro.data import tiny_dataset
from repro.knowledge.embedding import EmbeddingConfig
from repro.models import resnet8


def main() -> None:
    data = tiny_dataset(num_classes=4, num_samples=160, image_size=8, seed=0)
    train, val = data.split(0.75, seed=1)

    # Restrict to two fast methods so the demo stays snappy; drop the
    # `space=` argument to search over all 4,230 strategies.
    automc = AutoMC.with_training(
        lambda: resnet8(num_classes=4),
        train,
        val,
        gamma=0.15,               # want at least 15% of parameters gone
        budget_hours=1.0,         # simulated GPU-hour budget
        pretrain_epochs=3,
        space=StrategySpace(method_labels=["C3", "C4"]),
        embedding_config=EmbeddingConfig(
            rounds=1, transr_epochs_per_round=2, nn_exp_epochs_per_round=10
        ),
        progressive_config=ProgressiveConfig(
            sample_size=3, evals_per_round=3, candidate_subsample=64
        ),
    )

    print(f"baseline: {automc.evaluator.base_params} params, "
          f"accuracy {automc.evaluator.base_accuracy:.3f}")
    result = automc.search()

    print()
    print(result.summary())
    print()
    print("Pareto-optimal schemes meeting the target:")
    for r in sorted(result.pareto, key=lambda r: -r.accuracy):
        print(f"  {r}")


if __name__ == "__main__":
    main()
