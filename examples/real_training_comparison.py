"""Mini Table 2 with *everything real*: all four search algorithms compete
on a tiny task with genuine gradient training.

Unlike the paper-scale harness (which uses the calibrated accuracy
surrogate), every number printed here is measured — the base model is
trained on synthetic data, each strategy performs surgery plus real
fine-tuning/distillation, and accuracy comes from a held-out split.

Run:  python examples/real_training_comparison.py        (~5-10 minutes)
"""


from repro.baselines import EvolutionSearch, RLSearch, RandomSearch
from repro.core.config import EvaluatorConfig
from repro.core.evaluator import TrainingEvaluator
from repro.core.progressive import ProgressiveConfig, ProgressiveSearch
from repro.data import tiny_dataset
from repro.knowledge.embedding import EmbeddingConfig, learn_embeddings
from repro.knowledge.experience import default_experience
from repro.models import resnet8
from repro.space import StrategySpace

GAMMA = 0.2
BUDGET = 1.2  # simulated GPU-hours; ~40-60 real evaluations per algorithm


def make_evaluator(train, val) -> TrainingEvaluator:
    return TrainingEvaluator(
        lambda: resnet8(num_classes=4), train, val,
        config=EvaluatorConfig(pretrain_epochs=3, seed=0),
    )


def main() -> None:
    data = tiny_dataset(num_classes=4, num_samples=160, image_size=8, seed=0)
    train, val = data.split(0.75, seed=1)
    space = StrategySpace(method_labels=["C2", "C3", "C4"])

    print("learning strategy embeddings (Algorithm 1)...")
    embeddings = learn_embeddings(
        space,
        config=EmbeddingConfig(rounds=1, transr_epochs_per_round=2,
                               nn_exp_epochs_per_round=10),
    )

    rows = []
    progressive_config = ProgressiveConfig(
        sample_size=3, evals_per_round=3, candidate_subsample=len(space)
    )
    searchers = {
        "AutoMC": lambda ev: ProgressiveSearch(
            ev, space, embeddings, gamma=GAMMA, budget_hours=BUDGET,
            config=progressive_config, experience=default_experience(), seed=0,
        ),
        "Evolution": lambda ev: EvolutionSearch(
            ev, space, gamma=GAMMA, budget_hours=BUDGET,
            population_size=6, offspring_per_generation=4, seed=0,
        ),
        "RL": lambda ev: RLSearch(ev, space, gamma=GAMMA, budget_hours=BUDGET, seed=0),
        "Random": lambda ev: RandomSearch(ev, space, gamma=GAMMA, budget_hours=BUDGET, seed=0),
    }

    for name, build in searchers.items():
        evaluator = make_evaluator(train, val)
        print(f"running {name} "
              f"(baseline acc {evaluator.base_accuracy:.3f}, "
              f"{evaluator.base_params} params)...")
        result = build(evaluator).run()
        best = result.best
        rows.append((name, result.evaluations, best))

    print()
    print(f"{'algorithm':<11s}{'evals':>6s}{'PR%':>8s}{'FR%':>8s}{'acc':>7s}")
    for name, evals, best in rows:
        if best is None:
            print(f"{name:<11s}{evals:>6d}   (no scheme met the target)")
        else:
            print(
                f"{name:<11s}{evals:>6d}{100 * best.pr:>8.1f}"
                f"{100 * best.fr:>8.1f}{best.accuracy:>7.3f}"
            )
    print()
    winner = max((r for r in rows if r[2] is not None), key=lambda r: r[2].accuracy)
    print(f"winner: {winner[0]} with {winner[2]}")


if __name__ == "__main__":
    main()
