"""Transfer study (the paper's §4.4): search once, compress three models.

A compression scheme searched on VGG-16/CIFAR-100 is re-applied verbatim to
VGG-13 and VGG-19 — strategies are expressed in relative budgets (HP2 is a
fraction of the original parameters), so they are model-agnostic.

Run:  python examples/transfer_scheme.py        (~3-5 minutes)
"""

from repro import AutoMC
from repro.core.progressive import ProgressiveConfig
from repro.experiments.common import transfer_evaluator
from repro.knowledge.embedding import EmbeddingConfig


def main() -> None:
    automc = AutoMC.paper_scale(
        "vgg16",
        "cifar100",
        gamma=0.3,
        budget_hours=10.0,
        embedding_config=EmbeddingConfig(rounds=1),
        progressive_config=ProgressiveConfig(sample_size=4, evals_per_round=5),
    )
    result = automc.search()
    best = result.best
    if best is None:
        print("search found no scheme meeting the target; raise the budget")
        return

    print(f"source (vgg16):  {best}")
    print()
    for model_name in ("vgg13", "vgg19"):
        evaluator = transfer_evaluator("Exp2", model_name)
        transferred = evaluator.evaluate(best.scheme)
        print(f"transfer ({model_name}): {transferred}")


if __name__ == "__main__":
    main()
