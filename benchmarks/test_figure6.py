"""Benchmark: regenerate Figure 6 (the schemes AutoMC searched).

Shape checks: the best schemes are multi-step, mix more than one
compression method, and satisfy the PR >= gamma constraint — the three
properties the paper's Figure 6 exhibits.
"""

import pytest

from repro.experiments import EXPERIMENTS, run_figure6

from .conftest import write_report


@pytest.fixture(scope="module")
def figure6(config, table2_result):
    return run_figure6(
        config,
        searches={exp: table2_result.search_results[exp]["AutoMC"] for exp in EXPERIMENTS},
    )


def test_figure6_report(benchmark, figure6):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_report("figure6.txt", figure6.format())


def test_schemes_meet_target(benchmark, figure6):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert figure6.schemes, "AutoMC found no feasible schemes"
    for scheme in figure6.schemes:
        assert scheme.result.pr >= 0.3


def test_schemes_are_compositions(benchmark, figure6):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Figure 6's schemes chain multiple strategies (that is AutoMC's point)."""
    assert any(s.result.scheme.length >= 2 for s in figure6.schemes)


def test_format_lists_steps(benchmark, figure6):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = figure6.format()
    assert "step 1" in text
