"""Perf-regression suite for the kernel-plan/workspace layer.

Three layers of protection:

* *bit-identity*: planned execution (shape-specialized plans + workspace
  arena) must equal the un-planned reference kernels bit for bit — outputs
  and every gradient, cold cache and warm;
* *allocation pressure*: the whole point of the arena is that the steady
  state stops paying the allocator, so the suite counts numpy allocator
  calls on both paths and asserts the planned path's count drops;
* *performance*: the end-to-end workloads re-run against the committed
  pre-plan baseline (``PRE_PLANS_BASELINE``) and must hold the PR's
  headline >= 1.3x train-step / >= 1.5x inference-batch speedups.

Serial-vs-parallel engine bit-identity is asserted here too: workspaces are
thread-local and plans are shared behind a lock, and the cheapest way to
prove that combination sound end to end is to run the same evaluations on
both engine configurations.

``REPRO_BENCH_SMOKE=1`` (the CI setting) shrinks the benchmark shapes and
skips the perf gates — smoke-sized timings are dominated by Python
dispatch, not kernels.  ``benchmarks/out/BENCH_workspace.json`` is written
either way so CI can upload it.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.nn import Tensor, no_grad
from repro.nn import functional as F
from repro.nn.bench import (
    PRE_PLANS_BASELINE,
    build_workspace_report,
    run_workspace_benchmarks,
)
from repro.nn.workspace import (
    clear_plans,
    no_plans,
    plan_cache_stats,
    workspace_stats,
)

from .conftest import OUT_DIR

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: (n, c, h, w, f, k, stride, padding) — one case per plan code path:
#: stride-1 padded (tap scatter), strided padded, pointwise view,
#: non-overlapping fast scatter.
CONV_CASES = [
    (2, 3, 8, 8, 4, 3, 1, 1),
    (2, 8, 9, 9, 5, 3, 2, 1),
    (1, 4, 7, 7, 6, 1, 1, 0),
    (2, 5, 8, 8, 3, 2, 2, 0),
]


def _conv_forward_backward(data, stride, padding):
    """out/dx/dw/db for one fused conv2d+relu forward+backward."""
    xd, wd, bd = data
    x = Tensor(xd.copy(), requires_grad=True)
    w = Tensor(wd.copy(), requires_grad=True)
    b = Tensor(bd.copy(), requires_grad=True)
    out = F.conv2d(x, w, b, stride=stride, padding=padding, activation="relu")
    out.backward(np.ones(out.shape, dtype=np.float32))
    return out.data.copy(), x.grad.copy(), w.grad.copy(), b.grad.copy()


# --------------------------------------------------------------------------- #
# Planned execution is bit-identical to the reference
# --------------------------------------------------------------------------- #
class TestPlannedBitIdentity:
    @pytest.mark.parametrize("case", CONV_CASES)
    def test_conv2d_cold_and_warm(self, rng, case):
        n, c, h, w, f, k, stride, padding = case
        data = (
            rng.normal(size=(n, c, h, w)).astype(np.float32),
            rng.normal(size=(f, c, k, k)).astype(np.float32),
            rng.normal(size=(f,)).astype(np.float32),
        )
        clear_plans()
        cold = _conv_forward_backward(data, stride, padding)
        warm = _conv_forward_backward(data, stride, padding)
        with no_plans():
            reference = _conv_forward_backward(data, stride, padding)
        for name, a, b, r in zip(("out", "dx", "dw", "db"), cold, warm, reference):
            np.testing.assert_array_equal(a, r, err_msg=f"{name} (cold cache)")
            np.testing.assert_array_equal(b, r, err_msg=f"{name} (warm cache)")

    def test_resnet_forward_backward(self, rng):
        """Whole-model identity: logits and every parameter gradient."""
        from repro.models import resnet8

        model = resnet8(num_classes=4).eval()
        x = rng.normal(size=(2, 3, 8, 8))
        clear_plans()

        def run():
            for p in model.parameters():
                p.zero_grad()
            logits = model(Tensor(x))
            logits.sum().backward()
            return logits.data.copy(), [
                None if p.grad is None else p.grad.copy()
                for p in model.parameters()
            ]

        planned_logits, planned_grads = run()
        with no_plans():
            ref_logits, ref_grads = run()
        np.testing.assert_array_equal(planned_logits, ref_logits)
        for i, (a, b) in enumerate(zip(planned_grads, ref_grads)):
            assert (a is None) == (b is None)
            if a is not None:
                np.testing.assert_array_equal(a, b, err_msg=f"param {i} grad")

    def test_inference_matches_grad_mode(self, rng):
        from repro.models import resnet8

        model = resnet8(num_classes=4).eval()
        x = rng.normal(size=(2, 3, 8, 8))
        clear_plans()
        with_tape = model(Tensor(x)).data
        with no_grad():
            without_tape = model(Tensor(x)).data
        np.testing.assert_array_equal(with_tape, without_tape)


# --------------------------------------------------------------------------- #
# Serial == parallel through the evaluation engine
# --------------------------------------------------------------------------- #
class TestSerialParallelBitIdentity:
    def test_training_evaluator(self):
        """Thread-local workspaces + shared plans survive worker threads."""
        from repro.core import EvaluationEngine, EvaluatorConfig, TrainingEvaluator
        from repro.data.datasets import tiny_dataset
        from repro.space import CompressionScheme, StrategySpace

        train = tiny_dataset(num_classes=4, num_samples=64, image_size=8, seed=1)
        val = tiny_dataset(num_classes=4, num_samples=32, image_size=8, seed=2)
        c3 = StrategySpace().of_method("C3")
        batch = [
            CompressionScheme((c3[4],)),
            CompressionScheme((c3[4], c3[8])),
        ]

        def make():
            return TrainingEvaluator(
                "resnet8", train, val,
                config=EvaluatorConfig(pretrain_epochs=1.0, seed=5),
            )

        serial = EvaluationEngine(make(), workers=0)
        with EvaluationEngine(make(), workers=2) as parallel:
            for a, b in zip(serial.evaluate_many(batch), parallel.evaluate_many(batch)):
                assert a.scheme.identifier == b.scheme.identifier
                assert a.accuracy == b.accuracy
                assert a.params == b.params
                assert a.flops == b.flops
            assert serial.total_cost == parallel.total_cost


# --------------------------------------------------------------------------- #
# Allocation pressure drops on the planned path
# --------------------------------------------------------------------------- #
def _count_numpy_allocations(fn) -> int:
    """Calls to the numpy allocator entry points while ``fn`` runs."""
    names = ("pad", "zeros", "empty", "zeros_like", "empty_like")
    originals = {name: getattr(np, name) for name in names}
    counter = {"calls": 0}

    def wrap(original):
        def counting(*args, **kwargs):
            counter["calls"] += 1
            return original(*args, **kwargs)

        return counting

    try:
        for name, original in originals.items():
            setattr(np, name, wrap(original))
        fn()
    finally:
        for name, original in originals.items():
            setattr(np, name, original)
    return counter["calls"]


class TestAllocationCounts:
    @pytest.fixture()
    def model_and_data(self, rng):
        from repro.models import resnet8

        model = resnet8(num_classes=4)
        x = rng.normal(size=(4, 3, 8, 8))
        return model, x

    def test_inference_allocations_drop(self, model_and_data):
        model, x = model_and_data
        model.eval()

        def infer():
            with no_grad():
                model(Tensor(x))

        clear_plans()
        infer()  # warm: build plans, grow the arena
        with no_plans():
            infer()
        planned = _count_numpy_allocations(infer)
        with no_plans():
            reference = _count_numpy_allocations(infer)
        assert reference > 0
        # Steady-state planned inference never touches the allocator: pads,
        # patch matrices and scratch all come out of the warm arena.
        assert planned == 0, f"planned inference made {planned} allocator calls"

    def test_train_step_allocations_drop(self, model_and_data):
        model, x = model_and_data
        model.eval()  # keep BN running stats fixed so both paths see one state

        def step():
            for p in model.parameters():
                p.zero_grad()
            model(Tensor(x)).sum().backward()

        clear_plans()
        step()
        with no_plans():
            step()
        planned = _count_numpy_allocations(step)
        with no_plans():
            reference = _count_numpy_allocations(step)
        # The backward still owns its escaping gradients (owned_* helpers),
        # so the planned count is nonzero — but the per-call pad/cols/dxp
        # scratch is gone.
        assert planned < reference, (
            f"planned train step allocates as much as the reference "
            f"({planned} vs {reference})"
        )


# --------------------------------------------------------------------------- #
# Runtime metrics surface
# --------------------------------------------------------------------------- #
class TestRuntimeMetrics:
    def test_plan_cache_and_workspace_stats(self, rng):
        from repro.models import resnet8

        model = resnet8(num_classes=4).eval()
        x = rng.normal(size=(2, 3, 8, 8))
        clear_plans()
        with no_grad():
            model(Tensor(x))
            first = plan_cache_stats()
            model(Tensor(x))
            second = plan_cache_stats()
        assert first["misses"] > 0  # cold run built every plan
        assert second["hits"] > first["hits"]  # warm run reused them
        assert second["misses"] == first["misses"]
        assert second["size"] == first["misses"]
        assert workspace_stats()["bytes_peak"] > 0


# --------------------------------------------------------------------------- #
# Benchmarks -> BENCH_workspace.json (+ regression gates at full sizes)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def bench_results():
    return run_workspace_benchmarks(smoke=SMOKE, repeats=3 if SMOKE else 5)


def test_workspace_benchmarks_emit_report(bench_results):
    report = build_workspace_report(bench_results, smoke=SMOKE)
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_workspace.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {path}")
    for name, seconds in bench_results.items():
        print(f"  {name:<26} {seconds:.6f}s")
    assert set(bench_results) >= set(PRE_PLANS_BASELINE)
    assert all(seconds > 0 for seconds in bench_results.values())


@pytest.mark.skipif(SMOKE, reason="smoke sizes are not comparable to the baseline")
@pytest.mark.parametrize(
    "workload,required",
    [("resnet56_step", 1.3), ("inference_batch", 1.5)],
)
def test_speedup_vs_pre_plan_baseline(bench_results, workload, required):
    """The PR's headline: >= 1.3x train step, >= 1.5x inference batch."""
    speedup = PRE_PLANS_BASELINE[workload] / bench_results[workload]
    assert speedup >= required, (
        f"{workload} regressed: {speedup:.2f}x vs the committed pre-plan "
        f"baseline ({PRE_PLANS_BASELINE[workload]:.4f}s -> "
        f"{bench_results[workload]:.4f}s, need >= {required}x)"
    )
