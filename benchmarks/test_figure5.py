"""Benchmark: regenerate Figure 5 (the §4.5 ablation study).

Shape check: the full AutoMC dominates each of its four ablated variants on
final hypervolume / best feasible accuracy (allowing noise-level slack).
"""

import pytest

from repro.experiments import run_figure5

from .conftest import write_report


@pytest.fixture(scope="module")
def figure5(config):
    return run_figure5(config)


def test_figure5_report(benchmark, figure5):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_report("figure5.txt", figure5.format())


def test_full_automc_dominates_variants(benchmark, config, figure5):
    """The paper's §4.5 claim: removing components hurts.

    The margins between the knowledge variants are fractions of a point, so
    strict near-dominance is only asserted at paper-scale budgets
    (REPRO_BENCH_HOURS >= 25); at quicker budgets search noise swamps them
    and only the large, robust effect — progressive search beats the RL
    controller — is checked.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for exp in ("Exp1", "Exp2"):
        full = figure5.of(exp, "AutoMC")
        assert full is not None
        non_progressive = figure5.of(exp, "AutoMC-ProgressiveSearch")
        assert non_progressive is not None
        assert full.best_accuracy >= non_progressive.best_accuracy - 0.002, (
            f"{exp}: progressive search lost to the RL variant"
        )
        if config.budget_hours < 25:
            continue
        wins = 0
        for variant in (
            "AutoMC-KG",
            "AutoMC-NNexp",
            "AutoMC-MultipleSource",
            "AutoMC-ProgressiveSearch",
        ):
            ablated = figure5.of(exp, variant)
            assert ablated is not None
            if full.best_accuracy >= ablated.best_accuracy - 0.002:
                wins += 1
        assert wins >= 3, f"{exp}: AutoMC only matched {wins}/4 variants"


def test_multiple_source_worst_on_quality(benchmark, config, figure5):
    """The single-method space cannot combine methods, so its best feasible
    scheme trails the multi-source one (asserted at paper-scale budgets,
    see test_full_automc_dominates_variants)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if config.budget_hours < 25:
        pytest.skip("needs REPRO_BENCH_HOURS >= 25 for stable margins")
    for exp in ("Exp1", "Exp2"):
        full = figure5.of(exp, "AutoMC")
        single = figure5.of(exp, "AutoMC-MultipleSource")
        assert full.best_accuracy >= single.best_accuracy - 0.002
