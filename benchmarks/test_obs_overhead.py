"""Benchmark: observability overhead on the hottest evaluator path.

The repro.obs acceptance bar is that the *default* (no tracer attached)
configuration shows no measurable slowdown: every instrumented hot path is
guarded by a single ``tracer.enabled`` attribute check against the shared
``NULL_TRACER``.  This bench times the memory-cache-hit path of
``SchemeEvaluator.evaluate`` — the cheapest, most-called operation and
therefore the one most sensitive to instrumentation — in three modes:

* ``null``     — default NULL_TRACER (what untraced users run);
* ``enabled``  — in-memory Tracer (events + counters, no disk);
* ``journal``  — Tracer streaming to a JSONL journal.
"""

import time

from repro.core import EvaluatorConfig, SurrogateEvaluator
from repro.data.tasks import EXP1, transfer_task
from repro.models import resnet20
from repro.obs import NULL_TRACER, RunJournal, Tracer, attach_tracer
from repro.space import CompressionScheme, StrategySpace

from .conftest import write_report

HITS = 2000


def _hit_evaluator():
    task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
    evaluator = SurrogateEvaluator(
        lambda: resnet20(num_classes=10), "resnet20", "cifar10", task,
        config=EvaluatorConfig(seed=0),
    )
    scheme = CompressionScheme((StrategySpace().of_method("C3")[4],))
    evaluator.evaluate(scheme)  # pay once; every further call is a memory hit
    return evaluator, scheme


def _time_hits(evaluator, scheme, n=HITS) -> float:
    """Median-of-5 seconds for n cache-hit evaluate() calls."""
    samples = []
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(n):
            evaluator.evaluate(scheme)
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return samples[len(samples) // 2]


def test_null_tracer_hit_path_overhead(benchmark, tmp_path):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    evaluator, scheme = _hit_evaluator()

    assert evaluator.tracer is NULL_TRACER
    null_s = _time_hits(evaluator, scheme)

    attach_tracer(evaluator, Tracer(keep_spans=10))
    enabled_s = _time_hits(evaluator, scheme)

    attach_tracer(evaluator, Tracer(journal=RunJournal(tmp_path / "b.jsonl"), keep_spans=10))
    journal_s = _time_hits(evaluator, scheme)
    evaluator.tracer.close()

    per_hit_ns = lambda s: 1e9 * s / HITS
    report = "\n".join([
        f"cache-hit evaluate() x{HITS}, median of 5 runs",
        f"  null tracer (default): {per_hit_ns(null_s):10.0f} ns/hit",
        f"  in-memory tracer:      {per_hit_ns(enabled_s):10.0f} ns/hit",
        f"  journaling tracer:     {per_hit_ns(journal_s):10.0f} ns/hit",
        f"  enabled/null ratio:    {enabled_s / null_s:10.2f}x",
        f"  journal/null ratio:    {journal_s / null_s:10.2f}x",
    ])
    write_report("obs_overhead.txt", report)

    # The default path must not be slower than tracing: the guard is one
    # attribute check.  2x headroom absorbs scheduler noise on CI boxes.
    assert null_s <= enabled_s * 2.0
    # And it must stay micro-fast in absolute terms (a real slowdown — e.g.
    # accidentally journaling by default — is orders of magnitude bigger).
    assert per_hit_ns(null_s) < 250_000  # < 0.25 ms per hit


def test_traced_search_results_identical_to_untraced(benchmark):
    """Tracing is purely observational: same schemes, same costs, same front."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.baselines import RandomSearch

    def run(trace: bool):
        evaluator, _ = _hit_evaluator()
        if trace:
            attach_tracer(evaluator, Tracer())
        return RandomSearch(
            evaluator, StrategySpace(), gamma=0.3, budget_hours=0.3, seed=0
        ).run()

    plain, traced = run(False), run(True)
    assert plain.total_cost == traced.total_cost
    assert plain.evaluations == traced.evaluations
    assert [r.scheme.identifier for r in plain.front] == [
        r.scheme.identifier for r in traced.front
    ]
