"""Shared benchmark configuration.

Budgets are controlled by environment variables so the same harness can run
quick CI sweeps or full paper-shaped reproductions:

    REPRO_BENCH_HOURS   simulated GPU-hours per search algorithm (default 8)
    REPRO_BENCH_GRID    grid-search evaluations per human method (default 36)
    REPRO_BENCH_SEED    seed (default 0)

Formatted outputs are written to ``benchmarks/out/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import ExperimentConfig

OUT_DIR = Path(__file__).parent / "out"


def bench_config() -> ExperimentConfig:
    return ExperimentConfig(
        budget_hours=float(os.environ.get("REPRO_BENCH_HOURS", "30")),
        grid_evals_per_method=int(os.environ.get("REPRO_BENCH_GRID", "36")),
        embedding_rounds=2,
        transr_epochs_per_round=2,
        nn_exp_epochs_per_round=15,
        sample_size=8,
        evals_per_round=8,
        candidate_subsample=4230,
        seed=int(os.environ.get("REPRO_BENCH_SEED", "0")),
    )


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return bench_config()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


def write_report(name: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def table2_result(config):
    """Table 2 searches are reused by the Table 3 / Figure 4 / 6 benches."""
    from repro.experiments import run_table2

    return run_table2(config)
