"""Benchmark: prefix-affinity scheduling + snapshot store vs flat dispatch.

The workload mirrors one progressive-search round: four unrelated parent
schemes (length 3) are evaluated first, the lanes are recycled (worker
model LRUs die — the cross-round reality PR 2 could not survive), then all
sixteen length-4 children arrive as one batch.

* **baseline** — PR 2-style engine: flat one-scheme-per-task dispatch, no
  snapshot store.  Every child replays its 3-step parent prefix from
  scratch: 16 x 4 = 64 steps.
* **prefix** — prefix-affinity groups + shared disk snapshot store: every
  child resumes its parent's trained model from disk and runs only its own
  final step: 16 x 1 = 16 steps.

The 4x step reduction is deterministic (counted, not timed), so the >= 2x
acceptance gate holds on any machine; the wall-clock gate is skipped under
``REPRO_BENCH_SMOKE=1``.  Both engines must produce bit-identical results
with identical charged simulated costs — the scheduler and the store only
move wall-clock.
"""

import json
import os
import time

from repro.core import EvaluationEngine, EvaluatorConfig, SurrogateEvaluator
from repro.data.tasks import EXP1, transfer_task
from repro.models import resnet20
from repro.space import CompressionScheme, StrategySpace

from .conftest import write_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
TASK = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)


def _make_evaluator(snapshot_dir=None):
    return SurrogateEvaluator(
        lambda: resnet20(num_classes=10),
        "resnet20",
        "cifar10",
        TASK,
        config=EvaluatorConfig(
            seed=0,
            snapshot_dir=None if snapshot_dir is None else str(snapshot_dir),
        ),
    )


def _workload():
    """4 unrelated length-3 parents, each with 4 length-4 children."""
    space = StrategySpace()
    c3 = space.of_method("C3")
    c2 = space.of_method("C2")
    c4 = space.of_method("C4")
    firsts = [c3[4], c3[8], c2[2], c3[11]]
    middle, last = c4[1], c2[5]
    parents = [CompressionScheme((f, middle, last)) for f in firsts]
    tails = [c3[16], c3[20], c4[3], c2[8]]
    children = [p.extend(t) for p in parents for t in tails]
    return parents, children


def _run_round(workers, snapshot_dir, prefix_affinity, parents, children):
    """Parents, lane recycle, then the child batch (timed + step-counted)."""
    engine = EvaluationEngine(
        _make_evaluator(snapshot_dir),
        workers=workers,
        prefix_affinity=prefix_affinity,
    )
    engine.evaluate_many(parents)
    engine.close()  # recycle lanes: in-memory model LRUs are gone
    steps_before = engine.steps_replayed
    t0 = time.perf_counter()
    results = engine.evaluate_many(children)
    wall_s = time.perf_counter() - t0
    stats = {
        "steps_replayed": engine.steps_replayed - steps_before,
        "wall_s": wall_s,
        "snapshot_hits": engine.snapshot_hits,
        "snapshot_steps_saved": engine.snapshot_steps_saved,
        "total_cost": engine.total_cost,
    }
    engine.close()
    return results, stats


def test_prefix_affinity_replays_fewer_steps(tmp_path):
    parents, children = _workload()
    workers = 2

    baseline_results, baseline = _run_round(
        workers, None, False, parents, children
    )
    prefix_results, prefix = _run_round(
        workers, tmp_path / "snapshots", True, parents, children
    )

    identical = all(
        a.scheme.identifier == b.scheme.identifier
        and a.accuracy == b.accuracy
        and a.params == b.params
        and a.cost == b.cost
        and a.step_costs == b.step_costs
        for a, b in zip(baseline_results, prefix_results)
    )
    reduction = baseline["steps_replayed"] / max(1, prefix["steps_replayed"])
    speedup = baseline["wall_s"] / prefix["wall_s"]

    report = {
        "workload": {
            "parents": len(parents),
            "children": len(children),
            "parent_length": parents[0].length,
            "workers": workers,
        },
        "baseline": {
            "dispatch": "flat (PR 2)",
            "steps_replayed": baseline["steps_replayed"],
            "wall_s": round(baseline["wall_s"], 3),
        },
        "prefix": {
            "dispatch": "prefix-affinity + snapshot store",
            "steps_replayed": prefix["steps_replayed"],
            "wall_s": round(prefix["wall_s"], 3),
            "snapshot_hits": prefix["snapshot_hits"],
            "snapshot_steps_saved": prefix["snapshot_steps_saved"],
        },
        "step_reduction": round(reduction, 2),
        "wall_clock_speedup": round(speedup, 2),
        "bit_identical": identical,
        "charged_cost_equal": baseline["total_cost"] == prefix["total_cost"],
        "smoke": SMOKE,
    }
    write_report("BENCH_engine.json", json.dumps(report, indent=2, sort_keys=True))

    assert identical, "scheduler/snapshots changed results"
    assert baseline["total_cost"] == prefix["total_cost"]
    # acceptance gate: >= 2x fewer replayed steps on the child round
    assert reduction >= 2.0, report
    if not SMOKE:
        # timing gate only off CI; step counts above are the robust signal
        assert speedup > 1.0, report
