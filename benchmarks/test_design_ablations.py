"""Design-choice ablations beyond the paper's §4.5 (DESIGN.md inventory).

The paper ablates its *components* (knowledge graph, experience, space,
search strategy); these benches ablate our *implementation decisions* on
Exp1 with a shared reduced budget:

* ``no-warmstart``   — F_mo starts cold instead of pre-trained on experience;
* ``no-stratified``  — H_sub sampling is pure Pareto/crowding (no PR strata);
* ``no-feasible``    — ParetoO selection drops the feasible-band bias.

Expectation (soft, noise-tolerant): the full configuration is at least as
good as each ablated one on best feasible accuracy, and the feasible-band
variants keep the ~40 block populated.
"""

import pytest

from repro.core.progressive import ProgressiveConfig, ProgressiveSearch
from repro.experiments.common import EXPERIMENTS, make_evaluator, pick_block
from repro.knowledge.embedding import EmbeddingConfig, learn_embeddings
from repro.knowledge.experience import default_experience
from repro.space import StrategySpace

from .conftest import write_report

_BUDGET = 15.0  # half the main-bench budget: 4 extra searches


@pytest.fixture(scope="module")
def design_runs(config):
    space = StrategySpace()
    embeddings = learn_embeddings(
        space,
        config=EmbeddingConfig(rounds=config.embedding_rounds, seed=config.seed),
    )
    model_name, dataset_name, task = EXPERIMENTS["Exp1"]

    variants = {
        "full": dict(),
        "no-warmstart": dict(experience=None),
        "no-stratified": dict(stratified_sampling=False),
        "no-feasible": dict(feasible_bias=False),
    }
    runs = {}
    for name, overrides in variants.items():
        progressive = ProgressiveConfig(
            sample_size=config.sample_size,
            evals_per_round=config.evals_per_round,
            candidate_subsample=config.candidate_subsample,
            stratified_sampling=overrides.get("stratified_sampling", True),
            feasible_bias=overrides.get("feasible_bias", True),
        )
        experience = overrides.get("experience", default_experience())
        searcher = ProgressiveSearch(
            make_evaluator(model_name, dataset_name, task, seed=config.seed),
            space,
            embeddings,
            gamma=0.3,
            budget_hours=_BUDGET,
            config=progressive,
            experience=experience,
            seed=config.seed,
        )
        runs[name] = searcher.run()
    return runs


def _best_feasible(run):
    best = run.best
    return best.accuracy if best else 0.0


def test_design_ablation_report(benchmark, design_runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Design ablations (Exp1, reduced budget) — best feasible accuracy"]
    for name, run in design_runs.items():
        b40 = pick_block(run.all_results, 0.30, 0.55, fallback=False)
        lines.append(
            f"  {name:<14s} best {100 * _best_feasible(run):6.2f}%  "
            f"~40-block {'populated' if b40 else 'EMPTY':<10s} "
            f"({run.evaluations} evals)"
        )
    write_report("design_ablations.txt", "\n".join(lines))


def test_full_config_not_dominated(benchmark, design_runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    full = _best_feasible(design_runs["full"])
    losses = sum(
        1
        for name, run in design_runs.items()
        if name != "full" and _best_feasible(run) > full + 0.004
    )
    assert losses <= 1, "full configuration beaten by >1 ablations"


def test_feasible_bias_populates_target_band(benchmark, design_runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    full40 = pick_block(design_runs["full"].all_results, 0.30, 0.55, fallback=False)
    assert full40 is not None, "full config left the ~40 band empty"
