"""Benchmark: regenerate Figure 4 (search trajectories + Pareto fronts).

Shape checks mirror §4.3's narrative:

* AutoMC ends with the best feasible accuracy on both experiments;
* Evolution is the strongest baseline at the end of the budget;
* Random keeps improving over time but stays behind.
"""

import pytest

from repro.experiments import run_figure4

from .conftest import write_report


@pytest.fixture(scope="module")
def figure4(config, table2_result):
    return run_figure4(config, searches=table2_result.search_results)


def _final_best(figure4, exp, algorithm):
    series = figure4.of(exp, algorithm)
    assert series is not None and series.trajectory
    return series.trajectory[-1][1]


def test_figure4_report(benchmark, figure4):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_report("figure4.txt", figure4.format())


def test_automc_ends_on_top(benchmark, figure4):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for exp in ("Exp1", "Exp2"):
        automc = _final_best(figure4, exp, "AutoMC")
        for rival in ("Evolution", "RL", "Random"):
            assert automc >= _final_best(figure4, exp, rival) - 0.004, (
                f"{exp}: AutoMC {automc:.4f} vs {rival} "
                f"{_final_best(figure4, exp, rival):.4f}"
            )


def test_random_improves_over_time(benchmark, figure4):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Random's best feasible accuracy is non-decreasing and grows."""
    for exp in ("Exp1", "Exp2"):
        series = figure4.of(exp, "Random")
        best = [point[1] for point in series.trajectory if point[1] > 0]
        assert best, f"Random never found a feasible scheme on {exp}"
        assert best[-1] >= best[0]


def test_fronts_nonempty(benchmark, figure4):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for series in figure4.series:
        assert series.front, f"{series.algorithm} on {series.experiment} has no front"
