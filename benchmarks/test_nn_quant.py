"""Perf-regression + correctness gate for the int8/fp16 inference fast path.

Mirrors ``test_nn_kernels.py`` for the quantized path:

* *correctness*: the int8 kernels must agree with an exact int32 reference
  (same quantized operands) and stay within quantization tolerance of the
  float32 fused path on a whole ResNet; fp16 storage must be nearly exact;
* *performance*: int8 inference must stay >= 1.5x faster than the float32
  fused path on the full-size workload (same model, batch and data — the
  baseline is measured in the same run, so the gate is machine-independent);
* *report*: ``BENCH_quant.json`` is written to ``benchmarks/out/`` so CI can
  upload it; ``benchmarks/BENCH_quant.json`` commits a reference run.

``REPRO_BENCH_SMOKE=1`` shrinks the workload; the perf gate is skipped there
because smoke-sized timings are dominated by Python dispatch.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.models import resnet8
from repro.nn import Tensor, no_grad
from repro.nn.bench import build_quant_report, run_quant_benchmarks
from repro.nn.quant import (
    quant_conv2d,
    quant_linear,
    quantize_activation,
    quantize_module,
    quantize_weight,
    quantized_bits,
)

from .conftest import OUT_DIR

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"


# --------------------------------------------------------------------------- #
# Int8 kernels match the exact int32 reference
# --------------------------------------------------------------------------- #
def _conv2d_int32_reference(xq, qweight, stride, padding):
    """Exact integer convolution of int8 operands, accumulated in int64."""
    n, c, h, w = xq.shape
    f, _, kh, kw = qweight.shape
    if padding:
        xq = np.pad(xq, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    ho = (h + 2 * padding - kh) // stride + 1
    wo = (w + 2 * padding - kw) // stride + 1
    out = np.zeros((n, f, ho, wo), dtype=np.int64)
    wi = qweight.astype(np.int64)
    xi = xq.astype(np.int64)
    for i in range(ho):
        for j in range(wo):
            patch = xi[:, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
            out[:, :, i, j] = np.einsum("ncij,fcij->nf", patch, wi)
    return out


class TestInt8KernelExactness:
    def test_quant_conv2d_matches_int32_reference(self, rng):
        x = rng.normal(size=(2, 5, 9, 9)).astype(np.float32)
        w = rng.normal(size=(4, 5, 3, 3)).astype(np.float32)
        qw, w_scale = quantize_weight(w)
        xq, x_scale = quantize_activation(x)
        got = quant_conv2d(
            Tensor(x), qw, w_scale, stride=2, padding=1, x_scale=x_scale
        ).data
        ref = _conv2d_int32_reference(xq, qw, stride=2, padding=1)
        expected = ref.astype(np.float64) * (x_scale * w_scale)[None, :, None, None]
        # float32-BLAS accumulation of int8 products is exact at this fan-in
        np.testing.assert_allclose(got, expected, rtol=1e-6, atol=1e-6)

    def test_quant_linear_matches_int32_reference(self, rng):
        x = rng.normal(size=(6, 40)).astype(np.float32)
        w = rng.normal(size=(7, 40)).astype(np.float32)
        qw, w_scale = quantize_weight(w)
        xq, x_scale = quantize_activation(x)
        got = quant_linear(Tensor(x), qw, w_scale, x_scale=x_scale).data
        ref = xq.astype(np.int64) @ qw.astype(np.int64).T
        expected = ref.astype(np.float64) * (x_scale * w_scale)[None, :]
        np.testing.assert_allclose(got, expected, rtol=1e-6, atol=1e-6)

    def test_fused_relu_and_bias(self, rng):
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        b = rng.normal(size=(4,)).astype(np.float32)
        qw, w_scale = quantize_weight(w)
        plain = quant_conv2d(Tensor(x), qw, w_scale, bias=b, padding=1).data
        fused = quant_conv2d(
            Tensor(x), qw, w_scale, bias=b, padding=1, activation="relu"
        ).data
        np.testing.assert_array_equal(fused, np.maximum(plain, 0.0))


# --------------------------------------------------------------------------- #
# Whole-model accuracy: quantized vs float32 on the same weights
# --------------------------------------------------------------------------- #
class TestQuantizedModelAccuracy:
    def _model_and_input(self, rng, batch=16):
        model = resnet8(num_classes=10).eval()
        x = rng.normal(size=(batch, 3, 16, 16)).astype(np.float32)
        return model, x

    def test_int8_close_to_float_and_argmax_agrees(self, rng):
        model, x = self._model_and_input(rng)
        with no_grad():
            ref = model(Tensor(x)).data
        quantize_module(model, mode="int8", calibration=[x])
        assert quantized_bits(model) == 8
        with no_grad():
            got = model(Tensor(x)).data
        rel = np.abs(got - ref).mean() / np.abs(ref).mean()
        assert rel < 0.10, f"int8 logits drifted {rel:.3f} relative from float32"
        agreement = (got.argmax(axis=1) == ref.argmax(axis=1)).mean()
        assert agreement >= 0.85, f"int8 argmax agreement {agreement:.2f}"

    def test_fp16_nearly_exact(self, rng):
        model, x = self._model_and_input(rng)
        with no_grad():
            ref = model(Tensor(x)).data
        quantize_module(model, mode="fp16")
        assert quantized_bits(model) == 16
        with no_grad():
            got = model(Tensor(x)).data
        rel = np.abs(got - ref).mean() / np.abs(ref).mean()
        assert rel < 5e-3, f"fp16 logits drifted {rel:.5f} relative from float32"

    def test_static_scales_close_to_dynamic(self, rng):
        model, x = self._model_and_input(rng)
        dynamic = resnet8(num_classes=10).eval()
        dynamic.load_state_dict(model.state_dict())
        quantize_module(model, mode="int8", calibration=[x])  # static scales
        quantize_module(dynamic, mode="int8")                 # per-batch scales
        with no_grad():
            a = model(Tensor(x)).data
            b = dynamic(Tensor(x)).data
        rel = np.abs(a - b).mean() / max(np.abs(b).mean(), 1e-12)
        assert rel < 0.05, f"calibrated scales diverge {rel:.3f} from dynamic"


# --------------------------------------------------------------------------- #
# Microbenchmarks -> BENCH_quant.json (+ speedup gate at full sizes)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def quant_results():
    return run_quant_benchmarks(smoke=SMOKE, repeats=3 if SMOKE else 5)


def test_quant_benchmarks_emit_report(quant_results):
    report = build_quant_report(quant_results, smoke=SMOKE)
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_quant.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {path}")
    for name, seconds in quant_results.items():
        print(f"  {name:<20} {seconds:.6f}s")
    assert set(quant_results) == {
        "inference_float32", "inference_fp16", "inference_int8"
    }
    assert all(seconds > 0 for seconds in quant_results.values())


@pytest.mark.skipif(SMOKE, reason="smoke sizes are not comparable")
def test_int8_speedup_vs_float32(quant_results):
    """The headline claim: int8 inference >= 1.5x the float32 fused path."""
    speedup = quant_results["inference_float32"] / quant_results["inference_int8"]
    assert speedup >= 1.5, (
        f"int8 regressed: {speedup:.2f}x vs same-run float32 "
        f"({quant_results['inference_float32']:.4f}s -> "
        f"{quant_results['inference_int8']:.4f}s)"
    )


@pytest.mark.skipif(SMOKE, reason="smoke sizes are not comparable")
def test_fp16_not_slower_than_float32(quant_results):
    """fp16 is storage-only; it must not materially slow inference down."""
    ratio = quant_results["inference_float32"] / quant_results["inference_fp16"]
    assert ratio >= 0.8, f"fp16 path slowed inference to {ratio:.2f}x of float32"
