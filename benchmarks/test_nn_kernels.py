"""Perf-regression suite for the repro.nn fast-path kernels.

Two layers of protection:

* *correctness*: the fused kernels (conv2d+relu, add_relu, batch_norm) must
  match the primitive-composed reference within float32 tolerance — a fused
  kernel that drifts is a bug even if it is fast;
* *performance*: the microbenchmarks re-run the workloads recorded in
  ``benchmarks/BENCH_nn.json`` and assert the committed >= 2x speedup on the
  two end-to-end workloads has not regressed.

``REPRO_BENCH_SMOKE=1`` (the CI setting) shrinks every shape so the suite
runs in seconds; the perf assertions are skipped there because smoke-sized
timings are dominated by Python dispatch, not kernels.  The JSON report is
written to ``benchmarks/out/BENCH_nn.json`` either way so CI can upload it.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.nn import Tensor, no_grad
from repro.nn import functional as F
from repro.nn.bench import PRE_FASTPATH_BASELINE, build_report, run_kernel_benchmarks

from .conftest import OUT_DIR

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

# float32 accumulation noise bound for the fused-vs-reference comparisons.
RTOL, ATOL = 1e-5, 1e-5


# --------------------------------------------------------------------------- #
# Fused kernels match the primitive composition
# --------------------------------------------------------------------------- #
class TestFusedMatchesReference:
    def test_conv2d_fused_relu(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        b = Tensor(rng.normal(size=(4,)))
        fused = F.conv2d(x, w, b, stride=1, padding=1, activation="relu")
        reference = F.conv2d(x, w, b, stride=1, padding=1).relu()
        np.testing.assert_allclose(fused.data, reference.data, rtol=RTOL, atol=ATOL)

    def test_conv2d_fused_relu_gradients(self, rng):
        x1 = Tensor(rng.normal(size=(2, 3, 6, 6)), requires_grad=True)
        w1 = Tensor(rng.normal(size=(4, 3, 3, 3)), requires_grad=True)
        x2 = Tensor(x1.data.copy(), requires_grad=True)
        w2 = Tensor(w1.data.copy(), requires_grad=True)
        F.conv2d(x1, w1, stride=1, padding=1, activation="relu").sum().backward()
        F.conv2d(x2, w2, stride=1, padding=1).relu().sum().backward()
        np.testing.assert_allclose(x1.grad, x2.grad, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(w1.grad, w2.grad, rtol=RTOL, atol=ATOL)

    def test_add_relu(self, rng):
        a = Tensor(rng.normal(size=(4, 8, 5, 5)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 8, 5, 5)), requires_grad=True)
        fused = F.add_relu(a, b)
        reference = (Tensor(a.data.copy()) + Tensor(b.data.copy())).relu()
        np.testing.assert_allclose(fused.data, reference.data, rtol=RTOL, atol=ATOL)

    def test_add_relu_gradients(self, rng):
        a1 = Tensor(rng.normal(size=(3, 4, 4, 4)), requires_grad=True)
        b1 = Tensor(rng.normal(size=(3, 4, 4, 4)), requires_grad=True)
        a2 = Tensor(a1.data.copy(), requires_grad=True)
        b2 = Tensor(b1.data.copy(), requires_grad=True)
        (F.add_relu(a1, b1) * 3.0).sum().backward()
        ((a2 + b2).relu() * 3.0).sum().backward()
        np.testing.assert_allclose(a1.grad, a2.grad, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(b1.grad, b2.grad, rtol=RTOL, atol=ATOL)

    def test_batch_norm_training(self, rng):
        x = rng.normal(size=(8, 5, 4, 4))
        gamma = rng.normal(size=(5,)) + 1.0
        beta = rng.normal(size=(5,))
        rmean, rvar = np.zeros(5, np.float32), np.ones(5, np.float32)
        out = F.batch_norm(
            Tensor(x), Tensor(gamma), Tensor(beta), rmean.copy(), rvar.copy(),
            training=True, eps=1e-5,
        )
        # Primitive-composed reference at float64.
        mean = x.mean(axis=(0, 2, 3), keepdims=True)
        var = x.var(axis=(0, 2, 3), keepdims=True)
        expected = (x - mean) / np.sqrt(var + 1e-5)
        expected = expected * gamma.reshape(1, -1, 1, 1) + beta.reshape(1, -1, 1, 1)
        np.testing.assert_allclose(out.data, expected, rtol=RTOL, atol=ATOL)

    def test_batch_norm_eval(self, rng):
        x = rng.normal(size=(8, 5, 4, 4))
        gamma = rng.normal(size=(5,)) + 1.0
        beta = rng.normal(size=(5,))
        rmean = rng.normal(size=(5,)).astype(np.float32)
        rvar = (rng.uniform(0.5, 2.0, size=(5,))).astype(np.float32)
        out = F.batch_norm(
            Tensor(x), Tensor(gamma), Tensor(beta), rmean, rvar,
            training=False, eps=1e-5,
        )
        expected = (x - rmean.reshape(1, -1, 1, 1)) / np.sqrt(
            rvar.reshape(1, -1, 1, 1).astype(np.float64) + 1e-5
        )
        expected = expected * gamma.reshape(1, -1, 1, 1) + beta.reshape(1, -1, 1, 1)
        np.testing.assert_allclose(out.data, expected, rtol=RTOL, atol=ATOL)

    def test_inference_matches_grad_mode(self, rng):
        from repro.models import resnet8

        model = resnet8(num_classes=4).eval()
        x = rng.normal(size=(2, 3, 8, 8))
        with_tape = model(Tensor(x)).data
        with no_grad():
            without_tape = model(Tensor(x)).data
        np.testing.assert_array_equal(with_tape, without_tape)


# --------------------------------------------------------------------------- #
# Microbenchmarks -> BENCH_nn.json (+ regression gate at full sizes)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def bench_results():
    return run_kernel_benchmarks(smoke=SMOKE, repeats=3 if SMOKE else 5)


def test_kernel_benchmarks_emit_report(bench_results):
    report = build_report(bench_results, smoke=SMOKE)
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_nn.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {path}")
    for name, seconds in bench_results.items():
        print(f"  {name:<20} {seconds:.6f}s")
    assert set(bench_results) == set(PRE_FASTPATH_BASELINE)
    assert all(seconds > 0 for seconds in bench_results.values())


@pytest.mark.skipif(SMOKE, reason="smoke sizes are not comparable to the baseline")
@pytest.mark.parametrize("workload", ["resnet56_step", "inference_batch"])
def test_speedup_vs_committed_baseline(bench_results, workload):
    """The headline claim: >= 2x over the pre-fast-path kernels."""
    speedup = PRE_FASTPATH_BASELINE[workload] / bench_results[workload]
    assert speedup >= 2.0, (
        f"{workload} regressed: {speedup:.2f}x vs the committed baseline "
        f"({PRE_FASTPATH_BASELINE[workload]:.4f}s -> {bench_results[workload]:.4f}s)"
    )
