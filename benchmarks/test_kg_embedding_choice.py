"""Design-choice bench: TransR (the paper's pick) vs TransE for G.

Rather than two full searches, this bench measures the embeddings directly:

* link-prediction quality on held-out triplets (mean reciprocal rank of the
  true tail among 200 sampled corruptions);
* downstream usefulness — the final NN_exp fit loss when enhancing each
  embedding table with the experience records.

Expected shape: TransR's relation-specific projections do no worse than
TransE on held-out ranking (the five relation types of G connect different
entity kinds, which is TransR's motivating case).
"""

import numpy as np
import pytest

from repro.knowledge import (
    TransE,
    TransEConfig,
    TransR,
    TransRConfig,
    build_knowledge_graph,
    default_experience,
    enhance_embeddings,
)
from repro.space import StrategySpace

from .conftest import write_report

_EPOCHS = 10


@pytest.fixture(scope="module")
def embedding_runs(config):
    space = StrategySpace()
    graph = build_knowledge_graph(space)
    rng = np.random.default_rng(config.seed)
    order = rng.permutation(len(graph.triplets))
    holdout = graph.triplets[order[:400]]
    train = graph.triplets[order[400:]]

    transr = TransR(graph.num_entities, graph.num_relations,
                    TransRConfig(seed=config.seed))
    transr.fit(train, epochs=_EPOCHS)
    transe = TransE(graph.num_entities, graph.num_relations,
                    TransEConfig(seed=config.seed))
    transe.fit(train, epochs=_EPOCHS)

    def mrr(model) -> float:
        ranks = []
        sample_rng = np.random.default_rng(0)
        for head, rel, tail in holdout[:150]:
            corrupt = sample_rng.integers(0, graph.num_entities, size=200)
            candidates = np.concatenate([[tail], corrupt])
            scores = model.score(
                np.full(len(candidates), head),
                np.full(len(candidates), rel),
                candidates,
            )
            ranks.append(1.0 / (1 + int((scores < scores[0]).sum())))
        return float(np.mean(ranks))

    strategy_ids = np.array(
        [graph.strategy_entities[s.identifier] for s in space], dtype=np.int64
    )
    records = default_experience()

    def downstream_loss(entities) -> float:
        result, _ = enhance_embeddings(
            entities[strategy_ids].copy(), space, records, epochs=30, seed=config.seed
        )
        return result.losses[-1]

    return {
        "TransR": {"mrr": mrr(transr), "nn_exp_loss": downstream_loss(transr.entities)},
        "TransE": {"mrr": mrr(transe), "nn_exp_loss": downstream_loss(transe.entities)},
    }


def test_kg_embedding_report(benchmark, embedding_runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["KG embedding choice (held-out link prediction + NN_exp fit)"]
    for name, metrics in embedding_runs.items():
        lines.append(
            f"  {name}: MRR {metrics['mrr']:.3f}   "
            f"final NN_exp loss {metrics['nn_exp_loss']:.4f}"
        )
    write_report("kg_embedding_choice.txt", "\n".join(lines))


def test_transr_competitive_on_heldout(benchmark, embedding_runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert embedding_runs["TransR"]["mrr"] >= 0.5 * embedding_runs["TransE"]["mrr"]


def test_both_embeddings_enhanceable(benchmark, embedding_runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, metrics in embedding_runs.items():
        assert np.isfinite(metrics["nn_exp_loss"])
        assert metrics["nn_exp_loss"] < 1.0
