"""Benchmark: regenerate Table 2 (compression results on Exp1 and Exp2).

Checks the paper's qualitative shape, not its absolute numbers:

* every human method loses accuracy at PR 70 relative to PR 40 (except LFB
  on ResNet-56, which the paper also shows improving);
* LMA collapses when used standalone; LeGR is the gentlest at PR 40;
* AutoMC's best feasible scheme beats every human method and every AutoML
  baseline on accuracy within its block.
"""

import pytest

from .conftest import write_report


@pytest.fixture(scope="module")
def table2(table2_result):
    return table2_result


def test_table2_report(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_report("table2.txt", table2.format())
    from repro.experiments.export import table2_to_dict, write_json

    from .conftest import OUT_DIR

    write_json(table2_to_dict(table2), str(OUT_DIR / "table2.json"))


def test_paper_comparison_report(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.experiments import compare_table2, format_comparison

    rows = compare_table2(table2)
    write_report("table2_vs_paper.txt", format_comparison(rows))
    # Human-method rows are anchored to the paper, so they must track it
    # closely (the AutoML rows legitimately differ more — different search
    # trajectories on a different substrate).
    human = {"LMA", "LeGR", "NS", "SFP", "HOS", "LFB"}
    deltas = [abs(r.delta) for r in rows if r.algorithm in human and r.delta is not None]
    assert deltas, "no human rows measured"
    assert sum(d < 3.0 for d in deltas) >= 0.8 * len(deltas), (
        "human-method accuracies drifted from the paper anchors"
    )


def test_human_methods_rank_like_paper_exp1(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    block40 = {
        row.algorithm: row.result
        for row in table2.rows
        if row.experiment == "Exp1" and row.block == "~40" and row.result
    }
    # LMA is by far the worst standalone method (paper: 79.61 vs 88+).
    assert block40["LMA"].accuracy < min(
        block40[m].accuracy for m in ("LeGR", "NS", "SFP", "HOS", "LFB")
    ) - 0.02
    # LeGR is the gentlest pruner at PR 40 (paper: 90.69).
    assert block40["LeGR"].accuracy == max(
        block40[m].accuracy for m in ("LeGR", "NS", "SFP", "LFB")
    )


def test_legr_hos_crossover(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Paper §4.2: LeGR > HOS at PR 40 but HOS > LeGR at PR 70 (Exp1)."""
    b40 = {r.algorithm: r.result for r in table2.rows
           if r.experiment == "Exp1" and r.block == "~40" and r.result}
    b70 = {r.algorithm: r.result for r in table2.rows
           if r.experiment == "Exp1" and r.block == "~70" and r.result}
    assert b40["LeGR"].accuracy > b40["HOS"].accuracy
    assert b70["HOS"].accuracy > b70["LeGR"].accuracy


def test_automc_beats_baselines(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """AutoMC's feasible scheme tops each experiment's ~40 block."""
    for exp in ("Exp1", "Exp2"):
        block = {
            row.algorithm: row.result
            for row in table2.rows
            if row.experiment == exp and row.block == "~40" and row.result
        }
        automc = block.get("AutoMC")
        assert automc is not None, f"AutoMC produced no feasible scheme on {exp}"
        others = [acc for name, r in block.items() if name != "AutoMC"
                  for acc in [r.accuracy]]
        assert automc.accuracy >= max(others) - 0.004, (
            f"{exp}: AutoMC {automc.accuracy:.4f} vs best other {max(others):.4f}"
        )


def test_automc_accuracy_above_baseline_exp1(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The paper's headline: AutoMC *improves* accuracy while compressing."""
    automc = table2.lookup("Exp1", "~40", "AutoMC")
    assert automc is not None
    assert automc.ar > 0.0
