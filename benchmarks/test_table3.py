"""Benchmark: regenerate Table 3 (the §4.4 transfer study).

Shape checks:

* LFB wins on ResNet-20 but collapses on ResNet-164 (the paper's headline
  transfer observation);
* AutoMC's transferred scheme beats the human methods on (almost) every
  model — the paper allows the single LFB/ResNet-20 exception.
"""

import pytest

from repro.experiments import run_table3

from .conftest import write_report


@pytest.fixture(scope="module")
def table3(config, table2_result):
    return run_table3(config, table2=table2_result)


def test_table3_report(benchmark, table3):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_report("table3.txt", table3.format())
    from repro.experiments.export import table3_to_dict, write_json

    from .conftest import OUT_DIR

    write_json(table3_to_dict(table3), str(OUT_DIR / "table3.json"))


def test_lfb_small_model_talent(benchmark, table3):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lfb20 = table3.lookup("LFB", "resnet20")
    lfb164 = table3.lookup("LFB", "resnet164")
    assert lfb20 is not None and lfb164 is not None
    # LFB's accuracy decays dramatically with model depth (91.57 -> 24.17).
    assert lfb20.accuracy > lfb164.accuracy + 0.3

    others20 = [
        table3.lookup(m, "resnet20").accuracy
        for m in ("LMA", "LeGR", "NS", "SFP", "HOS")
    ]
    assert lfb20.accuracy > max(others20)


def test_automc_transfers_well(benchmark, table3):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """AutoMC beats the human methods on transfer targets (LFB/ResNet-20
    excepted, as in the paper)."""
    human = ("LMA", "LeGR", "NS", "SFP", "HOS", "LFB")
    for model in ("resnet164", "vgg13", "vgg19"):
        automc = table3.lookup("AutoMC", model)
        assert automc is not None, f"no transferred AutoMC scheme for {model}"
        best_human = max(
            table3.lookup(m, model).accuracy
            for m in human
            if table3.lookup(m, model) is not None
        )
        assert automc.accuracy >= best_human - 0.01, (
            f"{model}: AutoMC {automc.accuracy:.4f} vs best human {best_human:.4f}"
        )


def test_transferred_schemes_meet_target(benchmark, table3):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for model in ("resnet20", "resnet164", "vgg13", "vgg19"):
        automc = table3.lookup("AutoMC", model)
        if automc is not None:
            assert automc.pr >= 0.25  # relative budgets transfer across scales
