"""Tests for scheme parsing, experience JSON persistence, and JSON export."""

import json

import pytest

from repro.core.evaluator import SurrogateEvaluator
from repro.data.tasks import EXP1, transfer_task
from repro.experiments.export import (
    result_to_dict,
    search_to_dict,
    write_json,
)
from repro.knowledge import (
    default_experience,
    load_experience,
    record_from_dict,
    record_to_dict,
    save_experience,
)
from repro.models import resnet20
from repro.space import START, StrategySpace


class TestSchemeParsing:
    def test_strategy_roundtrip(self, space):
        for index in (0, 321, 3000):
            strategy = space[index]
            parsed = space.parse_strategy(strategy.identifier)
            assert parsed is strategy

    def test_scheme_roundtrip(self, space):
        scheme = START.extend(space[10]).extend(space[2000])
        parsed = space.parse_scheme(scheme.identifier)
        assert parsed.identifier == scheme.identifier

    def test_start_parses_to_empty(self, space):
        assert space.parse_scheme("START").is_empty
        assert space.parse_scheme("").is_empty

    def test_numeric_value_normalisation(self, space):
        parsed = space.parse_strategy("C3[HP1=0.50,HP2=0.2000,HP6=0.9]")
        assert parsed.hp == {"HP1": 0.5, "HP2": 0.2, "HP6": 0.9}

    def test_malformed_raises(self, space):
        with pytest.raises(ValueError):
            space.parse_strategy("C3 HP1=0.5")
        with pytest.raises(ValueError):
            space.parse_strategy("C3[HP99=1]")
        with pytest.raises(ValueError):
            space.parse_strategy("C3[HP1=0.123]")  # value off-grid


class TestExperiencePersistence:
    def test_roundtrip(self, tmp_path):
        records = default_experience()[:10]
        path = str(tmp_path / "experience.json")
        save_experience(records, path)
        loaded = load_experience(path)
        assert len(loaded) == 10
        for original, parsed in zip(records, loaded):
            assert parsed.method_label == original.method_label
            assert parsed.pr == pytest.approx(original.pr)
            assert parsed.ar == pytest.approx(original.ar)
            assert parsed.task.name == original.task.name
            assert dict(parsed.hp) == dict(original.hp)

    def test_record_validation(self):
        good = record_to_dict(default_experience()[0])
        record_from_dict(good)  # no raise
        bad = dict(good)
        bad["pr"] = 1.5
        with pytest.raises(ValueError, match="pr must be"):
            record_from_dict(bad)
        bad = dict(good)
        del bad["task"]
        with pytest.raises(ValueError, match="missing 'task'"):
            record_from_dict(bad)

    def test_non_list_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"method": "C1"}')
        with pytest.raises(ValueError, match="JSON list"):
            load_experience(str(path))

    def test_loaded_records_usable_for_matching(self, tmp_path, space):
        from repro.knowledge import nearest_strategy

        path = str(tmp_path / "experience.json")
        save_experience(default_experience()[:5], path)
        for record in load_experience(path):
            assert nearest_strategy(space, record) is not None


class TestJsonExport:
    def test_result_export_fields(self, space):
        task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
        evaluator = SurrogateEvaluator(
            lambda: resnet20(num_classes=10), "resnet20", "cifar10", task, seed=0
        )
        result = evaluator.evaluate(START.extend(space.of_method("C3")[0]))
        payload = result_to_dict(result)
        assert set(payload) == {
            "scheme", "length", "params", "flops", "accuracy", "pr", "fr", "ar"
        }
        json.dumps(payload)  # serialisable

    def test_none_result(self):
        assert result_to_dict(None) is None

    def test_search_export(self, space):
        from repro.baselines import RandomSearch

        task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
        evaluator = SurrogateEvaluator(
            lambda: resnet20(num_classes=10), "resnet20", "cifar10", task, seed=0
        )
        search = RandomSearch(
            evaluator, StrategySpace(method_labels=["C3"]),
            gamma=0.2, budget_hours=0.4, seed=0,
        ).run()
        payload = search_to_dict(search)
        assert payload["algorithm"] == "Random"
        assert payload["evaluations"] == search.evaluations
        json.dumps(payload)

    def test_write_json(self, tmp_path):
        path = str(tmp_path / "out.json")
        write_json({"hello": [1, 2, 3]}, path)
        assert json.load(open(path)) == {"hello": [1, 2, 3]}
