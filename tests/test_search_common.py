"""Tests for the shared SearchStrategy infrastructure."""

import pytest

from repro.baselines import RandomSearch
from repro.core.evaluator import SurrogateEvaluator
from repro.core.search import SearchStrategy
from repro.data.tasks import EXP1, transfer_task
from repro.models import resnet20
from repro.space import START, StrategySpace


def _searcher(budget=0.5, seed=0, space=None):
    task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
    evaluator = SurrogateEvaluator(
        lambda: resnet20(num_classes=10), "resnet20", "cifar10", task, seed=0
    )
    return RandomSearch(
        evaluator, space or StrategySpace(method_labels=["C3", "C4"]),
        gamma=0.2, budget_hours=budget, seed=seed,
    )


class TestRandomScheme:
    def test_length_bounds(self):
        searcher = _searcher()
        for _ in range(30):
            scheme = searcher.random_scheme()
            assert 0 <= scheme.length <= searcher.max_length

    def test_nominal_pr_capped(self):
        searcher = _searcher()
        for _ in range(30):
            assert searcher.random_scheme(max_pr=0.5).total_param_step <= 0.5 + 1e-9


class TestRecord:
    def test_empty_history_point(self):
        searcher = _searcher()
        point = searcher.record()
        assert point.best_accuracy == 0.0
        assert point.hypervolume == 0.0
        assert point.front_size == 0

    def test_point_after_evaluations(self):
        searcher = _searcher()
        strategy = next(s for s in searcher.space if s.param_step >= 0.2)
        searcher.evaluator.evaluate(START.extend(strategy))
        point = searcher.record()
        assert point.evaluations == 1
        assert point.front_size == 1
        assert point.best_accuracy > 0  # PR >= gamma, so feasible

    def test_infeasible_only_history(self):
        searcher = _searcher()
        strategy = min(searcher.space, key=lambda s: s.param_step)  # 0.04
        searcher.evaluator.evaluate(START.extend(strategy))
        point = searcher.record()
        assert point.best_accuracy == 0.0  # nothing meets gamma yet
        assert point.hypervolume > 0  # but the front exists

    def test_budget_left(self):
        searcher = _searcher(budget=1.0)
        assert searcher.budget_left() == pytest.approx(1.0)
        searcher.evaluator.evaluate(START.extend(searcher.space[0]))
        assert searcher.budget_left() < 1.0


class TestFinish:
    def test_finish_collects_everything(self):
        searcher = _searcher(budget=0.4)
        result = searcher.run()
        assert result.all_results
        assert all(not r.scheme.is_empty for r in result.all_results)
        assert result.total_cost == searcher.evaluator.total_cost
        feasible = [r for r in result.all_results if r.pr >= 0.2]
        if feasible:
            assert result.best is not None
        else:
            assert result.best is None
