"""End-to-end tests for search-as-a-service (`repro serve` / repro.serve).

The suite proves the multi-tenant claims of the serving PR:

* **concurrency** — the daemon sustains two live jobs at once (proven by
  cancelling a long job *after* a short one submitted later has already
  completed: the cancellation could only land on a still-running job);
* **cross-job dedup** — a second tenant re-searching an overlapping scheme
  space reuses the first tenant's work from the shared tiers: finished
  evaluations from the shared result cache (``cache_foreign_hits > 0``),
  prefix replays from the snapshot store (``snapshot_foreign_hits``) for
  anything not yet cached;
* **bit-identity** — a served job's result (total cost, evaluation count,
  rounds, Pareto front) equals a solo in-process ``AutoMC.search()`` with
  the same spec, for every solver exercised — sharing changes wall-clock
  only, never results;
* **fault isolation** — a killed worker lane surfaces as a typed
  ``WorkerError`` (job failed + resumable) while the pool revives the lane
  and other jobs complete; a SIGTERM'd daemon restarts on the same state
  dir and recovers its job table, in-flight jobs marked
  ``interrupted``/resumable;
* **accounting invariant** — ``proposals_total == proposals_pruned +
  evaluated_proposals`` holds per job under interleaved multi-job
  scheduling (hypothesis property test).
"""

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import AutoMC
from repro.core.config import EvaluatorConfig
from repro.core.engine import EvaluationEngine, LanePool, WorkerError
from repro.data.tasks import EXP1, transfer_task
from repro.serve import (
    JobScheduler,
    JobSpec,
    JobTable,
    ServeClient,
    ServeDaemon,
    ServerError,
)
from repro.serve.jobs import JOBS_JOURNAL
from repro.serve.protocol import (
    ProtocolError,
    endpoint_path,
    read_endpoint,
    recv_message,
    remove_endpoint,
    send_message,
    write_endpoint,
)
from repro.space import CompressionScheme, StrategySpace

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

#: small scheme space shared by every job in the suite — two tenants over
#: the same space are guaranteed overlapping prefixes
METHODS = ["C3", "C4"]

#: per-solver settings keeping every served search in the seconds range
#: (plain JSON — they cross the wire inside the job spec)
SERVE_SOLVER_KWARGS = {
    "sa": {"chains": 2},
    "regevo": {"population_size": 4, "tournament_size": 2, "children_per_round": 3},
}

#: the bit-identity matrix: three solvers with distinct proposal dynamics
BIT_IDENTICAL_SOLVERS = ["random", "sa", "regevo"]


def evaluator_payload(seed=3):
    task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
    return EvaluatorConfig(
        model_name="resnet20", dataset_name="cifar10", task=task, seed=seed
    ).to_payload()


def make_spec(solver="random", tenant="alice", seed=3, budget_hours=0.8, **over):
    fields = dict(
        evaluator=evaluator_payload(seed),
        solver=solver,
        tenant=tenant,
        gamma=0.2,
        budget_hours=budget_hours,
        max_length=4,
        seed=seed,
        method_labels=list(METHODS),
        solver_kwargs=dict(SERVE_SOLVER_KWARGS.get(solver, {})),
    )
    fields.update(over)
    return JobSpec(**fields)


def reference_search(spec, cache_dir=None):
    """The same search run solo and in-process — the bit-identity oracle.

    ``cache_dir`` reproduces a warm-start: a served job that reuses another
    job's cached results must equal a solo run against the same cache state
    (pass a *copy* of the daemon's cache tree so the oracle run does not
    write into it).
    """
    automc = AutoMC(
        spec.build_config().build(),
        space=spec.build_space(),
        solver=spec.solver,
        gamma=spec.gamma,
        budget_hours=spec.budget_hours,
        max_length=spec.max_length,
        seed=spec.seed,
        solver_kwargs=dict(spec.solver_kwargs),
        cache_dir=cache_dir,
    )
    return automc.search()


def assert_matches_reference(payload, ref):
    """Served result payload == solo SearchResult, bit for bit."""
    assert payload["total_cost"] == ref.total_cost  # exact float equality
    assert payload["evaluations"] == ref.evaluations
    assert payload["rounds"] == ref.rounds
    served_front = [
        (p["identifier"], p["params"], p["flops"], p["accuracy"], p["cost"])
        for p in payload["pareto"]
    ]
    expected_front = [
        (r.scheme.identifier, r.params, r.flops, r.accuracy, r.cost)
        for r in ref.pareto
    ]
    assert served_front == expected_front
    assert payload["solver_stats"] == ref.solver_stats


def wait_until(predicate, timeout=60.0, interval=0.05, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


# --------------------------------------------------------------------------- #
class TestWireProtocol:
    def _pipe(self):
        a, b = socket.socketpair()
        return a.makefile("rwb"), b.makefile("rwb"), a, b

    def test_round_trip(self):
        out, inp, a, b = self._pipe()
        with a, b:
            message = {"op": "submit", "spec": {"seed": 7}, "n": [1, 2, 3]}
            send_message(out, message)
            assert recv_message(inp) == message

    def test_clean_eof_returns_none(self):
        out, inp, a, b = self._pipe()
        with b:
            out.close()  # the makefile holds the last fd reference
            a.close()
            assert recv_message(inp) is None

    def test_truncated_line_is_eof_not_garbage(self):
        out, inp, a, b = self._pipe()
        with b:
            out.write(b'{"op": "sub')  # peer died mid-write
            out.close()
            a.close()
            assert recv_message(inp) is None

    @pytest.mark.parametrize("line", [b"not json\n", b"[1, 2]\n", b"42\n"])
    def test_malformed_lines_raise_protocol_error(self, line):
        out, inp, a, b = self._pipe()
        with a, b:
            out.write(line)
            out.flush()
            with pytest.raises(ProtocolError):
                recv_message(inp)

    def test_endpoint_file_lifecycle(self, tmp_path):
        write_endpoint(tmp_path, "127.0.0.1", 4321)
        endpoint = read_endpoint(tmp_path)
        assert endpoint["host"] == "127.0.0.1"
        assert endpoint["port"] == 4321
        assert endpoint["pid"] == os.getpid()
        remove_endpoint(tmp_path)
        assert not endpoint_path(tmp_path).exists()
        with pytest.raises(FileNotFoundError):
            read_endpoint(tmp_path)


# --------------------------------------------------------------------------- #
class TestJobSpec:
    def test_payload_round_trip(self):
        spec = make_spec(solver="sa", tenant="bob", seed=5)
        assert JobSpec.from_payload(json.loads(json.dumps(spec.to_payload()))) == spec

    def test_unknown_fields_rejected(self):
        payload = make_spec().to_payload()
        payload["frobnicate"] = True
        with pytest.raises(ValueError, match="frobnicate"):
            JobSpec.from_payload(payload)

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError, match="unknown solver"):
            make_spec(solver="gradient-descent").validate()

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError, match="budget_hours"):
            make_spec(budget_hours=0.0).validate()


# --------------------------------------------------------------------------- #
class TestJobTableRecovery:
    def test_restart_recovers_states_and_marks_inflight_interrupted(self, tmp_path):
        table = JobTable(tmp_path)
        done = table.create(make_spec(tenant="done"))
        table.transition(done.job_id, "running")
        table.transition(done.job_id, "completed", result={"total_cost": 1.5})
        inflight = table.create(make_spec(tenant="inflight"))
        table.transition(inflight.job_id, "running")
        table.progress(inflight.job_id, rounds=2, evaluations=7,
                       total_cost=0.4, pareto=[])
        table.close()  # the daemon dies here

        recovered = JobTable.recover(tmp_path)
        a = recovered.get(done.job_id)
        assert a.state == "completed"
        assert a.result == {"total_cost": 1.5}
        assert not a.resumable
        b = recovered.get(inflight.job_id)
        assert b.state == "interrupted"
        assert b.resumable
        assert (b.rounds, b.evaluations, b.total_cost) == (2, 7, 0.4)
        assert b.spec == make_spec(tenant="inflight")
        # ids stay monotonic across the restart
        assert recovered.create(make_spec()).job_id not in {a.job_id, b.job_id}
        recovered.close()

    def test_truncated_and_corrupt_journal_lines_are_skipped(self, tmp_path):
        table = JobTable(tmp_path)
        job = table.create(make_spec())
        table.transition(job.job_id, "running")
        table.transition(job.job_id, "completed", result={"total_cost": 0.9})
        table.close()
        with open(tmp_path / JOBS_JOURNAL, "a", encoding="utf-8") as handle:
            handle.write("this is not json\n")
            handle.write('{"event": "running", "job_id":')  # crash-torn line

        recovered = JobTable.recover(tmp_path)
        assert recovered.get(job.job_id).state == "completed"
        recovered.close()

    def test_second_restart_sees_interrupted_as_terminal(self, tmp_path):
        table = JobTable(tmp_path)
        job = table.create(make_spec())
        table.transition(job.job_id, "running")
        table.close()
        once = JobTable.recover(tmp_path)
        assert once.get(job.job_id).state == "interrupted"
        once.close()
        twice = JobTable.recover(tmp_path)
        # interrupted was journalled by the first recovery: no re-transition
        record = twice.get(job.job_id)
        assert record.state == "interrupted"
        assert record.resumable
        twice.close()


# --------------------------------------------------------------------------- #
def _fresh_engine(pool=None, seed=0):
    spec = make_spec(seed=seed)
    return EvaluationEngine(spec.build_config().build(), lane_pool=pool)


def _schemes():
    space = StrategySpace(method_labels=METHODS)
    c3 = space.of_method("C3")
    base = CompressionScheme((c3[0],))
    return [base, base.extend(c3[1])]


class TestLanePoolFaults:
    def test_pool_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            LanePool(0)

    def test_lane_death_is_typed_survivable_and_revived(self):
        schemes = _schemes()
        with LanePool(1) as pool:
            (pid,) = pool.prestart()
            engine = _fresh_engine(pool)
            os.kill(pid, signal.SIGKILL)
            # two schemes: single-scheme batches take the serial in-parent
            # shortcut and would never touch the dead lane
            with pytest.raises(WorkerError) as excinfo:
                engine.evaluate_many(schemes)
            assert excinfo.value.cause_type == "WorkerLaneDied"
            assert excinfo.value.scheme_id == schemes[0].identifier
            assert len(excinfo.value.failures) == len(schemes)
            assert pool.lane_restarts >= 1
            # the revived lane evaluates the same batch bit-identically
            revived = engine.evaluate_many(schemes)
            serial = _fresh_engine().evaluate_many(schemes)
            for a, b in zip(revived, serial):
                assert (a.scheme.identifier, a.accuracy, a.cost) == (
                    b.scheme.identifier, b.accuracy, b.cost
                )
            engine.close()
            assert pool.stats()["live_lanes"] == 1  # borrowed pool survives

    def test_shared_pool_outlives_borrowing_engines(self):
        schemes = _schemes()
        serial = _fresh_engine().evaluate_many(schemes)
        with LanePool(2) as pool:
            first = _fresh_engine(pool)
            results_a = first.evaluate_many(schemes)
            first.close()  # must not tear down the borrowed pool
            second = _fresh_engine(pool)
            results_b = second.evaluate_many(schemes)
            second.close()
            for got in (results_a, results_b):
                for a, b in zip(got, serial):
                    assert (a.scheme.identifier, a.accuracy, a.cost) == (
                        b.scheme.identifier, b.accuracy, b.cost
                    )
            assert pool.stats()["workers"] == 2
        with pytest.raises(RuntimeError):
            pool.lane_pids()  # closed pools refuse work

    def test_scheduler_isolates_lane_death_to_one_job(self, tmp_path):
        """Job A fails typed + resumable on a dead lane; job B completes."""
        scheduler = JobScheduler(
            tmp_path, workers=1, job_journals=False, recover=False
        )
        try:
            (pid,) = scheduler.lane_pool.prestart()
            os.kill(pid, signal.SIGKILL)
            doomed = scheduler.submit(make_spec(tenant="doomed", seed=11))
            record = scheduler.wait(doomed.job_id, timeout=120.0)
            assert record.state == "failed"
            assert record.error["type"] == "WorkerError"
            assert record.error["cause_type"] == "WorkerLaneDied"
            assert record.resumable  # a resubmit resumes from snapshots
            assert scheduler.lane_pool.lane_restarts >= 1
            healthy = scheduler.submit(make_spec(tenant="healthy", seed=11))
            record = scheduler.wait(healthy.job_id, timeout=120.0)
            assert record.state == "completed"
        finally:
            scheduler.close()


# --------------------------------------------------------------------------- #
class TestConcurrentProfiling:
    def test_fingerprints_agree_across_threads(self):
        """Regression: the FLOP-profiling sink was process-global, so two
        jobs building evaluators concurrently interleaved each other's
        forward-pass counts — divergent base FLOPs, divergent fingerprints,
        and a silently *split* snapshot store (zero cross-job dedup)."""
        import threading

        fingerprints = {}

        def build(name):
            evaluator = make_spec(seed=7).build_config().build()
            fingerprints[name] = (evaluator.fingerprint(), evaluator.base_flops)

        threads = [
            threading.Thread(target=build, args=(f"t{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(fingerprints.values())) == 1


# --------------------------------------------------------------------------- #
class TestServeEndToEnd:
    @pytest.mark.parametrize("solver", BIT_IDENTICAL_SOLVERS)
    def test_two_tenants_dedup_snapshots_and_stay_bit_identical(
        self, tmp_path, solver
    ):
        """The PR's core acceptance: tenants share finished work, not state.

        Tenant alice runs first against empty shared tiers; tenant bob then
        re-searches the same space through the same daemon and must
        (a) reuse alice's finished evaluations straight from the shared
        result cache (``cache_foreign_hits > 0`` — the cache sits above the
        snapshot store, so identical schemes never even replay) and
        (b) still produce the *exact* result a solo ``AutoMC.search()``
        produces against the same cache state — cached hits pay no
        simulated GPU-hours, so bob's search legitimately stretches its
        budget further than a cold run; the oracle for bob is therefore a
        solo run warm-started from a *copy* of alice's cache tree.
        """
        spec = make_spec(solver=solver, tenant="alice", seed=3)
        ref_cold = reference_search(spec)
        with ServeDaemon(tmp_path, workers=0, max_jobs=2):
            client = ServeClient(state_dir=tmp_path)
            job_a = client.submit(spec)
            final_a = client.wait(job_a["job_id"])
            assert final_a["state"] == "completed"
            assert final_a["result"]["snapshot_foreign_hits"] == 0
            assert final_a["result"]["cache_foreign_hits"] == 0
            assert_matches_reference(final_a["result"], ref_cold)

            # the warm oracle: same search, solo, against a snapshot of the
            # shared cache exactly as bob will find it
            oracle_cache = tmp_path / "oracle-cache"
            shutil.copytree(tmp_path / "cache", oracle_cache)
            ref_warm = reference_search(spec, cache_dir=str(oracle_cache))

            job_b = client.submit(make_spec(solver=solver, tenant="bob", seed=3))
            final_b = client.wait(job_b["job_id"])
            assert final_b["state"] == "completed"
            # bob's evaluations come straight from alice's cached results
            assert final_b["result"]["cache_foreign_hits"] > 0
            assert (
                final_b["result"]["cache_hits"]
                >= final_b["result"]["cache_foreign_hits"]
            )
            assert_matches_reference(final_b["result"], ref_warm)

    def test_concurrent_jobs_overlap_and_short_job_dedups_long_one(self, tmp_path):
        """Two jobs live at once; cancellation proves the overlap.

        The long job is cancelled only *after* the short job (submitted
        later) completed — a terminal state of ``cancelled`` is therefore
        proof the two jobs ran concurrently, with no wall-clock guessing.
        """
        with ServeDaemon(tmp_path, workers=0, max_jobs=2):
            client = ServeClient(state_dir=tmp_path)
            marathon = client.submit(
                make_spec(tenant="marathon", seed=7, budget_hours=500.0)
            )
            wait_until(
                lambda: client.status(marathon["job_id"])["rounds"] >= 1,
                message="the long job's first round",
            )
            sprint = client.submit(make_spec(tenant="sprint", seed=7))
            final_sprint = client.wait(sprint["job_id"])
            assert final_sprint["state"] == "completed"
            # the marathon had written round-1 results/snapshots before the
            # sprint started: cross-job dedup works between *live* jobs too
            # (cached full evaluations first, prefix replays for the rest)
            assert (
                final_sprint["result"]["cache_foreign_hits"]
                + final_sprint["result"]["snapshot_foreign_hits"]
            ) > 0

            client.cancel(marathon["job_id"])
            final_marathon = client.wait(marathon["job_id"])
            assert final_marathon["state"] == "cancelled"
            assert final_marathon["result"] is not None  # partial result kept
            assert final_marathon["rounds"] >= 1

            states = {j["job_id"]: j["state"] for j in client.list_jobs()}
            assert states == {
                marathon["job_id"]: "cancelled",
                sprint["job_id"]: "completed",
            }

    def test_watch_streams_rounds_then_done(self, tmp_path):
        with ServeDaemon(tmp_path, workers=0, max_jobs=1):
            client = ServeClient(state_dir=tmp_path)
            job = client.submit(make_spec(seed=2))
            events = list(client.watch(job["job_id"]))
            assert events[0]["kind"] == "snapshot"
            assert events[-1]["kind"] == "done"
            assert events[-1]["job"]["state"] == "completed"
            rounds = [e for e in events if e.get("kind") == "round"]
            assert rounds, "at least one round event must stream"
            assert [e["seq"] for e in rounds] == sorted(e["seq"] for e in rounds)
            front = rounds[-1]["pareto"]
            assert front and all("identifier" in p for p in front)

    def test_protocol_errors_are_typed_not_fatal(self, tmp_path):
        with ServeDaemon(tmp_path, workers=0):
            client = ServeClient(state_dir=tmp_path)
            with pytest.raises(ServerError) as excinfo:
                client.status("job-9999")
            assert excinfo.value.error_type == "KeyError"
            bad = make_spec().to_payload()
            bad["solver"] = "gradient-descent"
            with pytest.raises(ServerError) as excinfo:
                client._request("submit", spec=bad)
            assert excinfo.value.error_type == "ValueError"
            assert client.ping()["pid"] == os.getpid()  # daemon still alive

    def test_sigterm_mid_round_then_restart_recovers_job_table(self, tmp_path):
        """The crash drill: SIGTERM the daemon mid-round, restart, recover.

        ``repro serve`` treats SIGTERM as a crash by design (``os._exit``) —
        nothing is journalled beyond the last completed transition.  The
        next daemon on the same state dir must surface the in-flight job as
        ``interrupted``/resumable and serve new jobs normally.
        """
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--state-dir", str(tmp_path), "--max-jobs", "2"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            wait_until(
                lambda: endpoint_path(tmp_path).exists(),
                message="daemon endpoint file",
            )
            client = ServeClient(state_dir=tmp_path)
            job = client.submit(make_spec(tenant="victim", seed=1,
                                          budget_hours=500.0))
            wait_until(
                lambda: client.status(job["job_id"])["rounds"] >= 1,
                message="first round before the SIGTERM",
            )
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        with ServeDaemon(tmp_path, workers=0, max_jobs=2):
            survivor = ServeClient(state_dir=tmp_path)
            recovered = survivor.status(job["job_id"])
            assert recovered["state"] == "interrupted"
            assert recovered["resumable"]
            assert recovered["rounds"] >= 1  # progress survived the crash
            fresh = survivor.submit(make_spec(tenant="fresh", seed=1))
            assert fresh["job_id"] != job["job_id"]
            final = survivor.wait(fresh["job_id"])
            assert final["state"] == "completed"
            # the fresh job resumes the victim's cached results/snapshots:
            # the resubmit-to-resume story interrupted jobs rely on
            assert (
                final["result"]["cache_foreign_hits"]
                + final["result"]["snapshot_foreign_hits"]
            ) > 0


# --------------------------------------------------------------------------- #
class TestSchedulingInvariants:
    @settings(max_examples=4, deadline=None)
    @given(
        jobs=st.lists(
            st.tuples(
                st.sampled_from(["random", "sa"]),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=2,
            max_size=3,
        )
    )
    def test_proposal_accounting_holds_under_interleaving(
        self, jobs, tmp_path_factory
    ):
        """proposals_total == proposals_pruned + evaluated_proposals, per
        job, no matter how the scheduler interleaves the drivers."""
        state_dir = tmp_path_factory.mktemp("serve-prop")
        scheduler = JobScheduler(
            state_dir, workers=0, max_jobs=len(jobs),
            job_journals=False, recover=False,
        )
        try:
            records = [
                scheduler.submit(
                    make_spec(solver=solver, tenant=f"t{i}", seed=seed,
                              budget_hours=0.4, max_length=3)
                )
                for i, (solver, seed) in enumerate(jobs)
            ]
            for record in records:
                final = scheduler.wait(record.job_id, timeout=180.0)
                assert final.state == "completed"
                stats = final.result["solver_stats"]
                assert (
                    stats["proposals_total"]
                    == stats["proposals_pruned"] + stats["evaluated_proposals"]
                )
                assert final.result["evaluations"] == final.evaluations
        finally:
            scheduler.close()
