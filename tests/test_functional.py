"""Tests for conv/pool/batchnorm/softmax and their gradients."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from .conftest import numeric_gradient

# Central-difference gradient checks need float64 precision.
pytestmark = pytest.mark.usefixtures("float64_gradcheck")


class TestConv2d:
    def test_output_shape(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(5, 3, 3, 3)))
        assert F.conv2d(x, w, stride=1, padding=1).shape == (2, 5, 8, 8)
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 5, 4, 4)
        assert F.conv2d(x, w, stride=1, padding=0).shape == (2, 5, 6, 6)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 4, 4)))
        w = Tensor(rng.normal(size=(2, 4, 3, 3)))
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv2d(x, w)

    def test_identity_kernel(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = F.conv2d(x, Tensor(w), stride=1, padding=1)
        np.testing.assert_allclose(out.data, x.data)

    def test_matches_direct_convolution(self, rng):
        """Cross-check im2col against a naive loop implementation."""
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=0).data
        naive = np.zeros((1, 3, 3, 3))
        for f in range(3):
            for i in range(3):
                for j in range(3):
                    naive[0, f, i, j] = (x[0, :, i : i + 3, j : j + 3] * w[f]).sum()
        np.testing.assert_allclose(out, naive, atol=1e-10)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_gradients_match_numeric(self, rng, stride, padding):
        x_data = rng.normal(size=(2, 2, 5, 5))
        w_data = rng.normal(size=(3, 2, 3, 3))
        b_data = rng.normal(size=(3,))
        x = Tensor(x_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (F.conv2d(x, w, b, stride, padding) ** 2).sum().backward()

        def value():
            out = F.conv2d(Tensor(x_data), Tensor(w_data), Tensor(b_data), stride, padding)
            return float((out.data ** 2).sum())

        np.testing.assert_allclose(w.grad, numeric_gradient(value, w_data), atol=1e-4)
        np.testing.assert_allclose(b.grad, numeric_gradient(value, b_data), atol=1e-4)
        np.testing.assert_allclose(x.grad, numeric_gradient(value, x_data), atol=1e-4)


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient_routes_to_max(self):
        data = np.arange(16.0).reshape(1, 1, 4, 4)
        x = Tensor(data, requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros_like(data)
        expected[0, 0, 1, 1] = expected[0, 0, 1, 3] = 1
        expected[0, 0, 3, 1] = expected[0, 0, 3, 3] = 1
        np.testing.assert_allclose(x.grad, expected)

    def test_avg_pool_values_and_grad(self):
        x = Tensor(np.ones((1, 2, 4, 4)), requires_grad=True)
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data, np.ones((1, 2, 2, 2)))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 2, 4, 4), 0.25))

    def test_global_avg_pool(self, rng):
        data = rng.normal(size=(2, 3, 5, 5))
        out = F.global_avg_pool2d(Tensor(data))
        np.testing.assert_allclose(out.data, data.mean(axis=(2, 3)))


class TestBatchNorm:
    def test_training_normalises_batch(self, rng):
        x = Tensor(rng.normal(2.0, 3.0, size=(16, 4, 5, 5)))
        gamma = Tensor(np.ones(4), requires_grad=True)
        beta = Tensor(np.zeros(4), requires_grad=True)
        mean = np.zeros(4)
        var = np.ones(4)
        out = F.batch_norm(x, gamma, beta, mean, var, training=True)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0, atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1, atol=1e-2)

    def test_running_stats_updated(self, rng):
        x = Tensor(rng.normal(5.0, 1.0, size=(32, 2, 4, 4)))
        mean = np.zeros(2)
        var = np.ones(2)
        F.batch_norm(Tensor(x.data), Tensor(np.ones(2)), Tensor(np.zeros(2)), mean, var, True)
        assert (mean > 0.4).all()  # momentum 0.1 over one batch of mean~5

    def test_eval_uses_running_stats(self):
        x = Tensor(np.full((4, 2, 2, 2), 10.0))
        mean = np.full(2, 10.0)
        var = np.ones(2)
        out = F.batch_norm(x, Tensor(np.ones(2)), Tensor(np.zeros(2)), mean, var, False)
        np.testing.assert_allclose(out.data, 0, atol=1e-2)

    def test_gamma_beta_gradients(self, rng):
        x = Tensor(rng.normal(size=(8, 3, 4, 4)))
        gamma = Tensor(np.ones(3), requires_grad=True)
        beta = Tensor(np.zeros(3), requires_grad=True)
        out = F.batch_norm(x, gamma, beta, np.zeros(3), np.ones(3), True)
        (out * out).sum().backward()
        assert gamma.grad is not None and np.abs(gamma.grad).sum() > 0
        assert beta.grad is not None


class TestSoftmax:
    def test_softmax_sums_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(4, 7))))
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, atol=1e-12)

    def test_softmax_stable_for_large_logits(self):
        out = F.softmax(Tensor([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_consistent(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).data, np.log(F.softmax(Tensor(x)).data), atol=1e-12
        )


class TestDropoutFlatten:
    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_training_scales(self, rng):
        x = Tensor(np.ones((1000,)))
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        # Inverted dropout preserves the expectation.
        assert out.data.mean() == pytest.approx(1.0, abs=0.1)
        assert set(np.unique(out.data)) <= {0.0, 2.0}

    def test_flatten(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4, 4)))
        assert F.flatten(x).shape == (2, 48)
