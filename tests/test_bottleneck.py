"""Tests for the bottleneck ResNet variant."""


import numpy as np
import pytest

from repro.compression import METHODS, ExecutionContext
from repro.compression.surgery import filter_l2_norms, prune_by_scores
from repro.models import (
    BottleneckResNet,
    resnet29_bottleneck,
    resnet164_bottleneck,
)
from repro.nn import Tensor, profile_model


class TestTopology:
    def test_depth_validation(self):
        with pytest.raises(ValueError, match="9n\\+2"):
            BottleneckResNet(depth=50)

    def test_block_count(self):
        assert len(list(resnet29_bottleneck().blocks)) == 9
        assert len(list(resnet164_bottleneck().blocks)) == 54

    def test_forward_shape(self, rng):
        model = resnet29_bottleneck(num_classes=7)
        out = model(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 7)

    def test_expansion_widths(self):
        model = resnet29_bottleneck(base_width=8)
        first = list(model.blocks)[0]
        assert first.conv3.out_channels == 8 * 4
        assert model.classifier.in_features == 32 * 4

    def test_resnet164_bottleneck_param_count(self):
        """The canonical bottleneck ResNet-164 is ~1.7M params."""
        profile = profile_model(resnet164_bottleneck(), (3, 32, 32))
        assert profile.params_m == pytest.approx(1.7, abs=0.2)


class TestPruning:
    def test_two_units_per_block(self):
        model = resnet29_bottleneck()
        assert len(model.pruning_units()) == 2 * len(list(model.blocks))

    def test_units_consume_next_conv(self):
        model = resnet29_bottleneck()
        units = model.pruning_units()
        block = list(model.blocks)[0]
        assert units[0].producer is block.conv1
        assert units[0].consumers == [block.conv2]
        assert units[1].producer is block.conv2
        assert units[1].consumers == [block.conv3]

    def test_global_pruning_keeps_model_functional(self, rng):
        model = resnet29_bottleneck(num_classes=4)
        before = model.num_parameters()
        scores = {u.name: filter_l2_norms(u) for u in model.pruning_units()}
        removed = prune_by_scores(model, scores, before // 4)
        assert removed > 0
        out = model(Tensor(rng.normal(size=(1, 3, 16, 16))))
        assert np.isfinite(out.data).all()

    @pytest.mark.parametrize("label", ["C3", "C5", "C6"])
    def test_compression_methods_apply(self, label, rng):
        model = resnet29_bottleneck(num_classes=4)
        before = model.num_parameters()
        ctx = ExecutionContext(original_params=before, train_enabled=False)
        hp = {"HP1": 0.1, "HP2": 0.2, "HP6": 0.9, "HP11": "P1", "HP12": "l1norm",
              "HP13": 0.3, "HP14": 1, "HP15": 1.0, "HP16": "MSE"}
        METHODS[label].apply(model, hp, ctx)
        assert model.num_parameters() < before
        out = model(Tensor(rng.normal(size=(1, 3, 16, 16))))
        assert np.isfinite(out.data).all()
