"""Tests for the calibrated accuracy surrogate."""

import numpy as np
import pytest

from repro.sim import (
    ACCURACY_HEADROOM,
    BASELINE_ACCURACY,
    TABLE2_ANCHORS,
    TABLE3_ACC40,
    AccuracyModel,
    method_curve,
)


class TestCalibration:
    def test_curves_hit_table2_anchors_exactly(self):
        for (method, model, dataset), ((pr1, acc1), (pr2, acc2)) in TABLE2_ANCHORS.items():
            base = BASELINE_ACCURACY[(model, dataset)]
            curve = method_curve(method, model, dataset)
            assert curve.damage(pr1) == pytest.approx(base - acc1, abs=1e-9)
            assert curve.damage(pr2) == pytest.approx(base - acc2, abs=1e-9)

    def test_transfer_curves_hit_table3_anchor(self):
        for (method, model, dataset), acc40 in TABLE3_ACC40.items():
            base = BASELINE_ACCURACY[(model, dataset)]
            curve = method_curve(method, model, dataset)
            assert curve.damage(0.40) == pytest.approx(base - acc40, abs=1e-6)

    def test_zero_pr_zero_damage(self):
        curve = method_curve("C2", "resnet56", "cifar10")
        assert curve.damage(0.0) == 0.0

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            method_curve("C2", "resnet18", "imagenet")

    def test_legr_hos_crossover_resnet56(self):
        """Paper §4.2 observation: LeGR beats HOS at PR 0.4, loses at 0.7."""
        legr = method_curve("C2", "resnet56", "cifar10")
        hos = method_curve("C5", "resnet56", "cifar10")
        assert legr.damage(0.40) < hos.damage(0.40)
        assert legr.damage(0.70) > hos.damage(0.70)

    def test_lfb_depth_collapse(self):
        """Paper §4.4: LFB great on ResNet-20, catastrophic on ResNet-164."""
        lfb20 = method_curve("C6", "resnet20", "cifar10")
        lfb164 = method_curve("C6", "resnet164", "cifar10")
        assert lfb20.damage(0.40) < 1.0
        assert lfb164.damage(0.40) > 50.0


class TestAccuracyModel:
    def _model(self):
        return AccuracyModel("resnet56", "cifar10", seed=0)

    def test_baseline(self):
        m = self._model()
        assert m.baseline == pytest.approx(91.04)
        assert m.floor == pytest.approx(10.0)

    def test_step_reduces_accuracy_for_big_untuned_step(self):
        m = self._model()
        rng = np.random.default_rng(0)
        acc, effect = m.step(91.04, 0.0, 0.4, "C1", {"HP4": 1, "HP5": 0.05}, 0.1, rng=rng)
        assert acc < 91.04
        assert effect.damage > 0

    def test_more_fine_tuning_less_damage(self):
        m = self._model()
        rng = lambda: np.random.default_rng(1)
        acc_low, _ = m.step(91.04, 0.0, 0.4, "C3", {}, 0.1, rng=rng())
        acc_high, _ = m.step(91.04, 0.0, 0.4, "C3", {}, 0.5, rng=rng())
        assert acc_high > acc_low

    def test_small_steps_can_climb_above_baseline(self):
        m = self._model()
        rng = np.random.default_rng(2)
        acc = m.baseline
        pr = 0.0
        history = []
        for _ in range(5):
            acc, _ = m.step(acc, pr, pr + 0.04, "C2", {"HP6": 0.9, "HP8": "l2_weight"},
                            0.5, previous_methods=tuple(history), rng=rng)
            history.append("C2")
            pr += 0.04
        assert acc > m.baseline  # the AutoMC effect

    def test_accuracy_clamped_to_floor_and_ceiling(self):
        m = self._model()
        rng = np.random.default_rng(3)
        low, _ = m.step(12.0, 0.0, 0.8, "C1", {"HP4": 1, "HP5": 0.05}, 0.0, rng=rng)
        assert low >= m.floor
        high, _ = m.step(99.0, 0.0, 0.001, "C2", {}, 0.5, rng=rng)
        assert high <= m.baseline + m.headroom

    def test_hp_modifier_best_setting_is_one(self):
        m = self._model()
        factors = [
            m.hp_modifier("C2", {"HP6": v6, "HP8": v8})
            for v6 in (0.7, 0.9)
            for v8 in ("l1_weight", "l2_weight", "l2_bn_param")
        ]
        assert min(factors) == pytest.approx(1.0)
        assert max(factors) > 1.0

    def test_diversity_discount(self):
        m = self._model()
        same, _ = m.step(91.0, 0.1, 0.2, "C3", {}, 0.5,
                         previous_methods=("C3",), rng=np.random.default_rng(4))
        diff, _ = m.step(91.0, 0.1, 0.2, "C3", {}, 0.5,
                         previous_methods=("C2",), rng=np.random.default_rng(4))
        assert diff >= same

    def test_quantization_step_small_fixed_damage(self):
        m = self._model()
        acc, effect = m.step(91.0, 0.3, 0.3, "C7", {}, 0.1, rng=np.random.default_rng(5))
        assert 0 < effect.damage < 1.0

    def test_deterministic_given_rng(self):
        m = self._model()
        a, _ = m.step(91.0, 0.0, 0.3, "C5", {"HP11": "P1"}, 0.3, rng=np.random.default_rng(7))
        b, _ = m.step(91.0, 0.0, 0.3, "C5", {"HP11": "P1"}, 0.3, rng=np.random.default_rng(7))
        assert a == b

    def test_unsupported_task_raises(self):
        with pytest.raises(KeyError):
            AccuracyModel("alexnet", "imagenet")

    def test_headroom_matches_table(self):
        for (model, dataset), headroom in ACCURACY_HEADROOM.items():
            m = AccuracyModel(model, dataset)
            assert m.headroom == headroom
