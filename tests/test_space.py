"""Tests for the strategy/scheme search space (§3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import (
    HP_GRID,
    MAX_SCHEME_LENGTH,
    METHOD_HPS,
    START,
    CompressionScheme,
    StrategySpace,
    grid_size,
    make_strategy,
    tree_size,
)


class TestGrids:
    def test_documented_strategy_count(self, space):
        """Our HP2 reconstruction yields 4,230 strategies (see DESIGN.md)."""
        assert len(space) == 4230

    def test_per_method_counts(self):
        expected = {"C1": 480, "C2": 720, "C3": 60, "C4": 90, "C5": 2430, "C6": 450}
        for label, count in expected.items():
            assert grid_size(label) == count

    def test_every_method_has_hp2_except_extension(self):
        for label, hps in METHOD_HPS.items():
            if label in ("C7", "C8"):
                assert "HP2" not in hps
            else:
                assert "HP2" in hps

    def test_epoch_multipliers_in_range(self):
        for hp in ("HP1", "HP7", "HP9", "HP13"):
            assert all(0 < v <= 1 for v in HP_GRID[hp])


class TestStrategy:
    def test_identifier_roundtrip(self, space):
        for i in (0, 100, 4000):
            s = space[i]
            assert space.by_identifier(s.identifier) is s

    def test_make_strategy_validates(self):
        with pytest.raises(ValueError, match="missing"):
            make_strategy("C1", {"HP1": 0.1})

    def test_param_step_reads_hp2(self, space):
        s = space.of_method("C3")[0]
        assert s.param_step == s.hp["HP2"]

    def test_method_resolution(self, space):
        s = space.of_method("C2")[0]
        assert s.method.label == "C2"

    def test_strategies_are_hashable_and_frozen(self, space):
        s = space[0]
        assert s in {s}
        with pytest.raises(AttributeError):
            s.method_label = "C9"

    def test_indices_are_positions(self, space):
        for i in (0, 17, 2500):
            assert space[i].index == i

    def test_restrict(self, space):
        legr_only = space.restrict(["C2"])
        assert len(legr_only) == grid_size("C2")
        assert all(s.method_label == "C2" for s in legr_only)

    def test_quantization_extension_opt_in(self):
        extended = StrategySpace(include_quantization=True)
        assert len(extended) == 4230 + grid_size("C7") + grid_size("C8")

    def test_neighbor_moves_one_hp(self, space, rng):
        s = space.of_method("C1")[37]
        neighbor = space.neighbor(s, rng)
        assert neighbor.method_label == s.method_label
        diffs = [k for k in s.hp if s.hp[k] != neighbor.hp[k]]
        assert len(diffs) == 1
        assert neighbor is space.by_identifier(neighbor.identifier)


class TestScheme:
    def test_start_is_empty(self):
        assert START.is_empty
        assert START.identifier == "START"
        assert START.length == 0

    def test_extend_immutably(self, space):
        child = START.extend(space[0])
        assert START.is_empty
        assert child.length == 1
        grandchild = child.extend(space[1])
        assert child.length == 1 and grandchild.length == 2

    def test_identifier_arrow_format(self, space):
        scheme = START.extend(space[0]).extend(space[1])
        assert " -> " in scheme.identifier

    def test_total_param_step(self, space):
        s1, s2 = space.of_method("C3")[0], space.of_method("C4")[0]
        scheme = START.extend(s1).extend(s2)
        assert scheme.total_param_step == pytest.approx(s1.param_step + s2.param_step)

    def test_prefix(self, space):
        scheme = START.extend(space[0]).extend(space[1]).extend(space[2])
        assert scheme.prefix(2).identifier == START.extend(space[0]).extend(space[1]).identifier
        assert scheme.prefix(0).is_empty

    def test_schemes_hashable(self, space):
        a = START.extend(space[5])
        b = START.extend(space[5])
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_tree_size_formula(self):
        assert tree_size(2, 3) == 1 + 2 + 4 + 8
        assert tree_size(4230, MAX_SCHEME_LENGTH) == sum(4230 ** l for l in range(6))


class TestHypothesisSpace:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=4229))
    def test_every_strategy_wellformed(self, index):
        space = _session_space()
        s = space[index]
        assert s.method_label in METHOD_HPS
        for name, value in s.hp_items:
            assert value in HP_GRID[name]
        assert set(s.hp) == set(METHOD_HPS[s.method_label])

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4229), min_size=1, max_size=5))
    def test_scheme_roundtrip(self, indices):
        space = _session_space()
        scheme = CompressionScheme(tuple(space[i] for i in indices))
        assert scheme.length == len(indices)
        assert scheme.identifier.count(" -> ") == len(indices) - 1


_SPACE_CACHE = None


def _session_space() -> StrategySpace:
    global _SPACE_CACHE
    if _SPACE_CACHE is None:
        _SPACE_CACHE = StrategySpace()
    return _SPACE_CACHE
