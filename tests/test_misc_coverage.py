"""Focused tests for smaller code paths not covered elsewhere."""

import numpy as np
import pytest

from repro.core.evaluator import EvaluationResult
from repro.experiments.table3 import Table3Cell, Table3Result
from repro.nn import Adam, Tensor, Trainer
from repro.nn import functional as F
from repro.space import CompressionScheme


class TestAvgPoolGeneralPath:
    def test_overlapping_stride(self, rng):
        """kernel != stride exercises the sliding-window fallback."""
        x = Tensor(rng.normal(size=(1, 2, 6, 6)), requires_grad=True)
        out = F.avg_pool2d(x, kernel=3, stride=2)
        assert out.shape == (1, 2, 2, 2)
        # Values match a manual window average.
        manual = x.data[0, 0, 0:3, 0:3].mean()
        assert out.data[0, 0, 0, 0] == pytest.approx(manual)
        out.sum().backward()
        assert x.grad is not None
        assert x.grad.sum() == pytest.approx(out.size)

    def test_gradient_shares_across_overlaps(self, rng):
        x = Tensor(np.ones((1, 1, 5, 5)), requires_grad=True)
        F.avg_pool2d(x, kernel=3, stride=2).sum().backward()
        # Centre pixel participates in all four windows.
        assert x.grad[0, 0, 2, 2] == pytest.approx(4 / 9)
        # A corner participates in exactly one.
        assert x.grad[0, 0, 0, 0] == pytest.approx(1 / 9)


class TestTrainerOptimizerOverride:
    def test_custom_optimizer_used(self, tiny_data):
        from repro.models import resnet8

        train, _ = tiny_data
        model = resnet8(num_classes=4)
        custom = Adam(model.parameters(), lr=1e-3)
        report = Trainer(batch_size=32, seed=0).fit(
            model, train, epochs=0.2, optimizer=custom
        )
        assert custom._t > 0  # Adam's step counter advanced
        assert report.losses

    def test_report_final_loss(self, tiny_data):
        from repro.models import resnet8

        train, _ = tiny_data
        report = Trainer(batch_size=32, seed=0).fit(resnet8(num_classes=4), train, 0.2)
        assert report.final_loss == report.losses[-1]

    def test_empty_report_final_loss_nan(self):
        from repro.nn.train import TrainReport

        assert np.isnan(TrainReport(epochs=0, steps=0).final_loss)


class TestTable3Formatting:
    def _cell(self, algorithm="NS", model="resnet20", result=None):
        return Table3Cell(algorithm=algorithm, model=model, experiment="Exp1", result=result)

    def test_none_cell_format(self):
        assert "--" in self._cell().format()

    def test_lookup_missing(self):
        table = Table3Result(cells=[self._cell()])
        assert table.lookup("NS", "resnet20") is None  # result is None
        assert table.lookup("LFB", "vgg13") is None

    def test_format_includes_all_models(self):
        table = Table3Result(cells=[])
        text = table.format()
        for model in ("resnet20", "resnet164", "vgg13", "vgg19"):
            assert model in text


class TestEvaluationResultMisc:
    def test_reduction_helpers(self):
        result = EvaluationResult(
            scheme=CompressionScheme(),
            params=800,
            flops=900,
            accuracy=0.5,
            base_params=1000,
            base_flops=1000,
            base_accuracy=0.6,
            cost=0.1,
        )
        assert result.pr == pytest.approx(0.2)
        assert result.fr == pytest.approx(0.1)
        assert result.ar == pytest.approx((0.5 - 0.6) / 0.6)
        assert result.meets_target(0.2)
        assert not result.meets_target(0.21)

    def test_step_report_helpers(self):
        from repro.compression.base import StepReport

        report = StepReport(method="C3", params_before=1000, params_after=700)
        assert report.params_removed == 300
        assert report.reduction_vs(2000) == pytest.approx(0.15)
