"""Tests for training-time augmentation."""

import numpy as np

from repro.data import AugmentedDataset, random_crop, random_horizontal_flip, tiny_dataset
from repro.models import resnet8
from repro.nn import Trainer, evaluate_accuracy


class TestPrimitives:
    def test_flip_preserves_content(self, rng):
        images = rng.normal(size=(8, 3, 6, 6))
        flipped = random_horizontal_flip(images, np.random.default_rng(0), p=1.0)
        np.testing.assert_allclose(flipped, images[:, :, :, ::-1])

    def test_flip_p_zero_identity(self, rng):
        images = rng.normal(size=(8, 3, 6, 6))
        out = random_horizontal_flip(images, np.random.default_rng(0), p=0.0)
        np.testing.assert_array_equal(out, images)

    def test_crop_preserves_shape(self, rng):
        images = rng.normal(size=(4, 3, 8, 8))
        out = random_crop(images, np.random.default_rng(0), padding=2)
        assert out.shape == images.shape

    def test_crop_content_is_shifted_window(self, rng):
        """Every output must be a translate of the padded input."""
        images = rng.normal(size=(1, 1, 4, 4))
        out = random_crop(images, np.random.default_rng(3), padding=1)
        padded = np.pad(images, ((0, 0), (0, 0), (1, 1), (1, 1)))
        matches = [
            np.allclose(out[0], padded[0, :, dy : dy + 4, dx : dx + 4])
            for dy in range(3)
            for dx in range(3)
        ]
        assert any(matches)


class TestAugmentedDataset:
    def test_eval_iteration_untouched(self):
        data = AugmentedDataset(tiny_dataset(num_samples=48))
        x, y = next(iter(data.iter_batches(16, shuffle=False)))
        np.testing.assert_array_equal(x, data.base.images[:16])

    def test_train_iteration_augments(self):
        data = AugmentedDataset(tiny_dataset(num_samples=48), seed=0)
        rng = np.random.default_rng(1)
        x, y, idx = next(iter(data.iter_batches(16, shuffle=True, rng=rng, with_indices=True)))
        assert not np.array_equal(x, data.base.images[idx])
        np.testing.assert_array_equal(y, data.base.labels[idx])

    def test_passthrough_metadata(self):
        base = tiny_dataset(num_samples=32)
        data = AugmentedDataset(base)
        assert len(data) == 32
        assert data.num_classes == base.num_classes
        assert data.image_size == base.image_size
        assert data.channels == base.channels
        assert data.name.endswith("+aug")

    def test_trainer_accepts_augmented_dataset(self, tiny_data):
        train, val = tiny_data
        augmented = AugmentedDataset(train, padding=1)
        model = resnet8(num_classes=4)
        Trainer(lr=0.05, batch_size=32, seed=0).fit(model, augmented, epochs=2)
        assert 0.0 <= evaluate_accuracy(model, val) <= 1.0
