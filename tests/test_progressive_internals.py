"""White-box tests for Algorithm 2's bookkeeping and Eq. 4 projections."""

import numpy as np
import pytest

from repro.core.evaluator import SurrogateEvaluator
from repro.core.progressive import ProgressiveConfig, ProgressiveSearch
from repro.data.tasks import EXP1, transfer_task
from repro.knowledge.embedding import StrategyEmbeddings
from repro.knowledge.experience import default_experience
from repro.models import resnet20
from repro.space import StrategySpace


@pytest.fixture()
def searcher():
    space = StrategySpace(method_labels=["C3", "C4"])
    rng = np.random.default_rng(0)
    embeddings = StrategyEmbeddings(
        table=rng.normal(0, 0.1, size=(len(space), 16)), space=space
    )
    task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
    evaluator = SurrogateEvaluator(
        lambda: resnet20(num_classes=10), "resnet20", "cifar10", task, seed=0
    )
    return ProgressiveSearch(
        evaluator, space, embeddings, gamma=0.2, budget_hours=1.2,
        config=ProgressiveConfig(sample_size=3, evals_per_round=3,
                                 candidate_subsample=40),
        seed=0,
    )


class TestBookkeeping:
    def test_explored_candidates_marked(self, searcher):
        searcher.run()
        start_key = "START"
        mask = searcher._unexplored[start_key]
        assert not mask.all()  # something under START was explored
        assert mask.any()      # but far from everything

    def test_child_schemes_get_fresh_masks(self, searcher):
        searcher.run()
        children = [k for k in searcher._unexplored if k != "START"]
        assert children
        for key in children[:3]:
            assert searcher._unexplored[key].dtype == bool

    def test_max_length_schemes_not_tracked(self, searcher):
        searcher.max_length = 1
        searcher.run()
        for key in searcher._unexplored:
            assert key == "START"

    def test_no_duplicate_evaluations_of_same_extension(self, searcher):
        searcher.run()
        identifiers = list(searcher.evaluator.results)
        assert len(identifiers) == len(set(identifiers))


class TestStateFeatures:
    def test_state_of_start(self, searcher):
        start = searcher.evaluator.evaluate(
            __import__("repro.space", fromlist=["START"]).START
        )
        searcher._ensure_tracked(start)
        state = searcher._state_of(start)
        np.testing.assert_allclose(state, [1.0, 1.0, 0.0, 0.0])

    def test_state_reflects_compression(self, searcher):
        from repro.space import START

        strategy = searcher.space.of_method("C3")[5]
        result = searcher.evaluator.evaluate(START.extend(strategy))
        searcher._ensure_tracked(result)
        state = searcher._state_of(result)
        assert state[1] < 1.0  # params ratio dropped
        assert state[2] == pytest.approx(1 / 5)
        assert state[3] == pytest.approx(strategy.param_step)


class TestWarmStart:
    def test_experience_prefills_buffer(self):
        space = StrategySpace()
        rng = np.random.default_rng(0)
        embeddings = StrategyEmbeddings(
            table=rng.normal(0, 0.1, size=(len(space), 16)), space=space
        )
        task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
        evaluator = SurrogateEvaluator(
            lambda: resnet20(num_classes=10), "resnet20", "cifar10", task, seed=0
        )
        searcher = ProgressiveSearch(
            evaluator, space, embeddings, gamma=0.3, budget_hours=0.1,
            experience=default_experience(), seed=0,
        )
        assert len(searcher.fmo.buffer) >= 60
        assert searcher.fmo.loss_history  # warm-start training happened


class TestConfigToggles:
    @pytest.mark.parametrize("toggle", ["stratified_sampling", "feasible_bias"])
    def test_toggles_off_still_run(self, toggle):
        space = StrategySpace(method_labels=["C3"])
        rng = np.random.default_rng(0)
        embeddings = StrategyEmbeddings(
            table=rng.normal(0, 0.1, size=(len(space), 16)), space=space
        )
        task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
        evaluator = SurrogateEvaluator(
            lambda: resnet20(num_classes=10), "resnet20", "cifar10", task, seed=0
        )
        config = ProgressiveConfig(
            sample_size=2, evals_per_round=2, candidate_subsample=20,
            **{toggle: False},
        )
        searcher = ProgressiveSearch(
            evaluator, space, embeddings, gamma=0.2, budget_hours=0.6,
            config=config, seed=0,
        )
        result = searcher.run()
        assert result.evaluations >= 1
