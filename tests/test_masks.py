"""Tests for soft channel masking."""

import copy

import numpy as np
import pytest

from repro.compression.masks import (
    currently_zeroed,
    masked_evaluation,
    zero_unit_channels,
)
from repro.nn import Tensor


class TestZeroUnitChannels:
    def test_zeroes_producer_and_bn(self, trained_resnet8):
        model = copy.deepcopy(trained_resnet8)
        unit = model.pruning_units()[0]
        zero_unit_channels(unit, np.array([0, 2]))
        assert np.allclose(unit.producer.weight.data[[0, 2]], 0)
        assert np.allclose(unit.bn.gamma.data[[0, 2]], 0)
        assert not np.allclose(unit.producer.weight.data[1], 0)

    def test_empty_drop_noop(self, trained_resnet8):
        model = copy.deepcopy(trained_resnet8)
        unit = model.pruning_units()[0]
        before = unit.producer.weight.data.copy()
        zero_unit_channels(unit, np.array([], dtype=np.int64))
        np.testing.assert_array_equal(unit.producer.weight.data, before)


class TestMaskedEvaluation:
    def test_weights_restored_after(self, trained_resnet8):
        model = copy.deepcopy(trained_resnet8)
        units = model.pruning_units()
        snapshot = {u.name: u.producer.weight.data.copy() for u in units}
        keep = {u.name: np.arange(1, u.out_channels) for u in units}  # drop ch 0
        masked_evaluation(units, keep, lambda: 0.0)
        for u in units:
            np.testing.assert_array_equal(u.producer.weight.data, snapshot[u.name])

    def test_restored_even_if_evaluate_raises(self, trained_resnet8):
        model = copy.deepcopy(trained_resnet8)
        units = model.pruning_units()
        snapshot = {u.name: u.producer.weight.data.copy() for u in units}
        keep = {u.name: np.arange(1, u.out_channels) for u in units}

        def boom():
            raise RuntimeError("fitness failed")

        with pytest.raises(RuntimeError):
            masked_evaluation(units, keep, boom)
        for u in units:
            np.testing.assert_array_equal(u.producer.weight.data, snapshot[u.name])

    def test_mask_active_during_evaluation(self, trained_resnet8):
        model = copy.deepcopy(trained_resnet8)
        units = model.pruning_units()
        keep = {u.name: np.arange(1, u.out_channels) for u in units}

        def check():
            return float(units[0].producer.weight.data[0].sum())

        assert masked_evaluation(units, keep, check) == 0.0

    def test_full_keep_noop(self, trained_resnet8):
        model = copy.deepcopy(trained_resnet8)
        units = model.pruning_units()
        keep = {u.name: np.arange(u.out_channels) for u in units}
        x = np.random.default_rng(0).normal(size=(1, 3, 8, 8))
        model.eval()
        reference = model(Tensor(x)).data
        got = masked_evaluation(units, keep, lambda: model(Tensor(x)).data.copy())
        np.testing.assert_allclose(got, reference)


class TestCurrentlyZeroed:
    def test_detects_zeroed(self, trained_resnet8):
        model = copy.deepcopy(trained_resnet8)
        unit = model.pruning_units()[0]
        zero_unit_channels(unit, np.array([1]))
        assert 1 in currently_zeroed(unit)
        assert 0 not in currently_zeroed(unit)
