"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search", "exp1"])
        assert args.algorithm == "AutoMC"
        assert args.budget == 30.0

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "exp1", "--algorithm", "SGD"])

    def test_figure_numbers(self):
        for n in ("4", "5", "6"):
            args = build_parser().parse_args(["figure", n])
            assert args.number == n
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "7"])

    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_trace_summarize_args(self):
        args = build_parser().parse_args(["trace", "summarize", "run.jsonl", "--json"])
        assert args.journal == "run.jsonl"
        assert args.json is True

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.smoke is False
        assert args.repeats == 5
        assert args.only is None
        assert args.output is None
        assert args.suite == "nn"
        assert args.compare is None

    def test_bench_quant_suite_args(self):
        args = build_parser().parse_args(
            ["bench", "--suite", "quant", "--compare", "old.json"]
        )
        assert args.suite == "quant"
        assert args.compare == "old.json"

    def test_search_quantization_args(self):
        args = build_parser().parse_args(
            ["search", "exp1", "--methods", "C3,C8", "--latency-batch", "8",
             "--max-latency-ms", "50", "--max-weight-mem", "3000000"]
        )
        assert args.methods == "C3,C8"
        assert args.latency_batch == 8
        assert args.max_latency_ms == 50.0
        assert args.max_weight_mem == 3_000_000


class TestCommands:
    def test_inspect(self, capsys):
        assert main(["inspect"]) == 0
        out = capsys.readouterr().out
        assert "4230 strategies" in out
        assert "experience records" in out

    def test_inspect_with_graph(self, capsys):
        assert main(["inspect", "--graph"]) == 0
        out = capsys.readouterr().out
        assert "KnowledgeGraph" in out

    def test_search_tiny_budget(self, capsys):
        assert main(["search", "exp1", "--algorithm", "Random", "--budget", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "Random" in out and "Pareto" in out

    def test_search_with_journal_then_summarize(self, capsys, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        assert main(["search", "exp1", "--algorithm", "Random", "--budget", "0.2",
                     "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "run journal written" in out

        assert main(["trace", "summarize", journal]) == 0
        out = capsys.readouterr().out
        assert "fresh" in out and "simulated cost" in out

        assert main(["trace", "summarize", journal, "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["fresh_evaluations"] > 0

    def test_trace_summarize_missing_file(self, capsys, tmp_path):
        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such journal" in capsys.readouterr().err

    def test_bench_smoke(self, capsys, tmp_path):
        import json

        report_path = str(tmp_path / "BENCH_nn.json")
        assert main(["bench", "--smoke", "--repeats", "1",
                     "--only", "batchnorm_eval", "--output", report_path]) == 0
        out = capsys.readouterr().out
        assert "batchnorm_eval" in out
        payload = json.loads(open(report_path).read())
        assert payload["sizes"] == "smoke"
        assert payload["current"]["results_s"]["batchnorm_eval"] > 0

    def test_bench_quant_smoke(self, capsys, tmp_path):
        import json

        report_path = str(tmp_path / "BENCH_quant.json")
        assert main(["bench", "--suite", "quant", "--smoke", "--repeats", "1",
                     "--output", report_path]) == 0
        out = capsys.readouterr().out
        assert "inference_int8" in out
        payload = json.loads(open(report_path).read())
        assert payload["suite"] == "repro.nn quantized inference"
        assert payload["current"]["results_s"]["inference_int8"] > 0

    def test_bench_compare_degrades_on_missing_baseline(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.json")
        assert main(["bench", "--suite", "quant", "--smoke", "--repeats", "1",
                     "--compare", missing]) == 0
        captured = capsys.readouterr()
        assert "no baseline usable" in captured.err
        assert "recording fresh numbers" in captured.err
        assert "inference_int8" in captured.out

    def test_bench_compare_against_own_report(self, capsys, tmp_path):
        report_path = str(tmp_path / "first.json")
        assert main(["bench", "--smoke", "--repeats", "1",
                     "--only", "batchnorm_eval", "--output", report_path]) == 0
        capsys.readouterr()
        assert main(["bench", "--smoke", "--repeats", "1",
                     "--only", "batchnorm_eval", "--compare", report_path]) == 0
        captured = capsys.readouterr()
        assert "batchnorm_eval" in captured.out
        assert "no baseline usable" not in captured.err

    def test_evaluate_scheme(self, capsys):
        code = main(["evaluate", "exp1", "C3[HP1=0.5,HP2=0.2,HP6=0.9]"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PR 2" in out or "PR 1" in out  # ~20% reduction
        assert "step 1: C3" in out
